//! Regression snapshot: for one pinned seed, the generated dataset and the
//! deterministic work counters of both query methods are frozen. A change to
//! any of these numbers means the behaviour of the generator, classifier or
//! query algorithms drifted — which must be a conscious decision, recorded by
//! updating this file.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;

#[test]
fn pinned_seed_snapshot() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(100)
        .pct_edited(0.7)
        .seed(20060403) // ICDE 2006
        .variant_config(VariantConfig {
            min_ops: 4,
            max_ops: 9,
            p_merge_target: 0.3,
        })
        .build();

    // Dataset shape.
    assert_eq!(info.binary_images, 30);
    assert_eq!(info.edited_images, 70);
    assert_eq!(
        (info.bound_widening_only, info.non_bound_widening),
        (55, 15),
        "variant classification drifted"
    );
    assert!(
        (info.avg_ops_per_edited - 7.5429).abs() < 0.02,
        "op mix drifted: {}",
        info.avg_ops_per_edited
    );

    // Query-path work counters over a pinned batch.
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    let queries = QueryGenerator::weighted_from_db(7, &db)
        .thresholds(0.05, 0.3)
        .two_sided_probability(0.0)
        .batch(10);
    let mut rbm_results = 0usize;
    let mut bwm_bounds = 0usize;
    let mut base_hits = 0usize;
    for q in &queries {
        let rbm = qp.range_rbm(q).unwrap();
        let bwm = qp.range_bwm(q).unwrap();
        assert_eq!(rbm.sorted_results(), bwm.sorted_results());
        rbm_results += rbm.results.len();
        bwm_bounds += bwm.stats.bounds_computed;
        base_hits += bwm.stats.base_hits;
    }
    assert_eq!(
        (rbm_results, bwm_bounds, base_hits),
        (745, 513, 100),
        "query work counters drifted"
    );
}

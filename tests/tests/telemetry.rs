//! Telemetry integration: the storage engine's LRU accounting surfaces
//! exactly through `StorageStats`, and traced BWM queries report their
//! bound-widening work faithfully.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator};
use mmdb_editops::EditSequence;
use mmdb_histogram::RgbQuantizer;
use mmdb_imaging::{RasterImage, Rect, Rgb};
use mmdb_query::{QueryPlan, QueryProcessor};
use mmdb_storage::StorageEngine;

/// Scripted access pattern against the raster LRU: every step's hit/miss
/// outcome is known, so the stats must match exactly.
#[test]
fn lru_hit_miss_accounting_matches_scripted_pattern() {
    let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
    let base = db
        .insert_binary(&RasterImage::filled(16, 16, Rgb::RED).unwrap())
        .unwrap();
    // Inserts do not touch the raster cache — no lookups yet.
    let s = db.stats();
    assert_eq!(
        (s.cache_hits, s.cache_misses),
        (0, 0),
        "after insert: {s:?}"
    );

    // First read decodes from the blob store (miss), second is served from
    // the cache (hit).
    db.raster(base).unwrap();
    db.raster(base).unwrap();
    let s = db.stats();
    assert_eq!(
        (s.cache_hits, s.cache_misses),
        (1, 1),
        "binary reads: {s:?}"
    );

    // Inserting an edited image stores only the sequence; no cache traffic.
    let edited = db
        .insert_edited(
            EditSequence::builder(base)
                .define(Rect::new(0, 0, 8, 8))
                .modify(Rgb::RED, Rgb::GREEN)
                .build(),
        )
        .unwrap();
    let s = db.stats();
    assert_eq!(
        (s.cache_hits, s.cache_misses),
        (1, 1),
        "edited insert: {s:?}"
    );

    // First raster of the edited image: a miss for the edited id, plus one
    // hit for the base the instantiation engine resolves through the same
    // cache.
    db.raster(edited).unwrap();
    let s = db.stats();
    assert_eq!((s.cache_hits, s.cache_misses), (2, 2), "instantiate: {s:?}");

    // The instantiated raster is now cached: a pure hit.
    db.raster(edited).unwrap();
    let s = db.stats();
    assert_eq!((s.cache_hits, s.cache_misses), (3, 2), "re-read: {s:?}");
}

/// A database whose images were never edited has no BOUNDS work to do, so
/// every traced BWM query must report zero widened bounds (and zero BOUNDS
/// computations at all).
#[test]
fn bwm_trace_reports_zero_widening_for_never_edited_database() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(30)
        .pct_edited(0.0)
        .seed(5)
        .build();
    assert_eq!(info.edited_images, 0, "dataset must be binary-only");

    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    let queries = QueryGenerator::weighted_from_db(99, &db).batch(10);
    for q in &queries {
        let (outcome, trace) = qp.range_with_plan_traced(QueryPlan::Bwm, q).unwrap();
        assert_eq!(trace.counter_value("bounds_widened"), Some(0));
        assert_eq!(trace.counter_value("bounds_computed"), Some(0));
        assert_eq!(
            trace.counter_value("results"),
            Some(outcome.results.len() as u64)
        );
        // The traced path returns the same results as the untraced one.
        assert_eq!(
            outcome.sorted_results(),
            qp.range_bwm(q).unwrap().sorted_results()
        );
    }
}

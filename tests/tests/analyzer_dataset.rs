//! Dataset-scale static analysis: over realistically generated augmented
//! databases (flags and helmets), `analyze_catalog` finds no error-level
//! diagnostics, and the bound-soundness audit runs — and comes back clean —
//! on **every** stored sequence. This is the acceptance gate behind
//! `mmdbctl lint` in CI.

use mmdb_analysis::{analyze_catalog, Analyzer, LintCode, Severity};
use mmdb_datagen::{Collection, DatasetBuilder};

fn check(collection: Collection, seed: u64) {
    let (db, info) = DatasetBuilder::new(collection)
        .total_images(60)
        .pct_edited(0.7)
        .seed(seed)
        .build();
    let analyzer = Analyzer::with_resolver(db.quantizer(), db.background(), &db);
    let report = analyze_catalog(&db, &analyzer);

    assert_eq!(report.sequences_analyzed, info.edited_ids.len());
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "generated dataset must lint clean: {errors:?}"
    );

    // The soundness audit must run on every sequence (all references in a
    // generated dataset resolve) and confirm the guaranteed invariants:
    // widening monotonicity plus per-op Combine containment (the literal
    // Table 1 row never moves bounds, the conservative rule only widens —
    // i.e. Conservative ⊇ PaperTable1 at every Combine).
    assert_eq!(report.audited, report.sequences_analyzed);
    assert_eq!(
        report.audits_clean, report.audited,
        "every audited sequence must be clean"
    );
    assert!(report.audited > 0, "dataset has edited images");

    // The generators blur real regions, so the Table 1 Combine caveat must
    // have concrete witnesses in the dataset.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CombineCaveat),
        "expected at least one W109 Combine-caveat witness"
    );
}

#[test]
fn flags_dataset_lints_clean_and_audits_sound() {
    check(Collection::Flags, 201);
}

#[test]
fn helmets_dataset_lints_clean_and_audits_sound() {
    check(Collection::Helmets, 202);
}

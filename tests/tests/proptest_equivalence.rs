//! Property test at the whole-system level: over random augmented databases
//! and random queries, RBM, parallel RBM and BWM return identical result
//! sets, and the instantiation ground truth is always contained in them.

use mmdb_editops::{EditOp, EditSequence, ImageId, Matrix3};
use mmdb_histogram::RgbQuantizer;
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use mmdb_query::QueryProcessor;
use mmdb_rules::ColorRangeQuery;
use mmdb_storage::StorageEngine;
use proptest::prelude::*;

const PALETTE: [Rgb; 5] = [
    Rgb::new(255, 0, 0),
    Rgb::new(0, 0, 255),
    Rgb::new(0, 200, 0),
    Rgb::new(255, 255, 255),
    Rgb::new(0, 0, 0),
];

fn arb_color() -> impl Strategy<Value = Rgb> {
    (0..PALETTE.len()).prop_map(|i| PALETTE[i])
}

fn arb_base() -> impl Strategy<Value = RasterImage> {
    (
        6i64..18,
        6i64..18,
        arb_color(),
        proptest::collection::vec((0i64..12, 0i64..12, 1i64..10, 1i64..10, arb_color()), 0..3),
    )
        .prop_map(|(w, h, bg, rects)| {
            let mut img = RasterImage::filled(w as u32, h as u32, bg).unwrap();
            for (x, y, rw, rh, c) in rects {
                draw::fill_rect(&mut img, &Rect::from_origin_size(x, y, rw, rh), c);
            }
            img
        })
}

/// Ops parameterized over base indices 0..n_bases (mapped to real ids at
/// insertion time).
#[derive(Clone, Debug)]
enum OpSpec {
    Define(i64, i64, i64, i64),
    Modify(Rgb, Rgb),
    Blur,
    Translate(i64, i64),
    Rotate(u8),
    Scale2x,
    Crop(i64, i64, i64, i64),
    MergeInto(usize, i64, i64),
}

fn arb_op_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0i64..14, 0i64..14, 1i64..10, 1i64..10)
            .prop_map(|(x, y, w, h)| OpSpec::Define(x, y, w, h)),
        (arb_color(), arb_color()).prop_map(|(a, b)| OpSpec::Modify(a, b)),
        Just(OpSpec::Blur),
        (-5i64..5, -5i64..5).prop_map(|(dx, dy)| OpSpec::Translate(dx, dy)),
        (0u8..8).prop_map(OpSpec::Rotate),
        Just(OpSpec::Scale2x),
        (0i64..8, 0i64..8, 2i64..8, 2i64..8).prop_map(|(x, y, w, h)| OpSpec::Crop(x, y, w, h)),
        (any::<usize>(), 0i64..10, 0i64..10).prop_map(|(t, x, y)| OpSpec::MergeInto(t, x, y)),
    ]
}

fn realize(spec: &OpSpec, bases: &[ImageId]) -> Vec<EditOp> {
    match spec {
        OpSpec::Define(x, y, w, h) => vec![EditOp::Define {
            region: Rect::from_origin_size(*x, *y, *w, *h),
        }],
        OpSpec::Modify(a, b) => vec![EditOp::Modify { from: *a, to: *b }],
        OpSpec::Blur => vec![EditOp::box_blur()],
        OpSpec::Translate(dx, dy) => vec![EditOp::Mutate {
            matrix: Matrix3::translation(*dx as f64, *dy as f64),
        }],
        OpSpec::Rotate(octant) => vec![EditOp::Mutate {
            matrix: Matrix3::rotation_about(*octant as f64 * std::f64::consts::FRAC_PI_4, 6.0, 6.0),
        }],
        OpSpec::Scale2x => vec![
            EditOp::define_all(),
            EditOp::Mutate {
                matrix: Matrix3::scale(2.0, 2.0),
            },
        ],
        OpSpec::Crop(x, y, w, h) => vec![
            EditOp::Define {
                region: Rect::from_origin_size(*x, *y, *w, *h),
            },
            EditOp::Merge {
                target: None,
                xp: 0,
                yp: 0,
            },
        ],
        OpSpec::MergeInto(t, x, y) => vec![EditOp::Merge {
            target: Some(bases[t % bases.len()]),
            xp: *x,
            yp: *y,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rbm_bwm_equivalence_over_random_databases(
        bases in proptest::collection::vec(arb_base(), 1..5),
        edits in proptest::collection::vec(
            (any::<usize>(), proptest::collection::vec(arb_op_spec(), 0..5)),
            0..10
        ),
        queries in proptest::collection::vec(
            (0..PALETTE.len(), 0.0f64..0.9, 0.1f64..1.0),
            1..6
        ),
    ) {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
        let base_ids: Vec<ImageId> = bases
            .iter()
            .map(|img| db.insert_binary(img).unwrap())
            .collect();
        for (base_sel, specs) in &edits {
            let base = base_ids[base_sel % base_ids.len()];
            let ops: Vec<EditOp> = specs.iter().flat_map(|s| realize(s, &base_ids)).collect();
            // The storage engine validates on insert: structurally invalid
            // scripts (e.g. crop of an off-canvas region) are refused, so
            // everything stored is processable by every method.
            match db.insert_edited(EditSequence::new(base, ops)) {
                Ok(id) => {
                    // Validation implies instantiability.
                    prop_assert!(db.raster(id).is_ok(), "validated sequence must instantiate");
                }
                Err(mmdb_storage::StorageError::InvalidSequence(_)) => {}
                Err(other) => prop_assert!(false, "unexpected insert error: {other}"),
            }
        }

        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        for (color_idx, lo, span) in &queries {
            use mmdb_histogram::Quantizer;
            let bin = RgbQuantizer::default_64().bin_of(PALETTE[*color_idx]);
            let hi = (lo + span).min(1.0);
            let q = ColorRangeQuery::new(bin, *lo, hi);
            // Insert-time validation guarantees every plan succeeds.
            let r = qp.range_rbm(&q).expect("validated database: RBM succeeds");
            let b = qp.range_bwm(&q).expect("validated database: BWM succeeds");
            prop_assert_eq!(r.sorted_results(), b.sorted_results());
            let par = qp
                .range_rbm_parallel(&q, 3)
                .expect("validated database: parallel RBM succeeds");
            prop_assert_eq!(par.sorted_results(), r.sorted_results());
            let truth = qp
                .range_instantiate(&q)
                .expect("validated database: instantiation succeeds");
            for id in truth.sorted_results() {
                prop_assert!(r.results.contains(&id), "false negative {}", id);
            }
        }
    }
}

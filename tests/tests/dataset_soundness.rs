//! Dataset-scale soundness: over realistically generated augmented
//! databases, the conservative rule bounds admit the true histogram of every
//! edited image, and the BWM classification agrees with the op-level
//! definition.

use mmdb_bwm::Classification;
use mmdb_datagen::{Collection, DatasetBuilder};
use mmdb_histogram::ColorHistogram;
use mmdb_query::QueryProcessor;
use mmdb_rules::{RuleEngine, RuleProfile};

fn check(collection: Collection, seed: u64) {
    let (db, info) = DatasetBuilder::new(collection)
        .total_images(60)
        .pct_edited(0.7)
        .seed(seed)
        .build();
    let engine =
        RuleEngine::with_background(db.quantizer(), RuleProfile::Conservative, db.background());
    // Sample bins: the collection palette's bins plus a few uniform ones.
    let mut bins: Vec<usize> = (0..db.quantizer().bin_count()).step_by(7).collect();
    bins.push(0);
    bins.sort_unstable();
    bins.dedup();

    for &id in &info.edited_ids {
        let seq = db.edit_sequence(id).expect("edited image has a sequence");
        let raster = db.raster(id).expect("instantiates");
        let truth = ColorHistogram::extract(&raster, db.quantizer());
        for &bin in &bins {
            let bounds = engine
                .bounds(&seq, bin, &db)
                .unwrap_or_else(|e| panic!("{id} bin {bin}: {e}"));
            assert_eq!(
                bounds.total,
                raster.pixel_count(),
                "{id}: total mismatch (seq {seq:?})"
            );
            assert!(
                bounds.admits(truth.count(bin)),
                "{id} bin {bin}: bounds {bounds:?} exclude true count {}",
                truth.count(bin)
            );
        }
    }
}

#[test]
fn flags_bounds_admit_ground_truth() {
    check(Collection::Flags, 101);
}

#[test]
fn helmets_bounds_admit_ground_truth() {
    check(Collection::Helmets, 102);
}

#[test]
fn bwm_classification_matches_op_level_definition() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(60)
        .pct_edited(0.7)
        .seed(5)
        .build();
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    let bwm = qp.bwm().unwrap();
    for &id in &info.edited_ids {
        let seq = db.edit_sequence(id).unwrap();
        let expected = if seq.all_bound_widening() {
            Classification::Main
        } else {
            Classification::Unclassified
        };
        assert_eq!(bwm.classification(id), Some(expected), "{id}");
        if expected == Classification::Main {
            let base = db.base_of(id).unwrap();
            assert!(bwm.cluster_of(base).unwrap().contains(&id));
        }
    }
}

#[test]
fn edited_histograms_via_storage_match_direct_extraction() {
    let (db, info) = DatasetBuilder::new(Collection::Helmets)
        .total_images(30)
        .pct_edited(0.5)
        .seed(8)
        .build();
    for &id in info.edited_ids.iter().take(10) {
        let via_storage = db.histogram(id).unwrap();
        let raster = db.raster(id).unwrap();
        let direct = ColorHistogram::extract(&raster, db.quantizer());
        assert_eq!(via_storage.counts(), direct.counts());
    }
}

//! End-to-end integration: generated augmented databases answered by all
//! three plans, with the paper's correctness guarantees checked on every
//! query.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;

fn check_collection(collection: Collection, seed: u64) {
    let (db, info) = DatasetBuilder::new(collection)
        .total_images(80)
        .pct_edited(0.7)
        .seed(seed)
        .variant_config(VariantConfig {
            min_ops: 3,
            max_ops: 8,
            p_merge_target: 0.3,
        })
        .build();
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();

    // The BWM structure tracks exactly the dataset's classification stats.
    let bwm = qp.bwm().unwrap();
    assert_eq!(bwm.cluster_count(), info.binary_images);
    assert_eq!(bwm.classified_count(), info.bound_widening_only);
    assert_eq!(bwm.unclassified_count(), info.non_bound_widening);

    let queries = QueryGenerator::weighted_from_db(seed ^ 77, &db).batch(25);
    for (i, q) in queries.iter().enumerate() {
        let rbm = qp.range_rbm(q).unwrap();
        let bwm_out = qp.range_bwm(q).unwrap();
        // §4: BWM produces "the same query results" as RBM.
        assert_eq!(
            rbm.sorted_results(),
            bwm_out.sorted_results(),
            "query {i} of {collection}: result sets diverge"
        );
        // BWM never does more BOUNDS work than RBM.
        assert!(
            bwm_out.stats.bounds_computed <= rbm.stats.bounds_computed,
            "query {i}: BWM computed more bounds than RBM"
        );
        // No false negatives against the instantiation ground truth.
        let truth = qp.range_instantiate(q).unwrap();
        for id in truth.sorted_results() {
            assert!(
                rbm.results.contains(&id),
                "query {i} of {collection}: false negative {id}"
            );
        }
        // Parallel RBM agrees with serial.
        let parallel = qp.range_rbm_parallel(q, 4).unwrap();
        assert_eq!(parallel.sorted_results(), rbm.sorted_results());
    }
}

#[test]
fn flags_end_to_end() {
    check_collection(Collection::Flags, 11);
}

#[test]
fn helmets_end_to_end() {
    check_collection(Collection::Helmets, 13);
}

#[test]
fn provenance_expansion_includes_bases() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(40)
        .pct_edited(0.5)
        .seed(3)
        .build();
    let qp = QueryProcessor::new(&db);
    let expanded = qp.expand_with_bases(&info.edited_ids);
    for &edited in &info.edited_ids {
        let base = db.base_of(edited).expect("edited image has a base");
        assert!(expanded.contains(&base), "{base} missing from expansion");
    }
    // Expansion is idempotent.
    let twice = qp.expand_with_bases(&expanded);
    assert_eq!(twice, expanded);
}

#[test]
fn facade_matches_raw_processor() {
    use mmdbms::prelude::*;
    let (db, _info) = DatasetBuilder::new(Collection::Helmets)
        .total_images(40)
        .pct_edited(0.6)
        .seed(9)
        .build();
    // Rebuild the same data through the facade by re-inserting rasters and
    // sequences, then compare a query across both stacks.
    let facade = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
    let mut id_map = std::collections::HashMap::new();
    for old in db.binary_ids() {
        let raster = db.raster(old).unwrap();
        id_map.insert(old, facade.insert_image(&raster).unwrap());
    }
    for old in db.edited_ids() {
        let seq = db.edit_sequence(old).unwrap();
        let mut remapped = (*seq).clone();
        remapped.base = id_map[&remapped.base];
        for op in &mut remapped.ops {
            if let mmdbms::editops::EditOp::Merge {
                target: Some(t), ..
            } = op
            {
                *t = id_map[t];
            }
        }
        id_map.insert(old, facade.insert_edited(remapped).unwrap());
    }
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    let q = ColorRangeQuery::at_least(0, 0.1);
    let raw: Vec<_> = qp
        .range_bwm(&q)
        .unwrap()
        .sorted_results()
        .into_iter()
        .map(|id| id_map[&id])
        .collect();
    let mut raw = raw;
    raw.sort_unstable();
    let via_facade = facade.query_range(&q).unwrap().sorted_results();
    assert_eq!(raw, via_facade);
}

#[test]
fn hsv_quantizer_full_pipeline() {
    // The whole stack is quantizer-generic: run a mini end-to-end pass over
    // the 162-bin HSV space.
    use mmdbms::prelude::*;
    let db = MultimediaDatabase::in_memory(Box::new(HsvQuantizer::default_162()));
    let generator = mmdb_datagen::flags::FlagGenerator::with_seed(31);
    let mut bases = Vec::new();
    for i in 0..8 {
        bases.push(db.insert_image(&generator.generate(i)).unwrap());
    }
    for &b in &bases {
        db.insert_edited(
            EditSequence::builder(b)
                .define(Rect::new(5, 5, 40, 30))
                .modify(Rgb::new(0xCE, 0x11, 0x26), Rgb::new(0x00, 0x7A, 0x3D))
                .blur()
                .build(),
        )
        .unwrap();
    }
    assert_eq!(db.quantizer().bin_count(), 162);
    let red_bin = db.bin_of(Rgb::new(0xCE, 0x11, 0x26));
    let q = ColorRangeQuery::at_least(red_bin, 0.1);
    let bwm = db.query_range(&q).unwrap();
    let rbm = db.query_range_with_plan(&q, QueryPlan::Rbm).unwrap();
    assert_eq!(bwm.sorted_results(), rbm.sorted_results());
    let truth = db
        .query_range_with_plan(&q, QueryPlan::Instantiate)
        .unwrap();
    for id in truth.sorted_results() {
        assert!(bwm.results.contains(&id), "HSV false negative {id}");
    }
    // fsck passes under HSV too.
    assert!(db.storage().verify().is_empty());
}

//! Durability integration: a generated augmented database survives flush +
//! reopen with identical query behaviour.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator};
use mmdb_query::QueryProcessor;
use mmdbms::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmdb_it_{}_{}_{tag}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Copies an in-memory generated dataset into an on-disk facade database.
fn materialize(dir: &std::path::Path) -> (MultimediaDatabase, usize, usize) {
    let (src, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(50)
        .pct_edited(0.6)
        .seed(21)
        .build();
    let db = MultimediaDatabase::create(dir, Box::new(RgbQuantizer::default_64())).unwrap();
    let mut id_map = std::collections::HashMap::new();
    for old in src.binary_ids() {
        id_map.insert(old, db.insert_image(&src.raster(old).unwrap()).unwrap());
    }
    for old in src.edited_ids() {
        let mut seq = (*src.edit_sequence(old).unwrap()).clone();
        seq.base = id_map[&seq.base];
        for op in &mut seq.ops {
            if let mmdbms::editops::EditOp::Merge {
                target: Some(t), ..
            } = op
            {
                *t = id_map[t];
            }
        }
        db.insert_edited(seq).unwrap();
    }
    (db, info.binary_images, info.edited_images)
}

#[test]
fn reopen_preserves_query_results() {
    let dir = temp_dir("reopen");
    let (db, n_binary, n_edited) = materialize(&dir);
    let queries = QueryGenerator::weighted_from_db(5, db.storage()).batch(12);
    let before: Vec<Vec<ImageId>> = queries
        .iter()
        .map(|q| db.query_range(q).unwrap().sorted_results())
        .collect();
    db.flush().unwrap();
    drop(db);

    let db = MultimediaDatabase::open(&dir).unwrap();
    assert_eq!(db.storage().binary_ids().len(), n_binary);
    assert_eq!(db.storage().edited_ids().len(), n_edited);
    for (q, expect) in queries.iter().zip(&before) {
        assert_eq!(&db.query_range(q).unwrap().sorted_results(), expect);
    }
    // RBM after reopen agrees too.
    let qp = QueryProcessor::new(db.storage());
    for (q, expect) in queries.iter().zip(&before) {
        assert_eq!(&qp.range_rbm(q).unwrap().sorted_results(), expect);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deletes_survive_reopen_and_release_space() {
    let dir = temp_dir("delete");
    let (db, _, _) = materialize(&dir);
    // Delete one base's children then the base itself.
    let base = db.storage().binary_ids()[0];
    let children = db.storage().children_of(base);
    for c in &children {
        db.delete(*c).unwrap();
    }
    db.delete(base).unwrap();
    let remaining = db.storage().ids().len();
    db.flush().unwrap();
    drop(db);

    let db = MultimediaDatabase::open(&dir).unwrap();
    assert_eq!(db.storage().ids().len(), remaining);
    assert!(!db.storage().contains(base));
    // The freed blob space is reused by a fresh insert.
    let stats_before = db.stats();
    let img = RasterImage::filled(90, 60, Rgb::RED).unwrap();
    db.insert_image(&img).unwrap();
    let stats_after = db.stats();
    assert_eq!(stats_after.binary_count, stats_before.binary_count + 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rasters_roundtrip_bit_exact_through_disk() {
    let dir = temp_dir("bits");
    let (db, _, _) = materialize(&dir);
    let sample: Vec<ImageId> = db.storage().ids().into_iter().take(10).collect();
    let originals: Vec<RasterImage> = sample
        .iter()
        .map(|&id| (*db.image(id).unwrap()).clone())
        .collect();
    db.flush().unwrap();
    drop(db);
    let db = MultimediaDatabase::open(&dir).unwrap();
    for (id, original) in sample.iter().zip(&originals) {
        assert_eq!(
            &*db.image(*id).unwrap(),
            original,
            "{id} changed across reopen"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Smoke tests over the experiment harness: the reduced configuration of
//! every `repro` experiment must run and satisfy its structural invariants.

use mmdb_bench::experiments::{
    self, figure_sweep, headline, nbw_ablation, profile_ablation, selectivity_ablation, table2,
    Figure, SweepConfig,
};
use mmdb_datagen::Collection;

#[test]
fn both_figures_run_and_agree() {
    let cfg = SweepConfig::fast();
    for figure in [Figure::Fig3Helmet, Figure::Fig4Flag] {
        let points = figure_sweep(figure, &cfg);
        assert_eq!(points.len(), cfg.pcts.len());
        for p in &points {
            assert!(p.results_equal, "{figure:?} at {}%", p.pct * 100.0);
            assert_eq!(p.binary + p.edited, cfg.total_images);
            assert_eq!(p.bw_only + p.nbw, p.edited);
            assert!(p.rbm_ms.is_finite() && p.bwm_ms.is_finite());
            // BWM never computes more bounds than RBM.
            assert!(p.bwm_bounds_per_query <= p.rbm_bounds_per_query + 1e-9);
            // RBM's bound count is exactly the edited-image count.
            assert!((p.rbm_bounds_per_query - p.edited as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn headline_report_well_formed() {
    let mut cfg = SweepConfig::fast();
    cfg.pcts = vec![0.2, 0.8];
    let reports = headline(&cfg);
    assert_eq!(reports.len(), 2);
    for r in reports {
        assert_eq!(r.points.len(), 2);
        assert!(r.avg_reduction_pct.is_finite());
        assert_eq!(r.first_reduction_pct, r.points[0].reduction_pct);
        assert_eq!(r.last_reduction_pct, r.points[1].reduction_pct);
    }
}

#[test]
fn table2_consistency() {
    for collection in [Collection::Flags, Collection::Helmets] {
        let info = table2(collection, 42);
        assert_eq!(info.binary_images + info.edited_images, info.total_images);
        assert_eq!(
            info.bound_widening_only + info.non_bound_widening,
            info.edited_images
        );
        let rows = info.table2_rows();
        assert_eq!(rows.len(), 6);
    }
}

#[test]
fn selectivity_ablation_hit_rate_monotone() {
    let mut cfg = SweepConfig::fast();
    cfg.total_images = 60;
    cfg.queries = 8;
    let points = selectivity_ablation(Collection::Helmets, &cfg, &[0.05, 0.6]);
    assert_eq!(points.len(), 2);
    // Higher thresholds cannot increase the base hit rate.
    assert!(points[0].base_hit_rate >= points[1].base_hit_rate);
}

#[test]
fn nbw_ablation_work_counters() {
    let mut cfg = SweepConfig::fast();
    cfg.total_images = 60;
    cfg.queries = 8;
    let points = nbw_ablation(Collection::Flags, &cfg, &[0.0, 1.0]);
    // All-unclassified: the structure saves nothing.
    assert_eq!(
        points[1].rbm_bounds_per_query,
        points[1].bwm_bounds_per_query
    );
    // All-classified: some clusters hit, so bounds are saved.
    assert!(points[0].bwm_bounds_per_query < points[0].rbm_bounds_per_query);
}

#[test]
fn profile_ablation_guarantees() {
    let mut cfg = SweepConfig::fast();
    cfg.total_images = 50;
    cfg.queries = 5;
    let report = profile_ablation(Collection::Flags, &cfg);
    assert_eq!(report.false_negatives_conservative, 0);
    assert!(report.candidates_conservative >= report.truth_matches);
    assert!(report.avg_width_conservative >= 0.0);
}

#[test]
fn query_batch_helper() {
    let (db, _) = mmdb_datagen::DatasetBuilder::new(Collection::Flags)
        .total_images(20)
        .pct_edited(0.5)
        .build();
    let batch = experiments::query_batch(Collection::Flags, &db, 7, 1);
    assert_eq!(batch.len(), 7);
}

//! Golden-file tests: checked-in edit scripts must keep parsing,
//! instantiating and bounding to the same observable results forever.

use mmdb_editops::codec;
use mmdb_histogram::{ColorHistogram, Quantizer, RgbQuantizer};
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use mmdb_rules::{ColorRangeQuery, RuleEngine, RuleProfile};
use mmdb_storage::StorageEngine;

fn data(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 90×60 tricolor (red / white / navy vertical thirds) as image 1, plus a
/// 40×40 solid gold target as image 2 — the fixture every golden script
/// refers to.
fn fixture_db() -> StorageEngine {
    let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
    let mut tricolor = RasterImage::filled(90, 60, Rgb::WHITE).unwrap();
    draw::fill_rect(
        &mut tricolor,
        &Rect::new(0, 0, 30, 60),
        Rgb::new(0xCE, 0x11, 0x26),
    );
    draw::fill_rect(
        &mut tricolor,
        &Rect::new(60, 0, 90, 60),
        Rgb::new(0x00, 0x28, 0x68),
    );
    let id1 = db.insert_binary(&tricolor).unwrap();
    assert_eq!(id1.raw(), 1);
    let gold = RasterImage::filled(40, 40, Rgb::new(0xFC, 0xD1, 0x16)).unwrap();
    let id2 = db.insert_binary(&gold).unwrap();
    assert_eq!(id2.raw(), 2);
    db
}

#[test]
fn teal_wash_golden() {
    let db = fixture_db();
    let seq = codec::from_text(&data("teal_wash.edit")).expect("golden script parses");
    assert!(
        seq.all_bound_widening(),
        "teal_wash is a Main-component script"
    );
    let id = db.insert_edited(seq.clone()).expect("valid script");
    let raster = db.raster(id).expect("instantiates");

    // Frozen observable facts about the result.
    assert_eq!((raster.width(), raster.height()), (90, 30));
    let q = RgbQuantizer::default_64();
    let hist = ColorHistogram::extract(&raster, &q);
    let teal = q.bin_of(Rgb::new(0x00, 0x9B, 0x9E));
    let red = q.bin_of(Rgb::new(0xCE, 0x11, 0x26));
    assert_eq!(hist.count(teal), 870, "teal population drifted");
    assert_eq!(hist.count(red), 0, "all red must have been recolored");
    assert_eq!(hist.total(), 2700);

    // The conservative bounds are frozen exactly: the blur over the whole
    // 1800-pixel band widens teal to [0, 3600], and the crop caps it at the
    // new 2700-pixel total.
    let engine = RuleEngine::new(&q, RuleProfile::Conservative);
    let bounds = engine.bounds(&seq, teal, &db).unwrap();
    assert_eq!(
        (bounds.min, bounds.max, bounds.total),
        (0, 2700, 2700),
        "teal bounds drifted"
    );
    assert!(bounds.admits(870));
    assert!(engine
        .may_satisfy(&seq, &ColorRangeQuery::at_least(teal, 0.2), &db)
        .unwrap());
    // The literal Table 1 profile has no Combine widening, so it *can*
    // prune: red's literal range is [0, 1800]/2700 ≈ [0, 0.67].
    let literal = RuleEngine::new(&q, RuleProfile::PaperTable1);
    assert!(!literal
        .may_satisfy(&seq, &ColorRangeQuery::new(red, 0.95, 1.0), &db)
        .unwrap());
}

#[test]
fn stamp_and_merge_golden() {
    let db = fixture_db();
    let seq = codec::from_text(&data("stamp_and_merge.edit")).expect("golden script parses");
    assert!(
        !seq.all_bound_widening(),
        "merge-with-target is unclassified"
    );
    assert_eq!(seq.merge_targets(), vec![mmdb_editops::ImageId::new(2)]);
    let id = db.insert_edited(seq.clone()).expect("valid script");
    let raster = db.raster(id).expect("instantiates");

    // Canvas: the 40×40 target grown by the 25×25 paste at (10,10) → 40×40
    // (paste fits inside).
    assert_eq!((raster.width(), raster.height()), (40, 40));
    let q = RgbQuantizer::default_64();
    let hist = ColorHistogram::extract(&raster, &q);
    let gold = q.bin_of(Rgb::new(0xFC, 0xD1, 0x16));
    assert_eq!(hist.count(gold), 975, "surviving gold drifted");
    // Bounds stay sound for the whole pipeline.
    let engine = RuleEngine::new(&q, RuleProfile::Conservative);
    for bin in [gold, q.bin_of(Rgb::new(0xCE, 0x11, 0x26)), 0] {
        let b = engine.bounds(&seq, bin, &db).unwrap();
        assert!(
            b.admits(hist.count(bin)),
            "bin {bin}: {b:?} vs {}",
            hist.count(bin)
        );
        assert_eq!(b.total, 1600);
    }
}

#[test]
fn golden_scripts_roundtrip_via_printer() {
    for name in ["teal_wash.edit", "stamp_and_merge.edit"] {
        let seq = codec::from_text(&data(name)).unwrap();
        let printed = codec::to_text(&seq);
        assert_eq!(codec::from_text(&printed).unwrap(), seq, "{name}");
        let bytes = codec::encode(&seq);
        assert_eq!(codec::decode(&bytes).unwrap(), seq, "{name}");
    }
}

//! Concurrency integration: the storage engine and query paths are shared
//! across threads (`&StorageEngine` is `Sync`); readers must see consistent
//! data while writers insert.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator};
use mmdb_editops::EditSequence;
use mmdb_imaging::{RasterImage, Rect, Rgb};
use mmdb_query::QueryProcessor;
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn concurrent_readers_during_inserts() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(40)
        .pct_edited(0.5)
        .seed(17)
        .build();
    let initial_ids = db.ids();
    let stop = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        // Writer: keeps inserting new binary images and edited variants.
        scope.spawn(|_| {
            for i in 0..60u32 {
                let img = RasterImage::filled(20, 20, Rgb::new((i * 4) as u8, 100, 50)).unwrap();
                let base = db.insert_binary(&img).expect("insert under contention");
                db.insert_edited(
                    EditSequence::builder(base)
                        .define(Rect::new(0, 0, 10, 10))
                        .modify(Rgb::new((i * 4) as u8, 100, 50), Rgb::WHITE)
                        .build(),
                )
                .expect("edited insert under contention");
            }
            stop.store(true, Ordering::SeqCst);
        });
        // Readers: rasters and histograms of the *initial* ids stay valid
        // and bit-stable throughout.
        for _ in 0..3 {
            scope.spawn(|_| {
                let baseline: Vec<_> = initial_ids
                    .iter()
                    .map(|&id| db.raster(id).expect("raster"))
                    .collect();
                while !stop.load(Ordering::SeqCst) {
                    for (&id, expect) in initial_ids.iter().zip(&baseline) {
                        let got = db.raster(id).expect("raster under contention");
                        assert_eq!(&got, expect, "{id} changed under concurrent writes");
                    }
                }
            });
        }
        // Query reader: RBM over a snapshot processor keeps succeeding.
        scope.spawn(|_| {
            let qp = QueryProcessor::new(&db);
            let mut qgen = QueryGenerator::weighted_from_db(3, &db);
            while !stop.load(Ordering::SeqCst) {
                for q in qgen.batch(4) {
                    let out = qp.range_rbm(&q).expect("query under contention");
                    // Sanity: results refer to existing images.
                    for id in out.results {
                        assert!(db.contains(id));
                    }
                }
            }
        });
    })
    .expect("no thread panicked");

    // Everything inserted made it.
    assert_eq!(db.ids().len(), info.total_images + 120);
    db.flush().ok();
}

#[test]
fn parallel_rbm_under_many_threads_is_stable() {
    let (db, _) = DatasetBuilder::new(Collection::Helmets)
        .total_images(60)
        .pct_edited(0.7)
        .seed(23)
        .build();
    let qp = QueryProcessor::new(&db);
    let queries = QueryGenerator::weighted_from_db(9, &db).batch(8);
    let reference: Vec<_> = queries
        .iter()
        .map(|q| qp.range_rbm(q).unwrap().sorted_results())
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|_| {
                for (q, expect) in queries.iter().zip(&reference) {
                    let got = qp.range_rbm_parallel(q, 8).unwrap().sorted_results();
                    assert_eq!(&got, expect);
                }
            });
        }
    })
    .expect("no panic");
}

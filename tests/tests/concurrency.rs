//! Concurrency integration: the storage engine and query paths are shared
//! across threads (`&StorageEngine` is `Sync`); readers must see consistent
//! data while writers insert.

use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator};
use mmdb_editops::EditSequence;
use mmdb_imaging::{RasterImage, Rect, Rgb};
use mmdb_query::QueryProcessor;
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn concurrent_readers_during_inserts() {
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(40)
        .pct_edited(0.5)
        .seed(17)
        .build();
    let initial_ids = db.ids();
    let stop = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        // Writer: keeps inserting new binary images and edited variants.
        scope.spawn(|_| {
            for i in 0..60u32 {
                let img = RasterImage::filled(20, 20, Rgb::new((i * 4) as u8, 100, 50)).unwrap();
                let base = db.insert_binary(&img).expect("insert under contention");
                db.insert_edited(
                    EditSequence::builder(base)
                        .define(Rect::new(0, 0, 10, 10))
                        .modify(Rgb::new((i * 4) as u8, 100, 50), Rgb::WHITE)
                        .build(),
                )
                .expect("edited insert under contention");
            }
            stop.store(true, Ordering::SeqCst);
        });
        // Readers: rasters and histograms of the *initial* ids stay valid
        // and bit-stable throughout.
        for _ in 0..3 {
            scope.spawn(|_| {
                let baseline: Vec<_> = initial_ids
                    .iter()
                    .map(|&id| db.raster(id).expect("raster"))
                    .collect();
                while !stop.load(Ordering::SeqCst) {
                    for (&id, expect) in initial_ids.iter().zip(&baseline) {
                        let got = db.raster(id).expect("raster under contention");
                        assert_eq!(&got, expect, "{id} changed under concurrent writes");
                    }
                }
            });
        }
        // Query reader: RBM over a snapshot processor keeps succeeding.
        scope.spawn(|_| {
            let qp = QueryProcessor::new(&db);
            let mut qgen = QueryGenerator::weighted_from_db(3, &db);
            while !stop.load(Ordering::SeqCst) {
                for q in qgen.batch(4) {
                    let out = qp.range_rbm(&q).expect("query under contention");
                    // Sanity: results refer to existing images.
                    for id in out.results {
                        assert!(db.contains(id));
                    }
                }
            }
        });
    })
    .expect("no thread panicked");

    // Everything inserted made it.
    assert_eq!(db.ids().len(), info.total_images + 120);
    db.flush().ok();
}

/// The bound-index staleness gauges: epoch lag and resync backlog spike
/// monotonically under write churn, and return to zero the moment an
/// indexed query rebuilds/re-syncs the slot — including under concurrent
/// readers driving the indexed path while a writer churns.
#[test]
fn staleness_gauges_zero_after_sync_and_spike_under_churn() {
    use mmdbms::prelude::*;
    let db = mmdbms::MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
    let gauge = |metric: &str| {
        mmdbms::telemetry::global()
            .gauge(&format!("{metric}{{profile=\"conservative\"}}"))
            .get()
    };
    let base = db
        .insert_image(&RasterImage::filled(20, 20, Rgb::RED).unwrap())
        .unwrap();
    for i in 0..4u8 {
        db.insert_edited(
            EditSequence::builder(base)
                .define(Rect::new(0, 0, 10, 10))
                .modify(Rgb::RED, Rgb::new(i, 200, 50))
                .build(),
        )
        .unwrap();
    }

    // Never-built slot: everything is pending.
    db.refresh_staleness_gauges();
    assert!(
        gauge("mmdb_boundidx_epoch_lag") > 0,
        "unbuilt slot must lag"
    );
    assert_eq!(gauge("mmdb_boundidx_resync_backlog"), 5);
    assert_eq!(gauge("mmdb_boundidx_entries_resident"), 0);

    // A full build via the indexed plan zeroes lag and backlog.
    let q = ColorRangeQuery::at_least(db.bin_of(Rgb::RED), 0.1);
    db.query_range_with_plan(&q, QueryPlan::Indexed).unwrap();
    db.refresh_staleness_gauges();
    assert_eq!(gauge("mmdb_boundidx_epoch_lag"), 0);
    assert_eq!(gauge("mmdb_boundidx_resync_backlog"), 0);
    assert_eq!(gauge("mmdb_boundidx_entries_resident"), 5);

    // Write churn with no intervening sync: lag and backlog climb
    // monotonically (the storage epoch is monotone, the index stamp fixed).
    let (mut last_lag, mut last_backlog) = (0u64, 0u64);
    for i in 0..5u8 {
        db.insert_image(&RasterImage::filled(16, 16, Rgb::new(10 + i, 20, 30)).unwrap())
            .unwrap();
        db.refresh_staleness_gauges();
        let (lag, backlog) = (
            gauge("mmdb_boundidx_epoch_lag"),
            gauge("mmdb_boundidx_resync_backlog"),
        );
        assert!(lag > last_lag, "epoch lag must spike under churn");
        assert!(backlog > last_backlog, "backlog must grow under churn");
        (last_lag, last_backlog) = (lag, backlog);
    }

    // Concurrent churn + indexed readers: the gauges stay well-formed (no
    // refresh panics racing the sync path) and a final indexed query after
    // the dust settles returns them to zero.
    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            for i in 0..20u8 {
                db.insert_image(&RasterImage::filled(12, 12, Rgb::new(i, 90, 60)).unwrap())
                    .expect("insert under contention");
            }
            stop.store(true, Ordering::SeqCst);
        });
        scope.spawn(|_| {
            while !stop.load(Ordering::SeqCst) {
                db.query_range_with_plan(&q, QueryPlan::Indexed)
                    .expect("indexed query under churn");
                db.refresh_staleness_gauges();
            }
        });
    })
    .expect("no thread panicked");
    db.query_range_with_plan(&q, QueryPlan::Indexed).unwrap();
    db.refresh_staleness_gauges();
    assert_eq!(gauge("mmdb_boundidx_epoch_lag"), 0);
    assert_eq!(gauge("mmdb_boundidx_resync_backlog"), 0);
    assert_eq!(gauge("mmdb_boundidx_entries_resident"), 30);
}

#[test]
fn parallel_rbm_under_many_threads_is_stable() {
    let (db, _) = DatasetBuilder::new(Collection::Helmets)
        .total_images(60)
        .pct_edited(0.7)
        .seed(23)
        .build();
    let qp = QueryProcessor::new(&db);
    let queries = QueryGenerator::weighted_from_db(9, &db).batch(8);
    let reference: Vec<_> = queries
        .iter()
        .map(|q| qp.range_rbm(q).unwrap().sorted_results())
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|_| {
                for (q, expect) in queries.iter().zip(&reference) {
                    let got = qp.range_rbm_parallel(q, 8).unwrap().sorted_results();
                    assert_eq!(&got, expect);
                }
            });
        }
    })
    .expect("no panic");
}

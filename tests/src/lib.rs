//! Integration-test host crate; see `tests/tests/`.

//! Minimal offline stand-in for the `criterion` crate.
//!
//! Covers the surface the workspace benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function` / `benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `BenchmarkId::new`, `Bencher::iter`, and `Bencher::iter_batched` with
//! `BatchSize`.
//!
//! Measurement model: each routine is warmed up, then timed over enough
//! iterations to fill a short measurement window per sample; the median
//! sample is reported as ns/iter on stdout. Far simpler than criterion's
//! statistics, but stable enough for A/B comparisons (it is what the
//! telemetry-overhead acceptance check uses).

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one parameterized benchmark case, e.g. `scan/1000`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to routines; `iter` runs and times the workload closure.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call, for the runner to report.
    last_ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let mut est = warmup_start.elapsed();
        if est.is_zero() {
            est = Duration::from_nanos(1);
        }
        // Size each sample to ~5 ms of work, bounded to keep total runtime sane.
        let per_sample = (Duration::from_millis(5).as_nanos() / est.as_nanos()).clamp(1, 100_000);
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_ns_per_iter = samples_ns[samples_ns.len() / 2];
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time
    /// from the measurement (the stub ignores the batch-size hint).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warmup_start = Instant::now();
        std::hint::black_box(routine(setup()));
        let mut est = warmup_start.elapsed();
        if est.is_zero() {
            est = Duration::from_nanos(1);
        }
        let per_sample = (Duration::from_millis(5).as_nanos() / est.as_nanos()).clamp(1, 10_000);
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_ns_per_iter = samples_ns[samples_ns.len() / 2];
    }
}

/// Mirror of `criterion::BatchSize`; the stub's measurement loop treats all
/// variants alike.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

fn run_one(name: &str, samples: usize, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_ns_per_iter: f64::NAN,
    };
    routine(&mut b);
    if b.last_ns_per_iter.is_nan() {
        println!("{name:<50} (no measurement)");
    } else {
        println!("{name:<50} {:>14.1} ns/iter", b.last_ns_per_iter);
    }
}

/// Mirror of `criterion::Criterion` — the benchmark runner handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.render()),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Re-export for routines that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        routine(&mut c);
    }
}

//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided — the one
//! API the workspace uses — implemented on top of `std::thread::scope`
//! (stable since Rust 1.63, below the workspace MSRV).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// Mirror of `crossbeam::thread::Scope`. Wraps the std scope so spawned
    /// closures can receive a `&Scope` argument like crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let raw = self.inner;
            ScopedJoinHandle {
                inner: raw.spawn(move || f(&Scope { inner: raw })),
            }
        }
    }

    /// `crossbeam::thread::scope`: runs `f` with a scope handle, joins every
    /// spawned thread before returning. Panics from un-joined threads (or
    /// from `f` itself) surface as `Err`, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("scope panicked");
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_become_err() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            let _ = h.join();
        });
        // The panic is captured at join; the scope itself succeeds.
        assert!(r.is_ok());
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
            // not joined: std::thread::scope re-panics, we catch it
        });
        assert!(r.is_err());
    }
}

//! Minimal offline stand-in for the `bytes` crate, covering the surface the
//! workspace codecs use: `BytesMut` as a growable little-endian writer
//! (via `BufMut`), `Bytes` as a frozen byte buffer, and `Buf` implemented
//! for `&[u8]` so decoders can consume a slice from the front.
//!
//! Semantics match upstream where exercised: `Buf` getters panic when the
//! buffer has fewer bytes than requested (callers guard with `remaining()`).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read access to a byte cursor, advancing from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_i64_le(), -42);
        assert_eq!(cur.get_f64_le(), 1.5);
        assert_eq!(cur.remaining(), 2);
        let mut xy = [0u8; 2];
        cur.copy_to_slice(&mut xy);
        assert_eq!(&xy, b"xy");
        assert!(!cur.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.get_u8(), 3);
    }
}

//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the exact surface the workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool` — backed by splitmix64. Deterministic for a given
//! seed, which is all the synthetic data generators require (they fix their
//! seeds); statistical quality beyond that is not a goal.

/// Core generator interface: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Per-type uniform sampling, mirroring `rand`'s `SampleUniform`. A single
/// generic `SampleRange` impl hangs off this so unsuffixed integer literals
/// in `gen_range(0..2)` unify with the surrounding usage instead of falling
/// back to `i32`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Uniform sampling from a range type, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: tiny, fast, and plenty for synthetic-dataset generation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-2i64..10);
            assert!((-2..10).contains(&v));
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

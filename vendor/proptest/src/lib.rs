//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, `prop_oneof!` (weighted
//! and unweighted), `Just`, `any::<T>()`, `proptest::collection::vec`,
//! `proptest::array::uniform9`, and the `prop_assert*` macros.
//!
//! Differences from upstream: generation is purely random with a
//! deterministic per-test seed (no shrinking, no failure persistence —
//! `*.proptest-regressions` files are ignored), and there is no `prop_flat_map`
//! / `prop_filter` / `prop_compose!` (unused here). Each test runs
//! `ProptestConfig::cases` iterations and panics on the first failing case,
//! printing the case number so it can be replayed deterministically.

use std::fmt;

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            Self { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` from the top 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestRng};

/// Error returned by `prop_assert!` macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a over a string — stable per-test seed derivation.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Per-type uniform sampling backing the range strategies. A single generic
/// `Strategy` impl hangs off this so unsuffixed integer literals in ranges
/// unify with the surrounding usage instead of falling back to `i32`.
pub trait RangeValue: Sized + Copy + PartialOrd {
    /// Uniform in `[lo, hi)`.
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;

    /// Uniform in `[lo, hi]`.
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }

            fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range_value!(f32, f64);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `Just(value)` — always yields a clone of `value`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies — backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }

    /// Boxes one `prop_oneof!` arm, unifying arm types behind `dyn Strategy`.
    pub fn boxed_arm<S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(s))
    }
}

/// Types with a canonical whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy behind `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy behind `any::<Option<T>>()`: 1-in-4 `None`.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    type Strategy = OptionStrategy<T::Strategy>;

    fn arbitrary() -> Self::Strategy {
        OptionStrategy(T::arbitrary())
    }
}

macro_rules! impl_tuple_arbitrary {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            type Strategy = ($($s::Strategy,)+);

            fn arbitrary() -> Self::Strategy {
                ($($s::arbitrary(),)+)
            }
        }
    )*};
}

impl_tuple_arbitrary! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for [`vec()`] — accepts `n`, `a..b`, `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Result of [`uniform9`].
    pub struct UniformArray9<S>(S);

    impl<S: Strategy> Strategy for UniformArray9<S> {
        type Value = [S::Value; 9];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 9] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `proptest::array::uniform9(element)` — nine independent draws.
    pub fn uniform9<S: Strategy>(element: S) -> UniformArray9<S> {
        UniformArray9(element)
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm(1u32, $strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        #[allow(unused_mut, unused_variables, clippy::redundant_closure_call)]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::from_seed(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let mut body =
                    move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                if let ::core::result::Result::Err(e) = body() {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (any::<u8>(), 1u8..=9).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, f in 0.0f64..1.0, (a, b) in arb_pair()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = a;
            prop_assert!((1..=9).contains(&b));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..6), w in crate::collection::vec(0u8..3, 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![3 => 0u8..10, 1 => 200u8..210], y in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x < 10 || (200..210).contains(&x));
            prop_assert!(y == 1 || y == 2);
        }

        #[test]
        fn arrays_and_options(a in crate::array::uniform9(-1.0f32..1.0), o in any::<Option<u64>>()) {
            prop_assert_eq!(a.len(), 9);
            if let Some(v) = o {
                let _ = v;
            }
        }
    }

    #[test]
    fn deterministic_per_test() {
        let mut r1 = crate::TestRng::from_seed(crate::fnv("x"));
        let mut r2 = crate::TestRng::from_seed(crate::fnv("x"));
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}

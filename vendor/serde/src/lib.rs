//! Minimal offline stand-in for `serde`.
//!
//! The workspace uses serde purely as `#[derive(Serialize, Deserialize)]`
//! markers; no serializer is ever driven. The derive macros (re-exported
//! from the vendored `serde_derive`) expand to nothing, so no traits are
//! needed here.

pub use serde_derive::{Deserialize, Serialize};

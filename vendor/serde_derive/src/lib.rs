//! Minimal offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to mark types
//! as wire-representable — no serializer is ever instantiated (the on-disk
//! formats are hand-rolled in `mmdb-editops::codec` and
//! `mmdb-storage::catalog`). The derives therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

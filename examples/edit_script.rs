//! Edit scripts: the human-readable text form of the storage format.
//!
//! An edited image is "stored as a reference to b along with the sequence of
//! operations used to change b into e" (§2). This example authors that
//! sequence as a text script, stores it, inspects the rule-derived bounds
//! per operation, and shows the compact binary encoding that actually hits
//! disk.
//!
//! ```text
//! cargo run --release --example edit_script
//! ```

use mmdbms::editops::codec;
use mmdbms::prelude::*;
use mmdbms::rules::RuleEngine;

fn main() {
    let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));

    // A base "flag": thirds of red / white / blue.
    let red = Rgb::new(0xCE, 0x11, 0x26);
    let blue = Rgb::new(0x00, 0x28, 0x68);
    let mut flag = RasterImage::filled(90, 60, Rgb::WHITE).unwrap();
    mmdbms::imaging::draw::fill_rect(&mut flag, &Rect::new(0, 0, 30, 60), red);
    mmdbms::imaging::draw::fill_rect(&mut flag, &Rect::new(60, 0, 90, 60), blue);
    let base = db.insert_image(&flag).unwrap();

    // ── Author a script ─────────────────────────────────────────────────
    let script = format!(
        "// teal-wash variant of the tricolor\n\
         base {}\n\
         define 0 0 30 60          // select the red band\n\
         modify #ce1126 #009b9e    // red -> teal\n\
         combine 1 1 1 1 1 1 1 1 1 // soften the band\n\
         define 0 0 90 30\n\
         merge null 0 0            // crop to the top half\n",
        base.raw()
    );
    println!("script:\n{script}");
    let sequence = codec::from_text(&script).expect("script parses");

    // Round-trip through the canonical printer.
    let printed = codec::to_text(&sequence);
    assert_eq!(codec::from_text(&printed).unwrap(), sequence);

    // The compact binary encoding the storage engine persists.
    let encoded = codec::encode(&sequence);
    println!(
        "binary encoding: {} bytes (the instantiated raster would be {} bytes of pixels)\n",
        encoded.len(),
        90 * 60 * 3
    );

    // ── Store it and query through the rules ────────────────────────────
    let edited = db.insert_edited(sequence.clone()).unwrap();

    // Per-prefix bounds on "teal" show how each operation moves the range.
    let teal = Rgb::new(0x00, 0x9B, 0x9E);
    let teal_bin = db.bin_of(teal);
    let engine = RuleEngine::new(db.quantizer(), RuleProfile::Conservative);
    println!("bounds on the teal bin after each operation prefix:");
    for n in 0..=sequence.len() {
        let prefix = EditSequence::new(sequence.base, sequence.ops[..n].to_vec());
        let b = engine.bounds(&prefix, teal_bin, db.storage()).unwrap();
        let (lo, hi) = b.fraction_range();
        let op = if n == 0 {
            "(base histogram)".to_string()
        } else {
            format!("{:?}", sequence.ops[n - 1].kind())
        };
        println!(
            "  after {n} op(s) {op:<18} teal in [{:.2}, {:.2}] of {} px",
            lo, hi, b.total
        );
    }

    // The stored variant answers a teal query without instantiation...
    let outcome = db
        .query_range(&ColorRangeQuery::at_least(teal_bin, 0.2))
        .unwrap();
    assert!(outcome.results.contains(&edited));
    println!(
        "\n'at least 20% teal' candidates: {:?}",
        outcome.sorted_results()
    );

    // ...and instantiates to exactly what the script describes.
    let raster = db.image(edited).unwrap();
    println!(
        "instantiated: {}x{} with {:.0}% teal",
        raster.width(),
        raster.height(),
        100.0 * raster.count_color(teal) as f64 / raster.pixel_count() as f64
    );
}

//! Helmet recognition: the paper's second evaluation scenario, and a
//! demonstration of *why databases are augmented* (§2).
//!
//! A query photo of a known helmet taken "under varying lighting
//! conditions" fails to match the stored original's histogram — but it does
//! match a stored *edited variant* (the original with its colors modified),
//! and the base↔variant connection returns the right helmet anyway.
//!
//! ```text
//! cargo run --release --example helmet_recognition
//! ```

use mmdbms::datagen::helmets::HelmetGenerator;
use mmdbms::histogram::l1_distance;
use mmdbms::prelude::*;

fn main() {
    let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
    let generator = HelmetGenerator::with_seed(77);

    // ── Store 30 team helmets conventionally ───────────────────────────
    let mut helmet_ids = Vec::new();
    for i in 0..30 {
        helmet_ids.push(db.insert_image(&generator.generate(i)).unwrap());
    }
    let team7 = helmet_ids[7];
    let team7_img = db.image(team7).unwrap();

    // ── Augment team 7 with a "night game" variant ─────────────────────
    // Find team 7's shell color — the dominant histogram bin once the studio
    // backdrop is excluded — and store a darkened version of the helmet as
    // an edit sequence.
    let hist = ColorHistogram::extract(&team7_img, db.quantizer());
    let backdrop_bin = db.bin_of(mmdbms::datagen::palette::HELMET_BACKDROP);
    let shell_bin = hist
        .nonzero()
        .filter(|&(bin, _)| bin != backdrop_bin)
        .max_by_key(|&(_, count)| count)
        .map(|(bin, _)| bin)
        .expect("helmet has foreground colors");
    let shell_color = dominant_color(&team7_img, shell_bin, db.quantizer());
    let dark = darken(shell_color);
    let night_variant = EditSequence::builder(team7)
        .modify(shell_color, dark)
        .blur()
        .build();
    let variant_id = db.insert_edited(night_variant).unwrap();
    println!(
        "stored night-game variant {variant_id} of helmet {team7} (shell {shell_color:?} -> {dark:?})"
    );

    // ── The query photo: the same helmet, shot at night ────────────────
    let mut photo = (*team7_img).clone();
    photo.map_in_place(|c| if c == shell_color { dark } else { c });

    // Direct histogram match against the stored originals fails: the photo's
    // shell color moved to a different bin.
    let photo_hist = ColorHistogram::extract(&photo, db.quantizer());
    let d_original = l1_distance(&photo_hist, &hist);
    println!(
        "L1 distance photo <-> stored original: {d_original:.3} (a poor match — different lighting)"
    );

    // ── Retrieval through the augmented database ───────────────────────
    // Query: images with at least as much of the *dark* color as the photo
    // shows.
    let dark_bin = db.bin_of(dark);
    let needed = photo_hist.fraction(dark_bin) * 0.8;
    let query = ColorRangeQuery::at_least(dark_bin, needed);
    let outcome = db.query_range(&query).unwrap();
    println!(
        "range query (>= {:.0}% of the dark shell color): candidates {:?}",
        needed * 100.0,
        outcome.sorted_results()
    );
    assert!(
        outcome.results.contains(&variant_id),
        "the stored variant must match the night photo's colors"
    );

    // §2: "this connection can be used to determine that x should also be
    // returned ... even though their respective features do not sufficiently
    // match."
    let expanded = db
        .storage()
        .base_of(variant_id)
        .expect("variant has a base");
    println!("provenance: variant {variant_id} -> base helmet {expanded}");
    assert_eq!(expanded, team7);
    println!("recognized the correct helmet ({team7}) despite the lighting change ✓");

    // Without augmentation the recognition fails: the nearest stored
    // original by histogram distance is usually some other team.
    let nn = db.similar_to(&photo, 1);
    println!(
        "for contrast, plain nearest-neighbour over originals returns {} (distance {:.3})",
        nn[0].1, nn[0].0
    );
}

/// The most common exact color of `img` that falls in `bin`.
fn dominant_color(
    img: &RasterImage,
    bin: usize,
    quantizer: &dyn mmdbms::histogram::Quantizer,
) -> Rgb {
    use std::collections::HashMap;
    let mut counts: HashMap<Rgb, u64> = HashMap::new();
    for &p in img.pixels() {
        if quantizer.bin_of(p) == bin {
            *counts.entry(p).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(c, _)| c)
        .expect("bin is populated")
}

/// A strong darkening — guaranteed to move saturated colors across 64-bin
/// boundaries.
fn darken(c: Rgb) -> Rgb {
    Rgb::new(c.r / 4, c.g / 4, c.b / 4)
}

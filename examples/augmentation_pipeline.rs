//! The full augmentation + persistence pipeline:
//!
//! 1. create an on-disk database,
//! 2. insert flags with automatic augmentation (variants stored as edit
//!    sequences, classified into the BWM structure as they arrive — the
//!    paper's Figure 1),
//! 3. flush, reopen, and verify queries still work,
//! 4. export an instantiated variant as a PPM file.
//!
//! ```text
//! cargo run --release --example augmentation_pipeline
//! ```

use mmdbms::datagen::flags::FlagGenerator;
use mmdbms::datagen::VariantConfig;
use mmdbms::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("mmdbms_pipeline_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // ── 1. Create ────────────────────────────────────────────────────────
    let db = MultimediaDatabase::create(&dir, Box::new(RgbQuantizer::default_64()))
        .expect("create database");
    println!("created database at {}", dir.display());

    // ── 2. Insert with augmentation ──────────────────────────────────────
    let flags = FlagGenerator::with_seed(1);
    let config = VariantConfig {
        min_ops: 3,
        max_ops: 8,
        p_merge_target: 0.2,
    };
    let mut first_base = None;
    for i in 0..12 {
        let (base, variants) = db
            .insert_image_with_augmentation(&flags.generate(i), 4, config, 1000 + i)
            .expect("insert with augmentation");
        first_base.get_or_insert(base);
        if i < 3 {
            println!("flag {i}: base {base}, variants {variants:?}");
        }
    }
    let snapshot = db.bwm_snapshot();
    println!(
        "BWM after inserts: {} clusters / {} classified / {} unclassified",
        snapshot.cluster_count(),
        snapshot.classified_count(),
        snapshot.unclassified_count()
    );
    let stats = db.stats();
    println!(
        "storage: {} binary images ({} bytes), {} edit sequences ({} bytes) — {:.0}x smaller per image",
        stats.binary_count,
        stats.binary_bytes,
        stats.edited_count,
        stats.edited_bytes,
        stats.space_saving_factor().unwrap_or(f64::NAN)
    );

    // ── 3. Flush, drop, reopen ──────────────────────────────────────────
    db.flush().expect("flush");
    drop(db);
    let db = MultimediaDatabase::open(&dir).expect("reopen database");
    println!("reopened: {} images", db.storage().ids().len());

    let red = Rgb::new(0xCE, 0x11, 0x26);
    let hits = db.find_at_least(red, 0.25).expect("query");
    println!(
        "'at least 25% red' after reopen: {} images (with provenance expansion)",
        hits.len()
    );

    // ── 4. Export an instantiated variant ───────────────────────────────
    let base = first_base.expect("inserted at least one flag");
    let variant = db.storage().children_of(base)[0];
    let out = dir.join("variant.ppm");
    db.export_ppm(variant, &out).expect("export");
    let size = std::fs::metadata(&out).map_or(0, |m| m.len());
    println!(
        "exported instantiated variant {variant} to {} ({size} bytes)",
        out.display()
    );

    std::fs::remove_dir_all(&dir).ok();
}

//! Flag retrieval: the paper's first evaluation scenario.
//!
//! Builds a synthetic world-flag collection, augments it with edited
//! variants stored as operation sequences, and runs the paper's example
//! query shape — "Retrieve all images that are at least 25% blue" — under
//! both RBM (§3) and BWM (§4), reporting the work each method did.
//!
//! ```text
//! cargo run --release --example flag_search
//! ```

use mmdbms::datagen::{Collection, DatasetBuilder, VariantConfig};
use mmdbms::prelude::*;
use mmdbms::query::QueryProcessor;
use std::time::Instant;

fn main() {
    // ── Build the augmented flag database ──────────────────────────────
    // 80 flags stored conventionally, 320 edited variants stored as edit
    // sequences (1/4 of which contain a Merge into another flag — the
    // non-bound-widening case).
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(400)
        .pct_edited(0.8)
        .seed(2006)
        .variant_config(VariantConfig {
            min_ops: 4,
            max_ops: 9,
            p_merge_target: 0.25,
        })
        .build();
    println!("flag database:");
    for (desc, value) in info.table2_rows() {
        println!("  {desc:<68} {value:>6}");
    }

    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    let bwm = qp.bwm().expect("structure attached");
    println!(
        "BWM structure: {} clusters, {} classified, {} unclassified",
        bwm.cluster_count(),
        bwm.classified_count(),
        bwm.unclassified_count()
    );

    // ── "Retrieve all images that are at least 25% blue" ───────────────
    let navy = Rgb::new(0x00, 0x28, 0x68);
    let query = ColorRangeQuery::at_least(db.quantizer().bin_of(navy), 0.25);

    let t = Instant::now();
    let rbm = qp.range_rbm(&query).unwrap();
    let rbm_time = t.elapsed();
    let t = Instant::now();
    let bwm_out = qp.range_bwm(&query).unwrap();
    let bwm_time = t.elapsed();

    println!("\nquery: at least 25% navy blue");
    println!(
        "  RBM:  {} results, {} BOUNDS computations, {} ops processed, {:?}",
        rbm.results.len(),
        rbm.stats.bounds_computed,
        rbm.stats.ops_processed,
        rbm_time
    );
    println!(
        "  BWM:  {} results, {} BOUNDS computations, {} ops processed, {:?}",
        bwm_out.results.len(),
        bwm_out.stats.bounds_computed,
        bwm_out.stats.ops_processed,
        bwm_time
    );
    println!(
        "  BWM shortcut: {} clusters hit, {} edited images emitted without touching an operation",
        bwm_out.stats.base_hits, bwm_out.stats.shortcut_emissions
    );
    assert_eq!(
        rbm.sorted_results(),
        bwm_out.sorted_results(),
        "both methods must return identical result sets"
    );

    // ── No false negatives: compare against the instantiation ground truth
    let truth = qp.range_instantiate(&query).unwrap();
    let missing: Vec<_> = truth
        .sorted_results()
        .into_iter()
        .filter(|id| !rbm.results.contains(id))
        .collect();
    println!(
        "\nground truth: {} true matches; RBM/BWM candidates: {}; false negatives: {}",
        truth.results.len(),
        rbm.results.len(),
        missing.len()
    );
    assert!(missing.is_empty(), "the rules guarantee no false negatives");

    // ── Provenance expansion (§2) ────────────────────────────────────────
    let expanded = qp.expand_with_bases(&bwm_out.results);
    println!(
        "after §2 provenance expansion (edited hit -> base also returned): {} results",
        expanded.len()
    );
}

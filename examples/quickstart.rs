//! Quickstart: store images conventionally and as edit sequences, then
//! answer a color range query without instantiating the edited images.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mmdbms::prelude::*;

fn main() {
    // A database over the classic 64-bin (4×4×4) RGB histogram space.
    let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));

    // ── 1. Store a base image conventionally ───────────────────────────
    // A simple "flag": top half red, bottom half white.
    let red = Rgb::new(0xCE, 0x11, 0x26);
    let mut flag = RasterImage::filled(90, 60, Rgb::WHITE).unwrap();
    mmdbms::imaging::draw::fill_rect(&mut flag, &Rect::new(0, 0, 90, 30), red);
    let base = db.insert_image(&flag).unwrap();
    println!(
        "stored base image {base} ({}x{})",
        flag.width(),
        flag.height()
    );

    // ── 2. Store edited versions as sequences of editing operations ────
    // A "dusk" variant: darken the red field.
    let dusk = EditSequence::builder(base)
        .define(Rect::new(0, 0, 90, 30))
        .modify(red, Rgb::new(0x40, 0x05, 0x09))
        .build();
    let dusk_id = db.insert_edited(dusk).unwrap();

    // A cropped variant: just the red field.
    let crop = EditSequence::builder(base)
        .define(Rect::new(0, 0, 90, 30))
        .crop_to_region()
        .build();
    let crop_id = db.insert_edited(crop).unwrap();
    println!("stored edited images {dusk_id} (recolor) and {crop_id} (crop)");

    let stats = db.stats();
    println!(
        "storage: {} binary bytes vs {} edit-sequence bytes (saving factor {:.0}x)",
        stats.binary_bytes,
        stats.edited_bytes,
        stats.space_saving_factor().unwrap_or(f64::NAN)
    );

    // ── 3. Query: "at least 40% red" ────────────────────────────────────
    let query = ColorRangeQuery::at_least(db.bin_of(red), 0.40);
    for plan in [QueryPlan::Bwm, QueryPlan::Rbm, QueryPlan::Instantiate] {
        let outcome = db.query_range_with_plan(&query, plan).unwrap();
        println!(
            "{plan:<12} -> {:?}  (BOUNDS computed: {})",
            outcome.sorted_results(),
            outcome.stats.bounds_computed
        );
    }
    // Ground truth keeps the base (50% red) and the crop (100% red) and
    // rejects the dusk variant (its red was recolored away). RBM/BWM keep
    // the dusk variant as a *candidate* — its rule-derived red range is
    // [0%, 50%], which overlaps the query — illustrating §2's trade: no
    // false negatives, at the price of some false positives.

    // ── 4. Similarity search over binary images ─────────────────────────
    let mut probe = RasterImage::filled(90, 60, Rgb::WHITE).unwrap();
    mmdbms::imaging::draw::fill_rect(&mut probe, &Rect::new(0, 0, 90, 27), red);
    let nn = db.similar_to(&probe, 1);
    println!(
        "nearest neighbour of the probe: {} (L2 distance {:.4})",
        nn[0].1, nn[0].0
    );
}

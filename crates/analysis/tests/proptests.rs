//! The dead-op-elimination proof obligation, enforced by property test:
//! for any edit sequence the executor accepts, instantiating the
//! [`mmdb_analysis::simplify`]-rewritten sequence produces the **same
//! raster** (hence the same histogram) as the original — and when the
//! original cannot be instantiated, neither can the rewrite.
//!
//! The op generator deliberately over-weights the degenerate shapes the
//! analyzer targets (self-`Modify`, identity `Mutate`, identity and
//! zero-sum `Combine`, shadowed `Define`s) so most cases actually exercise
//! the rewrite instead of returning the sequence unchanged.

use mmdb_analysis::simplify;
use mmdb_editops::{EditOp, EditSequence, ImageId, InstantiationEngine, MapResolver, Matrix3};
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use proptest::prelude::*;

const PALETTE: [Rgb; 5] = [
    Rgb::new(255, 0, 0),
    Rgb::new(0, 255, 0),
    Rgb::new(0, 0, 255),
    Rgb::new(255, 255, 255),
    Rgb::new(0, 0, 0),
];

fn arb_color() -> impl Strategy<Value = Rgb> {
    (0..PALETTE.len()).prop_map(|i| PALETTE[i])
}

fn arb_image(max_side: i64) -> impl Strategy<Value = RasterImage> {
    (
        6..max_side,
        6..max_side,
        arb_color(),
        proptest::collection::vec(
            (
                0..max_side,
                0..max_side,
                1..max_side,
                1..max_side,
                arb_color(),
            ),
            0..3,
        ),
    )
        .prop_map(|(w, h, bg, rects)| {
            let mut img = RasterImage::filled(w as u32, h as u32, bg).unwrap();
            for (x, y, rw, rh, c) in rects {
                draw::fill_rect(&mut img, &Rect::from_origin_size(x, y, rw, rh), c);
            }
            img
        })
}

fn arb_op(side: i64) -> impl Strategy<Value = EditOp> {
    prop_oneof![
        // Live ops the rewrite must leave alone.
        (-4..side, -4..side, 0..side, 0..side).prop_map(|(x, y, w, h)| EditOp::Define {
            region: Rect::from_origin_size(x, y, w, h),
        }),
        (arb_color(), arb_color()).prop_map(|(from, to)| EditOp::Modify { from, to }),
        Just(EditOp::box_blur()),
        (-6i64..6, -6i64..6).prop_map(|(dx, dy)| EditOp::Mutate {
            matrix: Matrix3::translation(dx as f64, dy as f64),
        }),
        (1u32..3, 1u32..3).prop_map(|(sx, sy)| EditOp::Mutate {
            matrix: Matrix3::scale(sx as f64, sy as f64),
        }),
        Just(EditOp::Merge {
            target: None,
            xp: 0,
            yp: 0
        }),
        (-5i64..20, -5i64..20).prop_map(|(xp, yp)| EditOp::Merge {
            target: Some(ImageId::new(2)),
            xp,
            yp,
        }),
        // Dead shapes the analyzer removes.
        arb_color().prop_map(|c| EditOp::Modify { from: c, to: c }),
        Just(EditOp::Mutate {
            matrix: Matrix3::IDENTITY,
        }),
        Just(EditOp::Combine { weights: [0.0; 9] }),
        (1u32..40).prop_map(|w| {
            let mut weights = [0.0f32; 9];
            weights[4] = w as f32 / 10.0;
            EditOp::Combine { weights }
        }),
        // Empty-as-written Define: combined with a later target Merge this
        // makes a full-raster overwrite, feeding the W111 dead-prefix pass.
        (0..side, 0..side).prop_map(|(x, y)| EditOp::Define {
            region: Rect::from_origin_size(x, y, 0, 0),
        }),
    ]
}

fn arb_case() -> impl Strategy<Value = (RasterImage, RasterImage, EditSequence)> {
    (
        arb_image(20),
        arb_image(16),
        proptest::collection::vec(arb_op(20), 0..8),
    )
        .prop_map(|(base, target, ops)| (base, target, EditSequence::new(ImageId::new(1), ops)))
}

fn check_preservation(
    base: RasterImage,
    target: RasterImage,
    seq: EditSequence,
) -> Result<(), proptest::TestCaseError> {
    let mut resolver = MapResolver::new();
    resolver.insert(ImageId::new(1), base);
    resolver.insert(ImageId::new(2), target);
    let engine = InstantiationEngine::new(&resolver);

    let simplified = simplify(&seq);
    prop_assert!(
        simplified.sequence.ops.len() + simplified.removed.len() == seq.ops.len(),
        "rewrite must account for every op"
    );

    let original = engine.instantiate(&seq);
    let rewritten = engine.instantiate(&simplified.sequence);
    match (original, rewritten) {
        (Ok(a), Ok(b)) => prop_assert!(
            a == b,
            "dead-op elimination changed the raster (removed {:?})",
            simplified.removed
        ),
        (Err(_), Err(_)) => {}
        (a, b) => prop_assert!(
            false,
            "elimination changed instantiability: original {:?}, rewritten {:?} (removed {:?})",
            a.map(|_| ()),
            b.map(|_| ()),
            simplified.removed
        ),
    }
    Ok(())
}

/// A sequence guaranteed to end in a full-raster overwrite: random pixel
/// ops, then an empty `Define` and a target `Merge`, then a random tail.
/// Exercises the W111 dead-prefix rewrite on every case.
fn arb_overwrite_case() -> impl Strategy<Value = (RasterImage, RasterImage, EditSequence)> {
    (
        arb_image(20),
        arb_image(16),
        proptest::collection::vec(arb_op(20), 0..5),
        (0i64..16, 0i64..16, -5i64..20, -5i64..20),
        proptest::collection::vec(arb_op(20), 0..3),
    )
        .prop_map(|(base, target, mut ops, (x, y, xp, yp), tail)| {
            ops.push(EditOp::Define {
                region: Rect::from_origin_size(x, y, 0, 0),
            });
            ops.push(EditOp::Merge {
                target: Some(ImageId::new(2)),
                xp,
                yp,
            });
            ops.extend(tail);
            (base, target, EditSequence::new(ImageId::new(1), ops))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dead_op_elimination_preserves_instantiated_raster(
        (base, target, seq) in arb_case()
    ) {
        check_preservation(base, target, seq)?;
    }

    #[test]
    fn dead_prefix_elimination_preserves_instantiated_raster(
        (base, target, seq) in arb_overwrite_case()
    ) {
        check_preservation(base, target, seq)?;
    }
}

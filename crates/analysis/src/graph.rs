//! Reference-graph checks over the whole catalog: dangling references,
//! references to non-binary images, and base/merge cycles.
//!
//! The storage engine implements [`CatalogGraph`] over its catalog; tests
//! use [`MapCatalogGraph`]. Edges run from each edited image to its base and
//! to every `Merge` target, so a well-formed catalog is a DAG whose sinks
//! are binary images.

use crate::diagnostics::{Diagnostic, LintCode};
use mmdb_editops::{EditSequence, ImageId};
use std::collections::HashMap;
use std::sync::Arc;

/// What kind of image a catalog id resolves to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A stored raster with an exact histogram.
    Binary,
    /// An edit sequence over other images.
    Edited,
}

/// Read-only view of the catalog's id space that the graph pass walks.
pub trait CatalogGraph {
    /// Every id in the catalog, in any order.
    fn node_ids(&self) -> Vec<ImageId>;
    /// The kind of `id`, or `None` when it does not exist.
    fn node_kind(&self, id: ImageId) -> Option<NodeKind>;
    /// The stored sequence of an edited image, or `None` for binary or
    /// unknown ids.
    fn node_sequence(&self, id: ImageId) -> Option<Arc<EditSequence>>;
}

/// A `HashMap`-backed graph for tests and small tools.
#[derive(Default)]
pub struct MapCatalogGraph {
    binaries: Vec<ImageId>,
    edited: HashMap<ImageId, Arc<EditSequence>>,
}

impl MapCatalogGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a binary image id.
    pub fn insert_binary(&mut self, id: ImageId) {
        self.binaries.push(id);
    }

    /// Registers an edited image.
    pub fn insert_edited(&mut self, id: ImageId, seq: EditSequence) {
        self.edited.insert(id, Arc::new(seq));
    }
}

impl CatalogGraph for MapCatalogGraph {
    fn node_ids(&self) -> Vec<ImageId> {
        let mut ids: Vec<ImageId> = self
            .binaries
            .iter()
            .copied()
            .chain(self.edited.keys().copied())
            .collect();
        ids.sort();
        ids
    }

    fn node_kind(&self, id: ImageId) -> Option<NodeKind> {
        if self.binaries.contains(&id) {
            Some(NodeKind::Binary)
        } else if self.edited.contains_key(&id) {
            Some(NodeKind::Edited)
        } else {
            None
        }
    }

    fn node_sequence(&self, id: ImageId) -> Option<Arc<EditSequence>> {
        self.edited.get(&id).cloned()
    }
}

/// Checks one sequence's outgoing references against the catalog:
/// `E001` (missing base), `E002` (missing merge target), `E003`
/// (reference to an edited image). Used standalone at ingest, before the
/// sequence has an id of its own.
pub fn check_references(seq: &EditSequence, graph: &dyn CatalogGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match graph.node_kind(seq.base) {
        None => diags.push(Diagnostic::new(
            LintCode::DanglingBase,
            format!("base {} does not exist in the catalog", seq.base),
        )),
        Some(NodeKind::Edited) => diags.push(Diagnostic::new(
            LintCode::NonBinaryReference,
            format!("base {} is an edited image; bases must be binary", seq.base),
        )),
        Some(NodeKind::Binary) => {}
    }
    for (i, op) in seq.ops.iter().enumerate() {
        if let Some(target) = op.merge_target() {
            match graph.node_kind(target) {
                None => diags.push(
                    Diagnostic::new(
                        LintCode::DanglingMergeTarget,
                        format!("merge target {target} does not exist in the catalog"),
                    )
                    .at_op(i),
                ),
                Some(NodeKind::Edited) => diags.push(
                    Diagnostic::new(
                        LintCode::NonBinaryReference,
                        format!("merge target {target} is an edited image; targets must be binary"),
                    )
                    .at_op(i),
                ),
                Some(NodeKind::Binary) => {}
            }
        }
    }
    diags
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    White,
    Gray,
    Black,
}

/// Whole-catalog pass: per-sequence reference checks plus cycle detection
/// (`E004`) over the base/merge edges.
pub fn check_catalog(graph: &dyn CatalogGraph) -> Vec<Diagnostic> {
    let ids = graph.node_ids();
    let mut diags = Vec::new();
    for &id in &ids {
        if graph.node_kind(id) == Some(NodeKind::Edited) {
            if let Some(seq) = graph.node_sequence(id) {
                diags.extend(
                    check_references(&seq, graph)
                        .into_iter()
                        .map(|d| d.for_image(id)),
                );
            }
        }
    }
    diags.extend(find_cycles(graph, &ids));
    diags
}

fn edges(graph: &dyn CatalogGraph, id: ImageId) -> Vec<ImageId> {
    match graph.node_sequence(id) {
        Some(seq) => {
            let mut out = vec![seq.base];
            out.extend(seq.merge_targets());
            out
        }
        None => Vec::new(),
    }
}

/// Iterative tri-color DFS; every back edge yields one `E004` with the full
/// cycle path in the message.
fn find_cycles(graph: &dyn CatalogGraph, ids: &[ImageId]) -> Vec<Diagnostic> {
    let mut color: HashMap<ImageId, Color> = ids.iter().map(|&id| (id, Color::White)).collect();
    let mut diags = Vec::new();
    for &root in ids {
        if color[&root] != Color::White {
            continue;
        }
        // Stack frames: (node, its out-edges, next edge to visit).
        let mut stack: Vec<(ImageId, Vec<ImageId>, usize)> = Vec::new();
        color.insert(root, Color::Gray);
        stack.push((root, edges(graph, root), 0));
        while let Some(frame) = stack.last_mut() {
            let (id, neighbors, next) = (frame.0, &frame.1, &mut frame.2);
            if *next < neighbors.len() {
                let n = neighbors[*next];
                *next += 1;
                match color.get(&n) {
                    Some(Color::White) => {
                        color.insert(n, Color::Gray);
                        let e = edges(graph, n);
                        stack.push((n, e, 0));
                    }
                    Some(Color::Gray) => {
                        let start = stack.iter().position(|(sid, _, _)| *sid == n).unwrap_or(0);
                        let mut path: Vec<String> = stack[start..]
                            .iter()
                            .map(|(sid, _, _)| sid.to_string())
                            .collect();
                        path.push(n.to_string());
                        diags.push(
                            Diagnostic::new(
                                LintCode::ReferenceCycle,
                                format!("reference cycle: {}", path.join(" -> ")),
                            )
                            .for_image(n),
                        );
                    }
                    // Black (already explored) or dangling (reported by the
                    // reference check): nothing to do.
                    _ => {}
                }
            } else {
                color.insert(id, Color::Black);
                stack.pop();
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_imaging::Rect;

    fn seq(base: u64, targets: &[u64]) -> EditSequence {
        let mut b = EditSequence::builder(ImageId::new(base)).define(Rect::new(0, 0, 4, 4));
        for &t in targets {
            b = b.merge_into(ImageId::new(t), 0, 0);
        }
        b.build()
    }

    #[test]
    fn healthy_catalog_clean() {
        let mut g = MapCatalogGraph::new();
        g.insert_binary(ImageId::new(1));
        g.insert_binary(ImageId::new(2));
        g.insert_edited(ImageId::new(3), seq(1, &[2]));
        assert!(check_catalog(&g).is_empty());
    }

    #[test]
    fn dangling_and_non_binary_references() {
        let mut g = MapCatalogGraph::new();
        g.insert_binary(ImageId::new(1));
        g.insert_edited(ImageId::new(3), seq(1, &[]));
        g.insert_edited(ImageId::new(4), seq(99, &[98, 3]));
        let diags = check_catalog(&g);
        let codes: Vec<LintCode> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::DanglingBase));
        assert!(codes.contains(&LintCode::DanglingMergeTarget));
        assert!(codes.contains(&LintCode::NonBinaryReference));
        assert!(!codes.contains(&LintCode::ReferenceCycle));
        for d in &diags {
            assert_eq!(d.image, Some(ImageId::new(4)), "{d}");
        }
    }

    #[test]
    fn two_node_cycle_detected_once() {
        let mut g = MapCatalogGraph::new();
        g.insert_edited(ImageId::new(10), seq(11, &[]));
        g.insert_edited(ImageId::new(11), seq(10, &[]));
        let diags = check_catalog(&g);
        let cycles: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == LintCode::ReferenceCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains("img#10"));
        assert!(cycles[0].message.contains("img#11"));
    }

    #[test]
    fn self_loop_detected() {
        let mut g = MapCatalogGraph::new();
        g.insert_edited(ImageId::new(5), seq(5, &[]));
        let diags = find_cycles(&g, &g.node_ids());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::ReferenceCycle);
    }

    #[test]
    fn merge_edge_cycles_detected() {
        let mut g = MapCatalogGraph::new();
        g.insert_binary(ImageId::new(1));
        // 20 -> base 1 but merge target 21; 21 -> base 1, merge target 20.
        g.insert_edited(ImageId::new(20), seq(1, &[21]));
        g.insert_edited(ImageId::new(21), seq(1, &[20]));
        let diags = check_catalog(&g);
        assert!(diags.iter().any(|d| d.code == LintCode::ReferenceCycle));
    }

    #[test]
    fn diamond_sharing_is_not_a_cycle() {
        let mut g = MapCatalogGraph::new();
        g.insert_binary(ImageId::new(1));
        g.insert_edited(ImageId::new(2), seq(1, &[1, 1]));
        g.insert_edited(ImageId::new(3), seq(1, &[1]));
        assert!(check_catalog(&g)
            .iter()
            .all(|d| d.code != LintCode::ReferenceCycle));
    }
}

//! Static analysis over stored editing-operation programs.
//!
//! An `EditSequence` is a small program — a base image reference plus
//! Define/Combine/Modify/Mutate/Merge operations — and the paper's RBM/BWM
//! machinery is an abstract interpretation of it. This crate hardens the
//! catalog by checking those programs *statically*, in three passes:
//!
//! 1. [`wellformed`] — structural and geometric validity of a single
//!    sequence (non-finite parameters, degenerate regions, empty crops,
//!    canvas overflow, projective matrices, …).
//! 2. [`deadops`] — redundancy detection and a safe dead-op-elimination
//!    rewrite whose proof obligation (the instantiated raster, hence the
//!    histogram, is unchanged) is enforced by property test.
//! 3. [`soundness`] — a bound-soundness audit over the per-op traces of
//!    both rule profiles: widening monotonicity, per-op `Combine`
//!    containment, and the Table 1 `Combine` caveat flag.
//!
//! [`graph`] adds catalog-wide reference checks (dangling ids, non-binary
//! references, base/merge cycles). Every finding is a [`Diagnostic`] with a
//! stable [`LintCode`] and a [`Severity`]; [`analyze_catalog`] bundles all
//! passes into the [`AnalysisReport`] behind `mmdbctl lint`.

#![warn(missing_docs)]

pub mod deadops;
pub mod diagnostics;
pub mod graph;
pub mod report;
pub mod soundness;
pub mod wellformed;

pub use deadops::{find_dead_ops, simplify, DeadOp, Simplified};
pub use diagnostics::{Diagnostic, LintCode, Severity};
pub use graph::{check_catalog, check_references, CatalogGraph, MapCatalogGraph, NodeKind};
pub use report::AnalysisReport;
pub use soundness::{audit_sequence, SoundnessAudit};

use mmdb_editops::EditSequence;
use mmdb_histogram::Quantizer;
use mmdb_imaging::Rgb;
use mmdb_rules::InfoResolver;
use mmdb_telemetry::counter;
use std::time::Instant;

/// The configured analyzer: quantizer + instantiation background (for the
/// soundness audit's rule engines) and an optional resolver for geometric
/// precision and bound traces.
pub struct Analyzer<'a> {
    quantizer: &'a dyn Quantizer,
    background: Rgb,
    resolver: Option<&'a dyn InfoResolver>,
}

/// Everything the analyzer found out about one sequence.
#[derive(Debug)]
pub struct SequenceAnalysis {
    /// Findings from all passes, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Removable operations ([`deadops`] pass).
    pub dead_ops: Vec<DeadOp>,
    /// The soundness audit, when all references resolved and the sequence
    /// was boundable.
    pub audit: Option<SoundnessAudit>,
}

impl SequenceAnalysis {
    /// Whether any Error-level diagnostic was raised.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }
}

impl<'a> Analyzer<'a> {
    /// A structural-only analyzer (no catalog lookups: geometric checks and
    /// the soundness audit are skipped).
    pub fn new(quantizer: &'a dyn Quantizer, background: Rgb) -> Self {
        Analyzer {
            quantizer,
            background,
            resolver: None,
        }
    }

    /// An analyzer with catalog access: full geometric precision plus the
    /// soundness audit.
    pub fn with_resolver(
        quantizer: &'a dyn Quantizer,
        background: Rgb,
        resolver: &'a dyn InfoResolver,
    ) -> Self {
        Analyzer {
            quantizer,
            background,
            resolver: Some(resolver),
        }
    }

    /// Runs all per-sequence passes. Reference existence (`E001`–`E004`) is
    /// the graph pass's job — see [`check_references`] / [`check_catalog`].
    pub fn analyze_sequence(&self, seq: &EditSequence) -> SequenceAnalysis {
        let mut diagnostics = wellformed::check(seq, self.resolver);
        let dead_ops = find_dead_ops(seq);
        diagnostics.extend(
            dead_ops
                .iter()
                .map(|d| Diagnostic::new(d.code, d.reason.clone()).at_op(d.index)),
        );
        let mut audit = None;
        let already_errored = diagnostics.iter().any(|d| d.severity() == Severity::Error);
        if let Some(resolver) = self.resolver {
            let refs_ok = resolver.info(seq.base).is_some()
                && seq
                    .merge_targets()
                    .iter()
                    .all(|&t| resolver.info(t).is_some());
            if refs_ok && !already_errored {
                match audit_sequence(self.quantizer, self.background, seq, resolver) {
                    Ok(a) => {
                        diagnostics.extend(a.diagnostics.iter().cloned());
                        audit = Some(a);
                    }
                    Err(e) => {
                        // The well-formedness pass mirrors every rule-engine
                        // rejection; reaching this means a check is missing.
                        diagnostics.push(Diagnostic::new(
                            LintCode::Unboundable,
                            format!("bound computation failed: {e}"),
                        ));
                    }
                }
            }
        }
        SequenceAnalysis {
            diagnostics,
            dead_ops,
            audit,
        }
    }
}

/// Analyzes every edited image in the catalog plus the reference graph,
/// recording run counts, latency, and per-lint counters in the global
/// telemetry registry.
pub fn analyze_catalog(graph: &dyn CatalogGraph, analyzer: &Analyzer<'_>) -> AnalysisReport {
    let start = Instant::now();
    counter!("mmdb_analysis_runs_total").inc();
    let mut report = AnalysisReport {
        diagnostics: check_catalog(graph),
        ..AnalysisReport::default()
    };
    for id in graph.node_ids() {
        if graph.node_kind(id) != Some(NodeKind::Edited) {
            continue;
        }
        let Some(seq) = graph.node_sequence(id) else {
            continue;
        };
        report.sequences_analyzed += 1;
        let analysis = analyzer.analyze_sequence(&seq);
        if let Some(audit) = &analysis.audit {
            report.audited += 1;
            if audit.is_clean() {
                report.audits_clean += 1;
            }
        }
        report
            .diagnostics
            .extend(analysis.diagnostics.into_iter().map(|d| d.for_image(id)));
    }
    report.sort();
    counter!("mmdb_analysis_sequence_checks_total").add(report.sequences_analyzed as u64);
    record_diagnostics(&report.diagnostics);
    let elapsed = start.elapsed();
    mmdb_telemetry::global()
        .histogram("mmdb_analysis_latency_seconds")
        .observe(elapsed);
    if mmdb_telemetry::instrumentation_enabled() {
        mmdb_telemetry::recorder().record(
            mmdb_telemetry::EventKind::LintRun,
            format!(
                "{} sequence(s) in {}",
                report.sequences_analyzed,
                mmdb_telemetry::format_duration(elapsed)
            ),
            &[
                ("sequences", report.sequences_analyzed as u64),
                ("errors", report.error_count() as u64),
                ("warnings", report.warn_count() as u64),
                ("notes", report.note_count() as u64),
            ],
        );
    }
    report
}

/// The analyzer's §4 classification verdict: is every operation's rule
/// bound-widening? `bwm` consumes this instead of recomputing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WideningVerdict {
    /// True when every op is bound-widening (BWM Main eligibility).
    pub all_widening: bool,
    /// Index of the first non-widening op (a `Merge` with a target), when
    /// any.
    pub first_non_widening: Option<usize>,
    /// How many non-widening ops the sequence carries.
    pub non_widening_count: usize,
}

/// Classifies `seq` for the BWM structure.
pub fn widening_verdict(seq: &EditSequence) -> WideningVerdict {
    let mut first = None;
    let mut count = 0usize;
    for (i, op) in seq.ops.iter().enumerate() {
        if !op.is_bound_widening() {
            if first.is_none() {
                first = Some(i);
            }
            count += 1;
        }
    }
    WideningVerdict {
        all_widening: first.is_none(),
        first_non_widening: first,
        non_widening_count: count,
    }
}

/// The per-lint counter series name for `code`.
fn diagnostic_counter_name(code: LintCode) -> String {
    format!(
        r#"mmdb_analysis_diagnostics_total{{code="{}"}}"#,
        code.code()
    )
}

/// Bumps the per-lint counters for a batch of findings. Called by
/// [`analyze_catalog`] and by storage's ingest validation.
pub fn record_diagnostics(diags: &[Diagnostic]) {
    if diags.is_empty() {
        return;
    }
    let registry = mmdb_telemetry::global();
    for d in diags {
        registry.counter(&diagnostic_counter_name(d.code)).inc();
    }
}

/// Pre-registers this crate's metric series so `mmdbctl metrics` shows them
/// at zero before the first analyzer run.
pub fn register_metrics() {
    let registry = mmdb_telemetry::global();
    registry.counter("mmdb_analysis_runs_total");
    registry.counter("mmdb_analysis_sequence_checks_total");
    registry.histogram("mmdb_analysis_latency_seconds");
    for code in LintCode::ALL {
        registry.counter(&diagnostic_counter_name(code));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::{EditSequence, ImageId};
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{RasterImage, Rect};
    use mmdb_rules::{ImageInfo, MapInfoResolver};

    fn setup() -> (MapInfoResolver, MapCatalogGraph, RgbQuantizer) {
        let q = RgbQuantizer::default_64();
        let img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        let hist = ColorHistogram::extract(&img, &q);
        let mut r = MapInfoResolver::new();
        r.insert(ImageId::new(1), ImageInfo::new(hist, 10, 10));
        let mut g = MapCatalogGraph::new();
        g.insert_binary(ImageId::new(1));
        (r, g, q)
    }

    #[test]
    fn clean_sequence_full_analysis() {
        let (r, _, q) = setup();
        let analyzer = Analyzer::with_resolver(&q, Rgb::BLACK, &r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .modify(Rgb::WHITE, Rgb::RED)
            .build();
        let a = analyzer.analyze_sequence(&seq);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        assert!(a.dead_ops.is_empty());
        let audit = a.audit.expect("audit should run");
        assert!(audit.is_clean());
    }

    #[test]
    fn audit_skipped_without_resolver_or_on_error() {
        let (_, _, q) = setup();
        let analyzer = Analyzer::new(&q, Rgb::BLACK);
        let seq = EditSequence::builder(ImageId::new(1)).build();
        assert!(analyzer.analyze_sequence(&seq).audit.is_none());
        let (r, _, _) = setup();
        let analyzer = Analyzer::with_resolver(&q, Rgb::BLACK, &r);
        // Error-level finding (empty crop) suppresses the audit.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(3, 3, 3, 3))
            .crop_to_region()
            .build();
        let a = analyzer.analyze_sequence(&seq);
        assert!(a.has_errors());
        assert!(a.audit.is_none());
    }

    #[test]
    fn analyze_catalog_combines_graph_and_sequence_passes() {
        let (r, mut g, q) = setup();
        // Dead Define (W101) in an otherwise healthy sequence.
        g.insert_edited(
            ImageId::new(2),
            EditSequence::builder(ImageId::new(1))
                .define(Rect::new(0, 0, 2, 2))
                .define(Rect::new(0, 0, 4, 4))
                .blur()
                .build(),
        );
        // Dangling merge target (E002).
        g.insert_edited(
            ImageId::new(3),
            EditSequence::builder(ImageId::new(1))
                .define(Rect::new(0, 0, 4, 4))
                .merge_into(ImageId::new(99), 0, 0)
                .build(),
        );
        let analyzer = Analyzer::with_resolver(&q, Rgb::BLACK, &r);
        let report = analyze_catalog(&g, &analyzer);
        assert_eq!(report.sequences_analyzed, 2);
        assert!(report.has_errors());
        let codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::DanglingMergeTarget));
        assert!(codes.contains(&LintCode::DeadDefine));
        // The dead-define sequence audits clean; the dangling one skips.
        assert_eq!(report.audited, 1);
        assert_eq!(report.audits_clean, 1);
        // Errors sort before warnings.
        assert_eq!(report.diagnostics[0].severity(), Severity::Error);
    }

    #[test]
    fn widening_verdict_matches_sequence_classification() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        let v = widening_verdict(&seq);
        assert!(v.all_widening);
        assert_eq!(v.first_non_widening, None);
        assert_eq!(seq.all_bound_widening(), v.all_widening);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 0, 0)
            .blur()
            .build();
        let v = widening_verdict(&seq);
        assert!(!v.all_widening);
        assert_eq!(v.first_non_widening, Some(1));
        assert_eq!(v.non_widening_count, 1);
        assert_eq!(seq.all_bound_widening(), v.all_widening);
    }

    #[test]
    fn telemetry_counters_recorded() {
        register_metrics();
        let (r, mut g, q) = setup();
        g.insert_edited(
            ImageId::new(2),
            EditSequence::builder(ImageId::new(1))
                .define(Rect::new(0, 0, 2, 2))
                .define(Rect::new(0, 0, 4, 4))
                .blur()
                .build(),
        );
        let analyzer = Analyzer::with_resolver(&q, Rgb::BLACK, &r);
        let _ = analyze_catalog(&g, &analyzer);
        let text = mmdb_telemetry::global().render_prometheus();
        assert!(text.contains("mmdb_analysis_runs_total"), "{text}");
        assert!(
            text.contains(r#"mmdb_analysis_diagnostics_total{code="W101"}"#),
            "{text}"
        );
    }
}

//! Pass 1 — well-formedness checks over a single sequence.
//!
//! Structural checks (non-finite parameters, degenerate regions, zero-sum
//! kernels, non-affine matrices) need nothing but the op list. When an
//! [`InfoResolver`] is supplied, the pass additionally walks the sequence's
//! canvas/region geometry — mirroring the rule engine's `BoundState`
//! trajectory — and catches errors the executor would only hit at
//! instantiation time: crops of an empty region, canvas growth past the
//! pixel cap, and pastes landing entirely outside their target.
//!
//! Reference existence/kind checks (`E001`–`E004`) are deliberately *not*
//! here: they belong to the catalog graph pass ([`crate::graph`]), so a
//! missing resolver entry merely degrades geometric precision instead of
//! double-reporting.

use crate::diagnostics::{Diagnostic, LintCode};
use mmdb_editops::exec::MAX_CANVAS_PIXELS;
use mmdb_editops::{EditOp, EditSequence};
use mmdb_imaging::Rect;
use mmdb_rules::InfoResolver;

/// Paste coordinates beyond this magnitude cannot intersect any canvas the
/// executor accepts (the cap bounds every dimension by `MAX_CANVAS_PIXELS`)
/// and risk `i64` overflow in rectangle arithmetic, so they are rejected
/// outright.
const MAX_PASTE_COORD: i64 = (MAX_CANVAS_PIXELS as i64) * 2;

/// Symbolic walker state. `canvas`/`dr` are exact when the base dimensions
/// resolved; otherwise only the certainty flag `dr_empty` is tracked (set
/// by a statically empty `Define`, cleared by anything that replaces the
/// region wholesale).
struct Geometry {
    canvas: Option<Rect>,
    dr: Option<Rect>,
    dr_empty: bool,
}

impl Geometry {
    fn lose_precision(&mut self) {
        self.canvas = None;
        self.dr = None;
        self.dr_empty = false;
    }
}

/// Runs the well-formedness pass. `resolver` (when given) supplies base and
/// merge-target dimensions for the geometric checks.
pub fn check(seq: &EditSequence, resolver: Option<&dyn InfoResolver>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let base_rect = resolver
        .and_then(|r| r.info(seq.base))
        .map(|info| Rect::of_image(info.width, info.height));
    let mut geo = Geometry {
        canvas: base_rect,
        dr: base_rect,
        dr_empty: false,
    };
    let mut saw_define = false;
    let mut noted_early_edit = false;

    for (i, op) in seq.ops.iter().enumerate() {
        if !saw_define && !noted_early_edit && op.reads_region() {
            noted_early_edit = true;
            diags.push(
                Diagnostic::new(
                    LintCode::EditBeforeDefine,
                    format!(
                        "{} runs before any Define and edits the whole image",
                        op.kind()
                    ),
                )
                .at_op(i),
            );
        }
        match op {
            EditOp::Define { region } => {
                saw_define = true;
                if region.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            LintCode::DegenerateRegion,
                            "Define region is empty as written".to_string(),
                        )
                        .at_op(i),
                    );
                    geo.dr_empty = true;
                    if let Some(canvas) = geo.canvas {
                        geo.dr = Some(region.intersect(&canvas));
                    }
                } else if let Some(canvas) = geo.canvas {
                    let clipped = region.intersect(&canvas);
                    if clipped.is_empty() {
                        diags.push(
                            Diagnostic::new(
                                LintCode::DegenerateRegion,
                                format!(
                                    "Define region clips to empty on the {}x{} canvas",
                                    canvas.width(),
                                    canvas.height()
                                ),
                            )
                            .at_op(i),
                        );
                    }
                    geo.dr_empty = clipped.is_empty();
                    geo.dr = Some(clipped);
                } else {
                    geo.dr_empty = false;
                }
            }
            EditOp::Combine { weights } => {
                if weights.iter().any(|w| !w.is_finite()) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::NonFiniteParams,
                            "Combine weights contain NaN or infinity".to_string(),
                        )
                        .at_op(i),
                    );
                } else if weights.iter().sum::<f32>() == 0.0 {
                    diags.push(
                        Diagnostic::new(
                            LintCode::ZeroCombine,
                            "Combine weights sum to zero; the executor leaves pixels unchanged"
                                .to_string(),
                        )
                        .at_op(i),
                    );
                }
            }
            EditOp::Modify { .. } => {}
            EditOp::Mutate { matrix } => {
                let finite = matrix.m.iter().flatten().all(|v| v.is_finite());
                if !finite {
                    diags.push(
                        Diagnostic::new(
                            LintCode::NonFiniteParams,
                            "Mutate matrix contains NaN or infinity".to_string(),
                        )
                        .at_op(i),
                    );
                    geo.lose_precision();
                    continue;
                }
                if !matrix.is_affine() {
                    diags.push(
                        Diagnostic::new(
                            LintCode::NonAffineMutate,
                            "Mutate matrix is projective (last row is not 0 0 1); only affine \
                             transforms are executable"
                                .to_string(),
                        )
                        .at_op(i),
                    );
                    geo.lose_precision();
                    continue;
                }
                if !matrix.is_identity() && matrix.affine_inverse().is_none() {
                    diags.push(
                        Diagnostic::new(
                            LintCode::SingularMutate,
                            "Mutate matrix is singular; the defined region collapses".to_string(),
                        )
                        .at_op(i),
                    );
                }
                apply_mutate_geometry(&mut geo, matrix, i, &mut diags);
            }
            EditOp::Merge { target: None, .. } => {
                if geo.dr_empty || geo.dr.is_some_and(|dr| dr.is_empty()) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::EmptyCrop,
                            "Merge(NULL) crops to an empty defined region; the executor rejects \
                             this sequence"
                                .to_string(),
                        )
                        .at_op(i),
                    );
                    // Best effort beyond the error: the sequence cannot run,
                    // so stop tracking geometry.
                    geo.lose_precision();
                } else if let Some(dr) = geo.dr {
                    let canvas = Rect::new(0, 0, dr.width(), dr.height());
                    geo.canvas = Some(canvas);
                    geo.dr = Some(canvas);
                } else {
                    geo.lose_precision();
                }
            }
            EditOp::Merge {
                target: Some(id),
                xp,
                yp,
            } => {
                if xp.abs() > MAX_PASTE_COORD || yp.abs() > MAX_PASTE_COORD {
                    diags.push(
                        Diagnostic::new(
                            LintCode::CanvasOverflow,
                            format!(
                                "Merge paste coordinates ({xp}, {yp}) are out of range for any \
                                 executable canvas"
                            ),
                        )
                        .at_op(i),
                    );
                    geo.lose_precision();
                    continue;
                }
                let target_rect = resolver
                    .and_then(|r| r.info(*id))
                    .map(|info| Rect::of_image(info.width, info.height));
                match (target_rect, geo.dr) {
                    (Some(target_rect), Some(dr)) => {
                        let dest = Rect::from_origin_size(*xp, *yp, dr.width(), dr.height());
                        let canvas = target_rect.union(&dest);
                        if canvas.area() > MAX_CANVAS_PIXELS {
                            diags.push(
                                Diagnostic::new(
                                    LintCode::CanvasOverflow,
                                    format!(
                                        "Merge would produce a {}x{} canvas, over the executor's \
                                         pixel cap",
                                        canvas.width(),
                                        canvas.height()
                                    ),
                                )
                                .at_op(i),
                            );
                            geo.lose_precision();
                            continue;
                        }
                        if !dr.is_empty() && dest.intersect(&target_rect).is_empty() {
                            diags.push(
                                Diagnostic::new(
                                    LintCode::DisjointPaste,
                                    format!(
                                        "Merge pastes the region at ({xp}, {yp}), entirely \
                                         outside the {}x{} target; only background gap fill \
                                         connects them",
                                        target_rect.width(),
                                        target_rect.height()
                                    ),
                                )
                                .at_op(i),
                            );
                        }
                        let new_canvas = Rect::new(0, 0, canvas.width(), canvas.height());
                        geo.canvas = Some(new_canvas);
                        geo.dr = Some(
                            dest.translate(-canvas.x0, -canvas.y0)
                                .intersect(&new_canvas),
                        );
                        geo.dr_empty = geo.dr.is_some_and(|d| d.is_empty());
                    }
                    _ => geo.lose_precision(),
                }
            }
        }
    }
    diags
}

/// Mirrors the rule engine's `Mutate` geometry: whole-image axis scales
/// resize the canvas; everything else replaces the DR with the clipped
/// bounding box of its transform.
fn apply_mutate_geometry(
    geo: &mut Geometry,
    matrix: &mmdb_editops::Matrix3,
    op_index: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let (Some(canvas), Some(dr)) = (geo.canvas, geo.dr) else {
        return;
    };
    if dr.is_empty() {
        return;
    }
    if dr == canvas && matrix.is_axis_scale() {
        let new_w = ((canvas.width() as f64 * matrix.m[0][0]).round() as i64).max(1);
        let new_h = ((canvas.height() as f64 * matrix.m[1][1]).round() as i64).max(1);
        if (new_w as u64).saturating_mul(new_h as u64) > MAX_CANVAS_PIXELS {
            diags.push(
                Diagnostic::new(
                    LintCode::CanvasOverflow,
                    format!(
                        "Mutate would produce a {new_w}x{new_h} canvas, over the executor's \
                         pixel cap"
                    ),
                )
                .at_op(op_index),
            );
            geo.lose_precision();
            return;
        }
        let rect = Rect::new(0, 0, new_w, new_h);
        geo.canvas = Some(rect);
        geo.dr = Some(rect);
        geo.dr_empty = false;
        return;
    }
    let corners = [
        (dr.x0 as f64, dr.y0 as f64),
        (dr.x1 as f64, dr.y0 as f64),
        (dr.x0 as f64, dr.y1 as f64),
        (dr.x1 as f64, dr.y1 as f64),
    ];
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (cx, cy) in corners {
        let (tx, ty) = matrix.apply(cx, cy);
        min_x = min_x.min(tx);
        min_y = min_y.min(ty);
        max_x = max_x.max(tx);
        max_y = max_y.max(ty);
    }
    if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
        // Finite matrices on finite rects only overflow for absurd scales;
        // treat like the executor's non-finite region error.
        diags.push(
            Diagnostic::new(
                LintCode::NonFiniteParams,
                "Mutate transform produced a non-finite region".to_string(),
            )
            .at_op(op_index),
        );
        geo.lose_precision();
        return;
    }
    let bbox = Rect::new(
        min_x.floor() as i64,
        min_y.floor() as i64,
        max_x.ceil() as i64,
        max_y.ceil() as i64,
    );
    let dest = bbox.intersect(&canvas);
    geo.dr = Some(dest);
    geo.dr_empty = dest.is_empty();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::{ImageId, Matrix3};
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{RasterImage, Rgb};
    use mmdb_rules::{ImageInfo, MapInfoResolver};

    fn resolver() -> MapInfoResolver {
        let img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        let hist = ColorHistogram::extract(&img, &RgbQuantizer::default_64());
        let mut r = MapInfoResolver::new();
        r.insert(ImageId::new(1), ImageInfo::new(hist, 10, 10));
        let target = RasterImage::filled(20, 20, Rgb::RED).unwrap();
        let hist = ColorHistogram::extract(&target, &RgbQuantizer::default_64());
        r.insert(ImageId::new(2), ImageInfo::new(hist, 20, 20));
        r
    }

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_sequence_no_diagnostics() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        assert!(check(&seq, Some(&resolver())).is_empty());
    }

    #[test]
    fn edit_before_define_noted_once() {
        let seq = EditSequence::builder(ImageId::new(1))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let d = check(&seq, None);
        assert_eq!(codes(&d), vec![LintCode::EditBeforeDefine]);
        assert_eq!(d[0].op_index, Some(0));
    }

    #[test]
    fn degenerate_regions_both_flavours() {
        // Empty as written (no resolver needed).
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(5, 5, 5, 9))
            .blur()
            .build();
        assert!(codes(&check(&seq, None)).contains(&LintCode::DegenerateRegion));
        // Clips to empty on the actual canvas (resolver needed).
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(50, 50, 60, 60))
            .blur()
            .build();
        assert!(check(&seq, None).is_empty());
        assert!(codes(&check(&seq, Some(&resolver()))).contains(&LintCode::DegenerateRegion));
    }

    #[test]
    fn empty_crop_is_error() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(3, 3, 3, 3))
            .crop_to_region()
            .build();
        // Statically empty region: provable even without a resolver.
        assert!(codes(&check(&seq, None)).contains(&LintCode::EmptyCrop));
        // Clipped-to-empty region: needs the resolver.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(50, 50, 60, 60))
            .crop_to_region()
            .build();
        assert!(!codes(&check(&seq, None)).contains(&LintCode::EmptyCrop));
        assert!(codes(&check(&seq, Some(&resolver()))).contains(&LintCode::EmptyCrop));
    }

    #[test]
    fn non_finite_params_detected() {
        let seq = EditSequence::builder(ImageId::new(1))
            .combine([f32::NAN, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
            .mutate(Matrix3::new([
                [f64::INFINITY, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]))
            .build();
        let c = codes(&check(&seq, Some(&resolver())));
        assert_eq!(
            c.iter()
                .filter(|c| **c == LintCode::NonFiniteParams)
                .count(),
            2
        );
    }

    #[test]
    fn projective_and_singular_mutates() {
        let mut proj = Matrix3::IDENTITY;
        proj.m[2] = [0.01, 0.0, 1.0];
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .mutate(proj)
            .build();
        assert!(codes(&check(&seq, None)).contains(&LintCode::NonAffineMutate));
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .mutate(Matrix3::scale(0.0, 1.0))
            .build();
        let c = codes(&check(&seq, None));
        assert!(c.contains(&LintCode::SingularMutate));
        assert!(!c.contains(&LintCode::NonAffineMutate));
    }

    #[test]
    fn canvas_overflow_from_scale_and_paste() {
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(100_000.0, 100_000.0)
            .build();
        assert!(codes(&check(&seq, Some(&resolver()))).contains(&LintCode::CanvasOverflow));
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), i64::MAX / 2, 0)
            .build();
        // Out-of-range paste coordinates are structural: no resolver needed.
        assert!(codes(&check(&seq, None)).contains(&LintCode::CanvasOverflow));
    }

    #[test]
    fn disjoint_paste_warned() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 100, 100)
            .build();
        assert!(codes(&check(&seq, Some(&resolver()))).contains(&LintCode::DisjointPaste));
        // An interior paste is clean.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 2, 2)
            .build();
        assert!(check(&seq, Some(&resolver())).is_empty());
    }

    #[test]
    fn zero_sum_combine_warned() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .combine([1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 0.0])
            .build();
        assert_eq!(codes(&check(&seq, None)), vec![LintCode::ZeroCombine]);
    }
}

//! Stable lint codes, severities, and the diagnostic record every pass
//! emits.
//!
//! Codes are stable identifiers (`E…`/`W…`/`N…`) that CI configs, telemetry
//! series and tests key on; messages are free-form prose and may change.

use mmdb_editops::ImageId;
use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the sequence cannot be soundly bounded or instantiated
/// (ingest validation rejects it); `Warn` means it is executable but
/// wasteful or semantically suspicious; `Note` is informational.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Rejects at ingest when validation is enabled.
    Error,
    /// Executable, but redundant or suspicious.
    Warn,
    /// Purely informational.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Note => "note",
        })
    }
}

/// Every lint the analyzer can raise. The numeric code (`E001`, `W101`,
/// `N201`, …) is part of the stable interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `E001` — the sequence's base image id is not in the catalog.
    DanglingBase,
    /// `E002` — a `Merge` target id is not in the catalog.
    DanglingMergeTarget,
    /// `E003` — a base or merge target resolves to an *edited* image;
    /// references must point at binary images.
    NonBinaryReference,
    /// `E004` — the base/merge reference graph contains a cycle.
    ReferenceCycle,
    /// `E005` — `Merge(NULL)` (crop) with a provably empty defined region;
    /// the executor rejects this.
    EmptyCrop,
    /// `E006` — an operation would grow the canvas past the executor's
    /// pixel cap, or carries paste coordinates far outside any canvas.
    CanvasOverflow,
    /// `E007` — a `Mutate` matrix with a projective last row; only affine
    /// transforms are executable.
    NonAffineMutate,
    /// `E008` — NaN or infinite `Combine` weights or `Mutate` matrix
    /// entries.
    NonFiniteParams,
    /// `E009` — the soundness audit caught a widening rule narrowing a
    /// bound, or a `Combine` containment failure: a rule-engine bug.
    MonotonicityViolation,
    /// `E010` — the bound computation failed for a reason the
    /// well-formedness pass did not anticipate.
    Unboundable,
    /// `W101` — a `Define` whose region is never read before the next
    /// `Define` (or the end of the sequence).
    DeadDefine,
    /// `W102` — a `Modify` with `from == to`.
    SelfModify,
    /// `W103` — a `Mutate` with the identity matrix.
    IdentityMutate,
    /// `W104` — a `Combine` whose kernel passes each pixel through
    /// unchanged (only the centre weight is nonzero).
    IdentityCombine,
    /// `W105` — a `Combine` whose weights sum to zero; the executor leaves
    /// pixels unchanged.
    ZeroCombine,
    /// `W106` — a `Define` region that is empty as written or clips to
    /// empty on the current canvas.
    DegenerateRegion,
    /// `W107` — a singular (but affine) `Mutate` matrix; the region
    /// collapses and the transform is not invertible.
    SingularMutate,
    /// `W108` — a `Merge` paste landing entirely outside the target image;
    /// only background gap fill connects them.
    DisjointPaste,
    /// `W109` — the literal Table 1 `Combine` row ("no change") is provably
    /// unsound for this sequence: a blur here can move pixels across bins.
    CombineCaveat,
    /// `W110` — the `PaperTable1` fractional whole-image scale rule
    /// narrowed a bin's fraction interval.
    FractionNarrowing,
    /// `W111` — a pixel-editing op (`Combine`/`Modify`) whose effect is
    /// discarded by a later full-raster-overwrite: a `Merge` into a target
    /// whose defined region is statically certain to be empty pastes
    /// nothing, so the canvas it produces is independent of every pixel
    /// edit before it.
    DeadPrefix,
    /// `N201` — pixel-touching operations before any `Define`; they edit
    /// the implicit whole-image region.
    EditBeforeDefine,
    /// `N202` — the final `Conservative` bounds do not contain the final
    /// `PaperTable1` bounds (benign per-profile precision differences).
    ProfileDivergence,
}

impl LintCode {
    /// Every code, in code order. Telemetry registers one counter per
    /// entry.
    pub const ALL: [LintCode; 23] = [
        LintCode::DanglingBase,
        LintCode::DanglingMergeTarget,
        LintCode::NonBinaryReference,
        LintCode::ReferenceCycle,
        LintCode::EmptyCrop,
        LintCode::CanvasOverflow,
        LintCode::NonAffineMutate,
        LintCode::NonFiniteParams,
        LintCode::MonotonicityViolation,
        LintCode::Unboundable,
        LintCode::DeadDefine,
        LintCode::SelfModify,
        LintCode::IdentityMutate,
        LintCode::IdentityCombine,
        LintCode::ZeroCombine,
        LintCode::DegenerateRegion,
        LintCode::SingularMutate,
        LintCode::DisjointPaste,
        LintCode::CombineCaveat,
        LintCode::FractionNarrowing,
        LintCode::DeadPrefix,
        LintCode::EditBeforeDefine,
        LintCode::ProfileDivergence,
    ];

    /// The stable short code, e.g. `"E002"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DanglingBase => "E001",
            LintCode::DanglingMergeTarget => "E002",
            LintCode::NonBinaryReference => "E003",
            LintCode::ReferenceCycle => "E004",
            LintCode::EmptyCrop => "E005",
            LintCode::CanvasOverflow => "E006",
            LintCode::NonAffineMutate => "E007",
            LintCode::NonFiniteParams => "E008",
            LintCode::MonotonicityViolation => "E009",
            LintCode::Unboundable => "E010",
            LintCode::DeadDefine => "W101",
            LintCode::SelfModify => "W102",
            LintCode::IdentityMutate => "W103",
            LintCode::IdentityCombine => "W104",
            LintCode::ZeroCombine => "W105",
            LintCode::DegenerateRegion => "W106",
            LintCode::SingularMutate => "W107",
            LintCode::DisjointPaste => "W108",
            LintCode::CombineCaveat => "W109",
            LintCode::FractionNarrowing => "W110",
            LintCode::DeadPrefix => "W111",
            LintCode::EditBeforeDefine => "N201",
            LintCode::ProfileDivergence => "N202",
        }
    }

    /// The stable kebab-case name, e.g. `"dangling-merge-target"`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DanglingBase => "dangling-base",
            LintCode::DanglingMergeTarget => "dangling-merge-target",
            LintCode::NonBinaryReference => "non-binary-reference",
            LintCode::ReferenceCycle => "reference-cycle",
            LintCode::EmptyCrop => "empty-crop",
            LintCode::CanvasOverflow => "canvas-overflow",
            LintCode::NonAffineMutate => "non-affine-mutate",
            LintCode::NonFiniteParams => "non-finite-params",
            LintCode::MonotonicityViolation => "monotonicity-violation",
            LintCode::Unboundable => "unboundable",
            LintCode::DeadDefine => "dead-define",
            LintCode::SelfModify => "self-modify",
            LintCode::IdentityMutate => "identity-mutate",
            LintCode::IdentityCombine => "identity-combine",
            LintCode::ZeroCombine => "zero-combine",
            LintCode::DegenerateRegion => "degenerate-region",
            LintCode::SingularMutate => "singular-mutate",
            LintCode::DisjointPaste => "disjoint-paste",
            LintCode::CombineCaveat => "combine-caveat",
            LintCode::FractionNarrowing => "fraction-narrowing",
            LintCode::DeadPrefix => "dead-prefix",
            LintCode::EditBeforeDefine => "edit-before-define",
            LintCode::ProfileDivergence => "profile-divergence",
        }
    }

    /// The severity class the code prefix encodes.
    pub fn severity(self) -> Severity {
        match self.code().as_bytes()[0] {
            b'E' => Severity::Error,
            b'W' => Severity::Warn,
            _ => Severity::Note,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding: a stable code plus where it was raised and a human
/// explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// The catalog image the sequence belongs to, when analyzed in catalog
    /// context.
    pub image: Option<ImageId>,
    /// The offending operation index within the sequence, when applicable.
    pub op_index: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with no location information.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            image: None,
            op_index: None,
            message: message.into(),
        }
    }

    /// Attaches an operation index.
    pub fn at_op(mut self, index: usize) -> Self {
        self.op_index = Some(index);
        self
    }

    /// Attaches the owning catalog image.
    pub fn for_image(mut self, id: ImageId) -> Self {
        self.image = Some(id);
        self
    }

    /// The diagnostic's severity (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}",
            self.severity(),
            self.code.code(),
            self.code.name()
        )?;
        if let Some(id) = self.image {
            write!(f, " {id}")?;
        }
        if let Some(i) = self.op_index {
            write!(f, " op {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for code in LintCode::ALL {
            assert!(seen.insert(code.code()), "duplicate code {}", code.code());
            let prefix = code.code().as_bytes()[0];
            match code.severity() {
                Severity::Error => assert_eq!(prefix, b'E'),
                Severity::Warn => assert_eq!(prefix, b'W'),
                Severity::Note => assert_eq!(prefix, b'N'),
            }
        }
        assert_eq!(seen.len(), LintCode::ALL.len());
    }

    #[test]
    fn display_format() {
        let d = Diagnostic::new(
            LintCode::DanglingMergeTarget,
            "merge target img#99 does not exist",
        )
        .for_image(ImageId::new(7))
        .at_op(3);
        let s = d.to_string();
        assert!(s.contains("error[E002]"), "{s}");
        assert!(s.contains("dangling-merge-target"), "{s}");
        assert!(s.contains("img#7"), "{s}");
        assert!(s.contains("op 3"), "{s}");
    }

    #[test]
    fn severity_ordering_errors_first() {
        assert!(Severity::Error < Severity::Warn);
        assert!(Severity::Warn < Severity::Note);
    }
}

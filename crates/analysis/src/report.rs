//! Catalog-level analysis report plus the text and JSON renderers behind
//! `mmdbctl lint`.

use crate::diagnostics::{Diagnostic, Severity};
use std::fmt::Write as _;

/// The result of analyzing a whole catalog.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Number of edit sequences analyzed.
    pub sequences_analyzed: usize,
    /// Sequences the soundness audit could run on (all references
    /// resolved).
    pub audited: usize,
    /// Audited sequences whose guaranteed invariants held (monotone
    /// widening + `Combine` containment).
    pub audits_clean: usize,
    /// All findings, sorted by severity, image, op index, and code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// Number of Error-level findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of Warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of Note-level findings.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    /// Whether any Error-level finding exists — the CI gate.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// Sorts diagnostics into the canonical report order.
    pub(crate) fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.severity(), d.image, d.op_index, d.code));
    }

    /// Human-readable report: one line per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} sequence(s) analyzed, {} audited ({} clean): {} error(s), {} warning(s), {} \
             note(s)",
            self.sequences_analyzed,
            self.audited,
            self.audits_clean,
            self.error_count(),
            self.warn_count(),
            self.note_count(),
        );
        out
    }

    /// Machine-readable report for `mmdbctl lint --format json`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"sequences_analyzed\":{},\"audited\":{},\"audits_clean\":{},\"errors\":{},\
             \"warnings\":{},\"notes\":{},\"diagnostics\":[",
            self.sequences_analyzed,
            self.audited,
            self.audits_clean,
            self.error_count(),
            self.warn_count(),
            self.note_count(),
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"image\":{},\"op\":{},\
                 \"message\":\"{}\"}}",
                d.code.code(),
                d.code.name(),
                d.severity(),
                d.image
                    .map_or_else(|| "null".to_string(), |id| id.0.to_string()),
                d.op_index
                    .map_or_else(|| "null".to_string(), |i| i.to_string()),
                json_escape(&d.message),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::LintCode;
    use mmdb_editops::ImageId;

    fn sample() -> AnalysisReport {
        let mut r = AnalysisReport {
            sequences_analyzed: 3,
            audited: 2,
            audits_clean: 2,
            diagnostics: vec![
                Diagnostic::new(LintCode::DeadDefine, "never read")
                    .for_image(ImageId::new(5))
                    .at_op(1),
                Diagnostic::new(LintCode::DanglingMergeTarget, "merge target img#9 \"gone\"")
                    .for_image(ImageId::new(4))
                    .at_op(2),
            ],
        };
        r.sort();
        r
    }

    #[test]
    fn counts_and_gate() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.note_count(), 0);
        assert!(r.has_errors());
        // Errors sort first.
        assert_eq!(r.diagnostics[0].code, LintCode::DanglingMergeTarget);
    }

    #[test]
    fn text_render() {
        let text = sample().render_text();
        assert!(text.contains("error[E002]"), "{text}");
        assert!(text.contains("warn[W101]"), "{text}");
        assert!(text.contains("3 sequence(s) analyzed"), "{text}");
    }

    #[test]
    fn json_render_escapes() {
        let json = sample().render_json();
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"code\":\"E002\""), "{json}");
        assert!(json.contains("img#9 \\\"gone\\\""), "{json}");
        assert!(json.contains("\"image\":4"), "{json}");
        // Balanced braces as a crude well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(json_escape("a\nb\\c\"d\u{1}"), "a\\nb\\\\c\\\"d\\u0001");
    }
}

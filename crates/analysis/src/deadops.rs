//! Pass 2 — dead-op and redundancy analysis, with a safe elimination
//! rewrite.
//!
//! An operation is *dead* when removing it provably leaves the instantiated
//! raster — and therefore the histogram and every bound — unchanged. The
//! proof obligations below are stated against the `mmdb-editops` executor
//! semantics and checked end-to-end by the crate's property test
//! (`tests/proptests.rs`), which instantiates random sequences before and
//! after [`simplify`] and compares rasters pixel for pixel.
//!
//! Removable classes:
//!
//! * **Dead `Define` (W101)** — no region-reading op runs before the next
//!   `Define` or the end of the sequence. The region value is never
//!   observed, and a later `Define`'s clip does not depend on the current
//!   region.
//! * **Self-`Modify` (W102)** — `from == to` replaces pixels with
//!   themselves and does not touch the region state.
//! * **Identity `Mutate` (W103)** — the identity matrix stamps every DR
//!   pixel onto itself (whole-image path: a `round(w·1.0) = w` resize is the
//!   identity resample; sub-region path: the destination bbox of an integer
//!   rectangle under the identity is the rectangle itself, so
//!   `state.region` is also unchanged).
//! * **Identity `Combine` (W104)** — only the centre weight is nonzero (and
//!   normal, with `w·255` finite), so the executor computes
//!   `round(clamp((w·p)/w))`. For `p ∈ 0..=255` and normal `w` the relative
//!   rounding error is ≤ 2 ulp ≈ 2⁻²²·p, far below the 0.5 the rounding
//!   absorbs, so every pixel round-trips exactly.
//! * **Zero-sum `Combine` (W105)** — the executor short-circuits on a zero
//!   weight sum and leaves the raster untouched.
//! * **Dead prefix (W111)** — a `Combine` or `Modify` that runs before a
//!   *full-raster-overwrite*: a `Merge` into a target whose defined region
//!   is statically certain to be empty. Such a merge pastes nothing — the
//!   canvas it produces is built solely from the target image and the
//!   background fill — so every pixel value accumulated before it is
//!   discarded. `Combine`/`Modify` touch only pixel values (never the
//!   region, the canvas bounds, or error behavior), so removing them
//!   preserves the instantiated raster exactly. Region-shaping ops
//!   (`Define`, `Mutate`, `Merge`) are kept: they decide *that* the region
//!   is empty. Emptiness certainty is tracked conservatively — only a
//!   `Define` whose rectangle is empty as written establishes it, any
//!   region-shaping op with unknowable geometry clears it, and the
//!   analysis bails on a certain `Merge(NULL)`-on-empty error (E005).
//!
//! Removal can cascade: deleting a self-`Modify` may leave an earlier
//! `Define` with no readers, so [`simplify`] iterates to a fixpoint.

use crate::diagnostics::LintCode;
use mmdb_editops::{EditOp, EditSequence};

/// One operation [`simplify`] removed (or [`find_dead_ops`] would remove),
/// with the lint class and a prose justification.
#[derive(Clone, Debug)]
pub struct DeadOp {
    /// Index of the operation **in the original sequence**.
    pub index: usize,
    /// Which redundancy class it falls in (`W101`–`W105`, `W111`).
    pub code: LintCode,
    /// Why removal is raster-preserving.
    pub reason: String,
}

/// The result of the dead-op elimination rewrite.
#[derive(Clone, Debug)]
pub struct Simplified {
    /// The sequence with all dead operations removed.
    pub sequence: EditSequence,
    /// The removed operations, ordered by original index.
    pub removed: Vec<DeadOp>,
}

impl Simplified {
    /// Whether the rewrite changed anything.
    pub fn changed(&self) -> bool {
        !self.removed.is_empty()
    }
}

/// Classifies a single op as a structural no-op (independent of its
/// position), returning the lint class and reason.
fn structural_noop(op: &EditOp) -> Option<(LintCode, String)> {
    match op {
        EditOp::Modify { from, to } if from == to => Some((
            LintCode::SelfModify,
            format!("Modify({from:?} -> {to:?}) recolors pixels to their own color"),
        )),
        EditOp::Mutate { matrix } if matrix.is_identity() => Some((
            LintCode::IdentityMutate,
            "Mutate with the identity matrix stamps every pixel onto itself".into(),
        )),
        EditOp::Combine { weights } => {
            if weights.iter().any(|w| !w.is_finite()) {
                // Non-finite kernels are E008 territory, never removable.
                return None;
            }
            let sum: f32 = weights.iter().sum();
            if sum == 0.0 {
                // Matches the executor's `sum == 0.0` short-circuit exactly.
                return Some((
                    LintCode::ZeroCombine,
                    "Combine weights sum to zero; the executor leaves pixels unchanged".into(),
                ));
            }
            let centre = weights[4];
            let off_centre_zero = weights.iter().enumerate().all(|(i, w)| i == 4 || *w == 0.0);
            if off_centre_zero && centre.is_normal() && (centre * 255.0).is_finite() {
                return Some((
                    LintCode::IdentityCombine,
                    "Combine kernel passes each pixel through unchanged (centre-only weight)"
                        .into(),
                ));
            }
            None
        }
        _ => None,
    }
}

/// Positions (within `ops`) of `Combine`/`Modify` operations that are dead
/// because a later full-raster-overwrite `Merge` discards every pixel value
/// accumulated before it (W111).
///
/// Walks the sequence tracking whether the defined region is *statically
/// certain* to be empty, and remembers the last `Merge { target: Some(_) }`
/// executed under that certainty. Every pixel-only op before that merge is
/// unobservable in the final raster. Conservative on imprecision: anything
/// that could make the region non-empty clears the certainty, and a
/// certain `Merge(NULL)`-on-empty (E005, the sequence always errors) bails
/// out entirely.
fn dead_prefix_positions(ops: &[EditOp]) -> Vec<usize> {
    let mut certainly_empty = false;
    let mut last_overwrite: Option<usize> = None;
    for (pos, op) in ops.iter().enumerate() {
        match op {
            // Intersection with the canvas can only shrink the region, so a
            // rectangle empty as written is certainly empty; a non-empty one
            // may still clip to empty (unknown).
            EditOp::Define { region } => certainly_empty = region.is_empty(),
            // Pixel-only ops: the region is untouched.
            EditOp::Combine { .. } | EditOp::Modify { .. } => {}
            // The region becomes the transformed destination bbox — not
            // statically certain either way.
            EditOp::Mutate { .. } => certainly_empty = false,
            EditOp::Merge { target: None, .. } => {
                if certainly_empty {
                    // Certain E005: instantiation always errors here, so
                    // there is no final raster to preserve. Claim nothing.
                    return Vec::new();
                }
                certainly_empty = false;
            }
            EditOp::Merge {
                target: Some(_), ..
            } => {
                if certainly_empty {
                    // Full overwrite: nothing is pasted, the canvas is the
                    // target plus background fill. The region stays the
                    // empty destination rectangle, so certainty survives.
                    last_overwrite = Some(pos);
                } else {
                    certainly_empty = false;
                }
            }
        }
    }
    let Some(cut) = last_overwrite else {
        return Vec::new();
    };
    ops[..cut]
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, EditOp::Combine { .. } | EditOp::Modify { .. }))
        .map(|(pos, _)| pos)
        .collect()
}

/// Within `ops`, is the `Define` at position `pos` dead — i.e. does no
/// region-reading op run before the next `Define` or the end?
fn define_is_dead(ops: &[EditOp], pos: usize) -> bool {
    for op in &ops[pos + 1..] {
        if op.reads_region() {
            return false;
        }
        if matches!(op, EditOp::Define { .. }) {
            return true;
        }
    }
    true
}

/// Removes every dead operation from `seq`, iterating to a fixpoint so that
/// removals which orphan an earlier `Define` cascade. Returns the
/// simplified sequence plus the removal record.
pub fn simplify(seq: &EditSequence) -> Simplified {
    // Carry original indices alongside the surviving ops.
    let mut ops: Vec<(usize, EditOp)> = seq.ops.iter().cloned().enumerate().collect();
    let mut removed: Vec<DeadOp> = Vec::new();
    loop {
        let current: Vec<EditOp> = ops.iter().map(|(_, op)| op.clone()).collect();
        let prefix: std::collections::HashSet<usize> =
            dead_prefix_positions(&current).into_iter().collect();
        let mut dead_positions: Vec<(usize, LintCode, String)> = Vec::new();
        for (pos, op) in current.iter().enumerate() {
            if let Some((code, reason)) = structural_noop(op) {
                dead_positions.push((pos, code, reason));
            } else if prefix.contains(&pos) {
                dead_positions.push((
                    pos,
                    LintCode::DeadPrefix,
                    "pixel edit is discarded by a later full-raster-overwrite Merge \
                     (empty defined region pastes nothing)"
                        .into(),
                ));
            } else if matches!(op, EditOp::Define { .. }) && define_is_dead(&current, pos) {
                dead_positions.push((
                    pos,
                    LintCode::DeadDefine,
                    "Define region is never read before being replaced or the sequence ends".into(),
                ));
            }
        }
        if dead_positions.is_empty() {
            break;
        }
        // Remove back-to-front so positions stay valid.
        for (pos, code, reason) in dead_positions.into_iter().rev() {
            let (index, _) = ops.remove(pos);
            removed.push(DeadOp {
                index,
                code,
                reason,
            });
        }
    }
    removed.sort_by_key(|d| d.index);
    Simplified {
        sequence: EditSequence::new(seq.base, ops.into_iter().map(|(_, op)| op).collect()),
        removed,
    }
}

/// The dead operations [`simplify`] would remove, without building the
/// rewritten sequence's clone twice. (Currently implemented *as* the
/// rewrite so detection and elimination cannot drift apart.)
pub fn find_dead_ops(seq: &EditSequence) -> Vec<DeadOp> {
    simplify(seq).removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::{ImageId, Matrix3};
    use mmdb_imaging::{Rect, Rgb};

    fn base() -> ImageId {
        ImageId::new(1)
    }

    #[test]
    fn clean_sequence_unchanged() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let s = simplify(&seq);
        assert!(!s.changed());
        assert_eq!(s.sequence, seq);
    }

    #[test]
    fn dead_define_shadowed_by_next_define() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2)) // dead: replaced before any read
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        let s = simplify(&seq);
        assert_eq!(s.removed.len(), 1);
        assert_eq!(s.removed[0].index, 0);
        assert_eq!(s.removed[0].code, LintCode::DeadDefine);
        assert_eq!(s.sequence.ops.len(), 2);
    }

    #[test]
    fn trailing_define_is_dead() {
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(0, 0, 2, 2))
            .build();
        let s = simplify(&seq);
        assert_eq!(s.removed.len(), 1);
        assert_eq!(s.removed[0].index, 1);
    }

    #[test]
    fn structural_noops_detected() {
        let seq = EditSequence::builder(base())
            .modify(Rgb::RED, Rgb::RED)
            .mutate(Matrix3::IDENTITY)
            .combine([0.0, 0.0, 0.0, 0.0, 2.5, 0.0, 0.0, 0.0, 0.0])
            .combine([1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 0.0])
            .build();
        let codes: Vec<LintCode> = find_dead_ops(&seq).iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                LintCode::SelfModify,
                LintCode::IdentityMutate,
                LintCode::IdentityCombine,
                LintCode::ZeroCombine,
            ]
        );
        assert!(simplify(&seq).sequence.ops.is_empty());
    }

    #[test]
    fn removal_cascades_to_orphaned_define() {
        // The Define's only reader is a self-Modify; once that is removed
        // the Define is dead too (a later Define follows it).
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2))
            .modify(Rgb::BLUE, Rgb::BLUE)
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        let s = simplify(&seq);
        let removed: Vec<usize> = s.removed.iter().map(|d| d.index).collect();
        assert_eq!(removed, vec![0, 1]);
        assert_eq!(s.sequence.ops.len(), 2);
    }

    #[test]
    fn live_define_kept() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2))
            .crop_to_region()
            .build();
        assert!(!simplify(&seq).changed());
    }

    #[test]
    fn dead_prefix_before_full_overwrite_merge() {
        // Pixel edits, then an empty Define and a target Merge: the merge
        // pastes nothing, so the blur and recolor are unobservable. The
        // empty Define itself is kept — it is what makes the region empty.
        let seq = EditSequence::builder(base())
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .define(Rect::new(3, 3, 3, 3)) // empty as written
            .merge_into(ImageId::new(2), 0, 0)
            .build();
        let s = simplify(&seq);
        let removed: Vec<(usize, LintCode)> = s.removed.iter().map(|d| (d.index, d.code)).collect();
        assert_eq!(
            removed,
            vec![(0, LintCode::DeadPrefix), (1, LintCode::DeadPrefix)]
        );
        assert_eq!(s.sequence.ops.len(), 2);
    }

    #[test]
    fn pixel_edits_after_overwrite_survive() {
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(3, 3, 3, 3))
            .merge_into(ImageId::new(2), 0, 0)
            .define(Rect::new(0, 0, 4, 4))
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let s = simplify(&seq);
        let removed: Vec<usize> = s.removed.iter().map(|d| d.index).collect();
        assert_eq!(removed, vec![0], "only the pre-overwrite blur is dead");
    }

    #[test]
    fn uncertain_emptiness_claims_nothing() {
        // The Define is non-empty as written (it may or may not clip to
        // empty at runtime), so no overwrite is certain and nothing is
        // removed besides what other passes find.
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 0, 0)
            .build();
        assert!(!simplify(&seq).changed());
    }

    #[test]
    fn mutate_clears_emptiness_certainty() {
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(3, 3, 3, 3))
            .mutate(Matrix3::translation(1.0, 0.0))
            .merge_into(ImageId::new(2), 0, 0)
            .build();
        assert!(!simplify(&seq).changed());
    }

    #[test]
    fn certain_empty_crop_bails_out() {
        // Merge(NULL) on a certainly-empty region always errors (E005):
        // there is no final raster, so the prefix pass claims nothing.
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(3, 3, 3, 3))
            .crop_to_region()
            .merge_into(ImageId::new(2), 0, 0)
            .build();
        assert!(!simplify(&seq).changed());
    }

    #[test]
    fn overwrite_keeps_region_certainty_for_chained_merges() {
        // After a full overwrite the region is still the empty destination
        // rectangle, so a second target merge is also a full overwrite and
        // the cut point moves past the first merge.
        let seq = EditSequence::builder(base())
            .define(Rect::new(3, 3, 3, 3))
            .blur()
            .merge_into(ImageId::new(2), 0, 0)
            .merge_into(ImageId::new(2), 1, 1)
            .build();
        let s = simplify(&seq);
        let removed: Vec<(usize, LintCode)> = s.removed.iter().map(|d| (d.index, d.code)).collect();
        assert_eq!(removed, vec![(1, LintCode::DeadPrefix)]);
    }

    #[test]
    fn non_finite_and_general_kernels_not_removed() {
        let seq = EditSequence::builder(base())
            .combine([f32::NAN, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
            .combine([0.0, 0.0, 0.0, 0.0, f32::INFINITY, 0.0, 0.0, 0.0, 0.0])
            .blur()
            .build();
        assert!(!simplify(&seq).changed());
    }
}

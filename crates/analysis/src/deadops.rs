//! Pass 2 — dead-op and redundancy analysis, with a safe elimination
//! rewrite.
//!
//! An operation is *dead* when removing it provably leaves the instantiated
//! raster — and therefore the histogram and every bound — unchanged. The
//! proof obligations below are stated against the `mmdb-editops` executor
//! semantics and checked end-to-end by the crate's property test
//! (`tests/proptests.rs`), which instantiates random sequences before and
//! after [`simplify`] and compares rasters pixel for pixel.
//!
//! Removable classes:
//!
//! * **Dead `Define` (W101)** — no region-reading op runs before the next
//!   `Define` or the end of the sequence. The region value is never
//!   observed, and a later `Define`'s clip does not depend on the current
//!   region.
//! * **Self-`Modify` (W102)** — `from == to` replaces pixels with
//!   themselves and does not touch the region state.
//! * **Identity `Mutate` (W103)** — the identity matrix stamps every DR
//!   pixel onto itself (whole-image path: a `round(w·1.0) = w` resize is the
//!   identity resample; sub-region path: the destination bbox of an integer
//!   rectangle under the identity is the rectangle itself, so
//!   `state.region` is also unchanged).
//! * **Identity `Combine` (W104)** — only the centre weight is nonzero (and
//!   normal, with `w·255` finite), so the executor computes
//!   `round(clamp((w·p)/w))`. For `p ∈ 0..=255` and normal `w` the relative
//!   rounding error is ≤ 2 ulp ≈ 2⁻²²·p, far below the 0.5 the rounding
//!   absorbs, so every pixel round-trips exactly.
//! * **Zero-sum `Combine` (W105)** — the executor short-circuits on a zero
//!   weight sum and leaves the raster untouched.
//!
//! Removal can cascade: deleting a self-`Modify` may leave an earlier
//! `Define` with no readers, so [`simplify`] iterates to a fixpoint.

use crate::diagnostics::LintCode;
use mmdb_editops::{EditOp, EditSequence};

/// One operation [`simplify`] removed (or [`find_dead_ops`] would remove),
/// with the lint class and a prose justification.
#[derive(Clone, Debug)]
pub struct DeadOp {
    /// Index of the operation **in the original sequence**.
    pub index: usize,
    /// Which redundancy class it falls in (`W101`–`W105`).
    pub code: LintCode,
    /// Why removal is raster-preserving.
    pub reason: String,
}

/// The result of the dead-op elimination rewrite.
#[derive(Clone, Debug)]
pub struct Simplified {
    /// The sequence with all dead operations removed.
    pub sequence: EditSequence,
    /// The removed operations, ordered by original index.
    pub removed: Vec<DeadOp>,
}

impl Simplified {
    /// Whether the rewrite changed anything.
    pub fn changed(&self) -> bool {
        !self.removed.is_empty()
    }
}

/// Classifies a single op as a structural no-op (independent of its
/// position), returning the lint class and reason.
fn structural_noop(op: &EditOp) -> Option<(LintCode, String)> {
    match op {
        EditOp::Modify { from, to } if from == to => Some((
            LintCode::SelfModify,
            format!("Modify({from:?} -> {to:?}) recolors pixels to their own color"),
        )),
        EditOp::Mutate { matrix } if matrix.is_identity() => Some((
            LintCode::IdentityMutate,
            "Mutate with the identity matrix stamps every pixel onto itself".into(),
        )),
        EditOp::Combine { weights } => {
            if weights.iter().any(|w| !w.is_finite()) {
                // Non-finite kernels are E008 territory, never removable.
                return None;
            }
            let sum: f32 = weights.iter().sum();
            if sum == 0.0 {
                // Matches the executor's `sum == 0.0` short-circuit exactly.
                return Some((
                    LintCode::ZeroCombine,
                    "Combine weights sum to zero; the executor leaves pixels unchanged".into(),
                ));
            }
            let centre = weights[4];
            let off_centre_zero = weights.iter().enumerate().all(|(i, w)| i == 4 || *w == 0.0);
            if off_centre_zero && centre.is_normal() && (centre * 255.0).is_finite() {
                return Some((
                    LintCode::IdentityCombine,
                    "Combine kernel passes each pixel through unchanged (centre-only weight)"
                        .into(),
                ));
            }
            None
        }
        _ => None,
    }
}

/// Within `ops`, is the `Define` at position `pos` dead — i.e. does no
/// region-reading op run before the next `Define` or the end?
fn define_is_dead(ops: &[EditOp], pos: usize) -> bool {
    for op in &ops[pos + 1..] {
        if op.reads_region() {
            return false;
        }
        if matches!(op, EditOp::Define { .. }) {
            return true;
        }
    }
    true
}

/// Removes every dead operation from `seq`, iterating to a fixpoint so that
/// removals which orphan an earlier `Define` cascade. Returns the
/// simplified sequence plus the removal record.
pub fn simplify(seq: &EditSequence) -> Simplified {
    // Carry original indices alongside the surviving ops.
    let mut ops: Vec<(usize, EditOp)> = seq.ops.iter().cloned().enumerate().collect();
    let mut removed: Vec<DeadOp> = Vec::new();
    loop {
        let current: Vec<EditOp> = ops.iter().map(|(_, op)| op.clone()).collect();
        let mut dead_positions: Vec<(usize, LintCode, String)> = Vec::new();
        for (pos, op) in current.iter().enumerate() {
            if let Some((code, reason)) = structural_noop(op) {
                dead_positions.push((pos, code, reason));
            } else if matches!(op, EditOp::Define { .. }) && define_is_dead(&current, pos) {
                dead_positions.push((
                    pos,
                    LintCode::DeadDefine,
                    "Define region is never read before being replaced or the sequence ends".into(),
                ));
            }
        }
        if dead_positions.is_empty() {
            break;
        }
        // Remove back-to-front so positions stay valid.
        for (pos, code, reason) in dead_positions.into_iter().rev() {
            let (index, _) = ops.remove(pos);
            removed.push(DeadOp {
                index,
                code,
                reason,
            });
        }
    }
    removed.sort_by_key(|d| d.index);
    Simplified {
        sequence: EditSequence::new(seq.base, ops.into_iter().map(|(_, op)| op).collect()),
        removed,
    }
}

/// The dead operations [`simplify`] would remove, without building the
/// rewritten sequence's clone twice. (Currently implemented *as* the
/// rewrite so detection and elimination cannot drift apart.)
pub fn find_dead_ops(seq: &EditSequence) -> Vec<DeadOp> {
    simplify(seq).removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::{ImageId, Matrix3};
    use mmdb_imaging::{Rect, Rgb};

    fn base() -> ImageId {
        ImageId::new(1)
    }

    #[test]
    fn clean_sequence_unchanged() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let s = simplify(&seq);
        assert!(!s.changed());
        assert_eq!(s.sequence, seq);
    }

    #[test]
    fn dead_define_shadowed_by_next_define() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2)) // dead: replaced before any read
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        let s = simplify(&seq);
        assert_eq!(s.removed.len(), 1);
        assert_eq!(s.removed[0].index, 0);
        assert_eq!(s.removed[0].code, LintCode::DeadDefine);
        assert_eq!(s.sequence.ops.len(), 2);
    }

    #[test]
    fn trailing_define_is_dead() {
        let seq = EditSequence::builder(base())
            .blur()
            .define(Rect::new(0, 0, 2, 2))
            .build();
        let s = simplify(&seq);
        assert_eq!(s.removed.len(), 1);
        assert_eq!(s.removed[0].index, 1);
    }

    #[test]
    fn structural_noops_detected() {
        let seq = EditSequence::builder(base())
            .modify(Rgb::RED, Rgb::RED)
            .mutate(Matrix3::IDENTITY)
            .combine([0.0, 0.0, 0.0, 0.0, 2.5, 0.0, 0.0, 0.0, 0.0])
            .combine([1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 0.0])
            .build();
        let codes: Vec<LintCode> = find_dead_ops(&seq).iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                LintCode::SelfModify,
                LintCode::IdentityMutate,
                LintCode::IdentityCombine,
                LintCode::ZeroCombine,
            ]
        );
        assert!(simplify(&seq).sequence.ops.is_empty());
    }

    #[test]
    fn removal_cascades_to_orphaned_define() {
        // The Define's only reader is a self-Modify; once that is removed
        // the Define is dead too (a later Define follows it).
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2))
            .modify(Rgb::BLUE, Rgb::BLUE)
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        let s = simplify(&seq);
        let removed: Vec<usize> = s.removed.iter().map(|d| d.index).collect();
        assert_eq!(removed, vec![0, 1]);
        assert_eq!(s.sequence.ops.len(), 2);
    }

    #[test]
    fn live_define_kept() {
        let seq = EditSequence::builder(base())
            .define(Rect::new(0, 0, 2, 2))
            .crop_to_region()
            .build();
        assert!(!simplify(&seq).changed());
    }

    #[test]
    fn non_finite_and_general_kernels_not_removed() {
        let seq = EditSequence::builder(base())
            .combine([f32::NAN, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
            .combine([0.0, 0.0, 0.0, 0.0, f32::INFINITY, 0.0, 0.0, 0.0, 0.0])
            .blur()
            .build();
        assert!(!simplify(&seq).changed());
    }
}

//! Pass 3 — the bound-soundness audit.
//!
//! Walks the per-op bound traces of **both** rule profiles
//! ([`RuleProfile::Conservative`] and [`RuleProfile::PaperTable1`]) and
//! statically verifies the properties the paper's §4 machinery rests on:
//!
//! 1. **Widening monotonicity** — for every bound-widening op, `min` never
//!    increases and `max` never decreases (raw counts while the total is
//!    preserved, fraction intervals when the op rescales the total). A
//!    violation is `E009`: a rule-engine bug, because the BWM Main
//!    structure's pruning proof depends on it. One known, documented
//!    exception is downgraded to `W110`: the literal profile's fractional
//!    whole-image scale can *narrow* fraction intervals through rounding.
//! 2. **`Combine` containment** — at every `Combine`, the literal row
//!    leaves bounds unchanged while the conservative rule only ever widens;
//!    together these witness that from equal pre-states the conservative
//!    output interval contains the literal one. Where the conservative rule
//!    actually widened (a non-trivial kernel over a non-empty region) the
//!    audit flags `W109`: the sequence is concrete evidence that the
//!    literal Table 1 `Combine` row is unsound (see DESIGN.md).
//! 3. **Final containment** — whether the end-of-sequence conservative
//!    interval contains the literal one for every bin. This does *not* hold
//!    universally (each profile is tighter in different places: within-bin
//!    `Modify` refinement vs. clipped-translate precision), so divergence
//!    is only an `N202` note; the guaranteed properties are (1) and (2).

use crate::diagnostics::{Diagnostic, LintCode};
use mmdb_editops::{EditOp, EditSequence};
use mmdb_histogram::Quantizer;
use mmdb_imaging::Rgb;
use mmdb_rules::{BoundRange, InfoResolver, RuleEngine, RuleProfile};

/// Slack for fraction-interval comparisons: the underlying math is exact in
/// rationals, so only `f64` division rounding can perturb a comparison.
const EPS: f64 = 1e-9;

/// The audit verdict for one sequence.
#[derive(Clone, Debug)]
pub struct SoundnessAudit {
    /// Number of operations audited.
    pub ops_audited: usize,
    /// Every widening op was monotone under both profiles (`E009` never
    /// fired; `W110` does not clear this flag — it is the documented
    /// literal-profile exception).
    pub monotonic: bool,
    /// Every `Combine` op satisfied per-op profile containment.
    pub combine_containment: bool,
    /// The final conservative interval contains the final literal interval
    /// on every bin (informational; see module docs).
    pub final_containment: bool,
    /// `E009` / `W109` / `W110` / `N202` findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl SoundnessAudit {
    /// The guaranteed invariants held: monotone widening and per-op
    /// `Combine` containment.
    pub fn is_clean(&self) -> bool {
        self.monotonic && self.combine_containment
    }
}

fn fraction_contains(outer: &BoundRange, inner: &BoundRange) -> bool {
    let (olo, ohi) = outer.fraction_range();
    let (ilo, ihi) = inner.fraction_range();
    olo <= ilo + EPS && ohi >= ihi - EPS
}

/// Is this op the literal profile's documented fractional-scale exception?
fn is_fractional_axis_scale(op: &EditOp) -> bool {
    match op {
        EditOp::Mutate { matrix } if matrix.is_axis_scale() => {
            matrix.m[0][0].fract() != 0.0 || matrix.m[1][1].fract() != 0.0
        }
        _ => false,
    }
}

/// Runs the audit. Requires every referenced image to resolve; bound-trace
/// failures surface as the rule engine's error.
pub fn audit_sequence(
    quantizer: &dyn Quantizer,
    background: Rgb,
    seq: &EditSequence,
    resolver: &dyn InfoResolver,
) -> Result<SoundnessAudit, mmdb_rules::RuleError> {
    let conservative =
        RuleEngine::with_background(quantizer, RuleProfile::Conservative, background);
    let literal = RuleEngine::with_background(quantizer, RuleProfile::PaperTable1, background);
    let cons_trace = conservative.bounds_trace(seq, resolver)?;
    let lit_trace = literal.bounds_trace(seq, resolver)?;

    let mut diagnostics = Vec::new();
    let mut monotonic = true;
    let mut combine_containment = true;

    for (i, op) in seq.ops.iter().enumerate() {
        let steps = [
            ("conservative", &cons_trace[i], &cons_trace[i + 1]),
            ("paper_table1", &lit_trace[i], &lit_trace[i + 1]),
        ];
        if op.is_bound_widening() {
            for (profile, before, after) in steps {
                for (bin, (b, a)) in before.iter().zip(after.iter()).enumerate() {
                    let ok = if a.total == b.total {
                        a.min <= b.min && a.max >= b.max
                    } else {
                        fraction_contains(a, b)
                    };
                    if ok {
                        continue;
                    }
                    if profile == "paper_table1" && is_fractional_axis_scale(op) {
                        diagnostics.push(
                            Diagnostic::new(
                                LintCode::FractionNarrowing,
                                format!(
                                    "PaperTable1 fractional whole-image scale narrowed bin \
                                     {bin}'s fraction interval ([{:.4}, {:.4}] -> [{:.4}, \
                                     {:.4}]); rounding in the literal rule is not monotone",
                                    b.fraction_range().0,
                                    b.fraction_range().1,
                                    a.fraction_range().0,
                                    a.fraction_range().1,
                                ),
                            )
                            .at_op(i),
                        );
                    } else {
                        monotonic = false;
                        diagnostics.push(
                            Diagnostic::new(
                                LintCode::MonotonicityViolation,
                                format!(
                                    "{profile} profile: widening {} narrowed bin {bin} \
                                     ({:?} -> {:?})",
                                    op.kind(),
                                    b,
                                    a
                                ),
                            )
                            .at_op(i),
                        );
                    }
                    // One diagnostic per (op, profile) is enough.
                    break;
                }
            }
        }
        if let EditOp::Combine { weights } = op {
            let lit_unchanged = lit_trace[i] == lit_trace[i + 1];
            let cons_widened_everywhere = cons_trace[i]
                .iter()
                .zip(cons_trace[i + 1].iter())
                .all(|(b, a)| a.min <= b.min && a.max >= b.max && a.total == b.total);
            if !(lit_unchanged && cons_widened_everywhere) {
                combine_containment = false;
                diagnostics.push(
                    Diagnostic::new(
                        LintCode::MonotonicityViolation,
                        "Combine containment failed: the literal row changed bounds or the \
                         conservative rule narrowed them"
                            .to_string(),
                    )
                    .at_op(i),
                );
            }
            // Did the conservative rule actually widen here? If so the
            // sequence witnesses the Table 1 Combine caveat.
            let effective_kernel = weights.iter().all(|w| w.is_finite())
                && weights.iter().sum::<f32>() != 0.0
                && !weights.iter().enumerate().all(|(k, w)| k == 4 || *w == 0.0);
            let cons_changed = cons_trace[i] != cons_trace[i + 1];
            if effective_kernel && cons_changed {
                diagnostics.push(
                    Diagnostic::new(
                        LintCode::CombineCaveat,
                        "a blur over a non-empty region can move pixels across histogram bins, \
                         but the literal Table 1 Combine row keeps bounds unchanged; the \
                         PaperTable1 profile is unsound for this sequence"
                            .to_string(),
                    )
                    .at_op(i),
                );
            }
        }
    }

    let last = seq.ops.len();
    let mut final_containment = true;
    for (bin, (c, l)) in cons_trace[last]
        .iter()
        .zip(lit_trace[last].iter())
        .enumerate()
    {
        if !fraction_contains(c, l) {
            final_containment = false;
            diagnostics.push(Diagnostic::new(
                LintCode::ProfileDivergence,
                format!(
                    "final Conservative interval does not contain the PaperTable1 interval on \
                     bin {bin} (each profile is tighter in different places; soundness is \
                     unaffected)"
                ),
            ));
            break;
        }
    }

    Ok(SoundnessAudit {
        ops_audited: seq.ops.len(),
        monotonic,
        combine_containment,
        final_containment,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::ImageId;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{draw, RasterImage, Rect};
    use mmdb_rules::{ImageInfo, MapInfoResolver};

    fn setup() -> (MapInfoResolver, RgbQuantizer) {
        let q = RgbQuantizer::default_64();
        let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 10, 3), Rgb::RED);
        let hist = ColorHistogram::extract(&img, &q);
        let mut r = MapInfoResolver::new();
        r.insert(ImageId::new(1), ImageInfo::new(hist, 10, 10));
        (r, q)
    }

    #[test]
    fn widening_sequence_audits_clean() {
        let (r, q) = setup();
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(1, 1, 8, 8))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .translate(2.0, 2.0)
            .define(Rect::new(0, 0, 10, 6))
            .crop_to_region()
            .build();
        let audit = audit_sequence(&q, Rgb::BLACK, &seq, &r).unwrap();
        assert!(audit.is_clean(), "{:?}", audit.diagnostics);
        assert_eq!(audit.ops_audited, 6);
        // The blur over a non-empty region must flag the Table 1 caveat.
        assert!(audit
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CombineCaveat));
    }

    #[test]
    fn blur_over_empty_region_no_caveat() {
        let (r, q) = setup();
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(50, 50, 60, 60)) // clips to empty
            .blur()
            .build();
        let audit = audit_sequence(&q, Rgb::BLACK, &seq, &r).unwrap();
        assert!(audit.is_clean());
        assert!(!audit
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CombineCaveat));
    }

    #[test]
    fn integer_scale_monotone_under_both_profiles() {
        let (r, q) = setup();
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(2.0, 2.0)
            .build();
        let audit = audit_sequence(&q, Rgb::BLACK, &seq, &r).unwrap();
        assert!(audit.is_clean(), "{:?}", audit.diagnostics);
        assert!(audit
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::FractionNarrowing));
    }

    #[test]
    fn fractional_scale_narrowing_downgraded_to_w110() {
        let (r, q) = setup();
        // 10×10 → 12×12 (scale 1.2): the literal rule multiplies raw counts
        // by 1.44 and rounds, which can narrow fraction intervals — the
        // documented exception, never an E009.
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(1.2, 1.2)
            .build();
        let audit = audit_sequence(&q, Rgb::BLACK, &seq, &r).unwrap();
        assert!(audit.monotonic, "{:?}", audit.diagnostics);
        assert!(audit
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::MonotonicityViolation));
    }

    #[test]
    fn unknown_base_is_an_error() {
        let (r, q) = setup();
        let seq = EditSequence::builder(ImageId::new(42)).build();
        assert!(audit_sequence(&q, Rgb::BLACK, &seq, &r).is_err());
    }
}

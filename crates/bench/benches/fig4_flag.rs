//! Criterion bench for **Figure 4** (flag data set): RBM vs. BWM range
//! query time at three sweep points — the flag-collection twin of
//! `fig3_helmet.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_flag");
    group.sample_size(20);
    for pct in [0.2f64, 0.5, 0.8] {
        let n_edit = (300.0 * pct).round();
        let p_merge = (1.0 - 27.0 / n_edit).clamp(0.0, 1.0);
        let (db, _info) = DatasetBuilder::new(Collection::Flags)
            .total_images(300)
            .pct_edited(pct)
            .seed(42)
            .variant_config(VariantConfig {
                min_ops: 8,
                max_ops: 20,
                p_merge_target: p_merge,
            })
            .build();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        let queries = QueryGenerator::weighted_from_db(7, &db)
            .thresholds(0.02, 0.15)
            .two_sided_probability(0.0)
            .batch(16);
        group.bench_with_input(
            BenchmarkId::new("rbm", format!("{:.0}pct", pct * 100.0)),
            &pct,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(qp.range_rbm(q).unwrap());
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bwm", format!("{:.0}pct", pct * 100.0)),
            &pct,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(qp.range_bwm(q).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

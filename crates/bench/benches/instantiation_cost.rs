//! Ablation A5: the cost the paper's whole approach exists to avoid.
//!
//! §3: "Since instantiation is an expensive process in terms of execution
//! time, it should be avoided." This bench quantifies that: answering a
//! per-image query via full instantiation + histogram extraction versus the
//! BOUNDS rule computation, as a function of the edit-sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::flags::FlagGenerator;
use mmdb_editops::{EditSequence, ImageId};
use mmdb_histogram::ColorHistogram;
use mmdb_imaging::{Rect, Rgb};
use mmdb_rules::{RuleEngine, RuleProfile};
use mmdb_storage::StorageEngine;

fn sequence_with_ops(base: ImageId, n: usize) -> EditSequence {
    let mut builder = EditSequence::builder(base);
    for i in 0..n {
        builder = match i % 4 {
            0 => builder.define(Rect::new(5 + i as i64, 5, 40 + i as i64, 35)),
            1 => builder.modify(Rgb::new(0xCE, 0x11, 0x26), Rgb::new(0x00, 0x7A, 0x3D)),
            2 => builder.blur(),
            _ => builder.translate(3.0, 2.0),
        };
    }
    builder.build()
}

fn bench_instantiation(c: &mut Criterion) {
    let db = StorageEngine::in_memory(Box::new(mmdb_histogram::RgbQuantizer::default_64()));
    let flag = FlagGenerator::with_seed(42).generate(0);
    let base = db.insert_binary(&flag).unwrap();

    let mut group = c.benchmark_group("instantiation_cost");
    group.sample_size(20);
    for n_ops in [2usize, 8, 32] {
        let seq = sequence_with_ops(base, n_ops);
        let id = db.insert_edited(seq.clone()).unwrap();
        // Exact histogram via instantiation (cache defeated by re-extracting
        // from the raw raster each iteration).
        group.bench_with_input(
            BenchmarkId::new("instantiate+extract", n_ops),
            &n_ops,
            |b, _| {
                b.iter(|| {
                    let raster = db.raster(id).unwrap();
                    // Re-extract (the raster itself is cached; extraction is
                    // the dominant per-query cost an uncached system pays).
                    std::hint::black_box(ColorHistogram::extract(&raster, db.quantizer()));
                });
            },
        );
        let engine = RuleEngine::new(db.quantizer(), RuleProfile::Conservative);
        group.bench_with_input(BenchmarkId::new("bounds", n_ops), &n_ops, |b, _| {
            b.iter(|| std::hint::black_box(engine.bounds(&seq, 0, &db).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instantiation);
criterion_main!(benches);

//! Ablation A1: BWM vs. RBM as a function of the non-bound-widening share.
//! The mechanism behind the Figure 3/4 trend — at share 1.0 the BWM
//! structure saves nothing (every edited image is Unclassified).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;

fn bench_nbw(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_nbw");
    group.sample_size(20);
    for p_merge in [0.0f64, 0.5, 1.0] {
        let (db, _info) = DatasetBuilder::new(Collection::Flags)
            .total_images(300)
            .pct_edited(0.8)
            .seed(42)
            .variant_config(VariantConfig {
                min_ops: 8,
                max_ops: 20,
                p_merge_target: p_merge,
            })
            .build();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        let queries = QueryGenerator::weighted_from_db(7, &db)
            .thresholds(0.02, 0.15)
            .two_sided_probability(0.0)
            .batch(16);
        for (name, use_bwm) in [("rbm", false), ("bwm", true)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("nbw{:.0}", p_merge * 100.0)),
                &p_merge,
                |b, _| {
                    b.iter(|| {
                        for q in &queries {
                            let out = if use_bwm {
                                qp.range_bwm(q).unwrap()
                            } else {
                                qp.range_rbm(q).unwrap()
                            };
                            std::hint::black_box(out);
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_nbw);
criterion_main!(benches);

//! Ablation A4 (substrate): R-tree range search vs. linear scan over binary
//! histogram signatures — the "conventional approach" of §3.1/§4 whose
//! data-access-avoidance idea BWM transplants to edited images.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::{Collection, DatasetBuilder};

use mmdb_imaging::Rgb;
use mmdb_query::SignatureIndex;
use mmdb_rules::InfoResolver;

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_vs_scan");
    group.sample_size(20);
    for n in [100usize, 400, 1600] {
        let (db, _) = DatasetBuilder::new(Collection::Flags)
            .total_images(n)
            .pct_edited(0.0)
            .seed(42)
            .build();
        let index = SignatureIndex::build(&db);
        let red = db.quantizer().bin_of(Rgb::new(0xCE, 0x11, 0x26));
        let ids = db.binary_ids();

        group.bench_with_input(BenchmarkId::new("rtree_bin_range", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(index.bin_range(red, 0.3, 1.0)));
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = Vec::new();
                for &id in &ids {
                    let info = db.info(id).unwrap();
                    let f = info.histogram.fraction(red);
                    if (0.3..=1.0).contains(&f) {
                        hits.push(id);
                    }
                }
                std::hint::black_box(hits)
            });
        });
        // k-NN through the index vs. brute force.
        let probe = db.info(ids[0]).unwrap().histogram;
        group.bench_with_input(BenchmarkId::new("rtree_knn10", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(index.nearest(&probe, 10)));
        });
        group.bench_with_input(BenchmarkId::new("brute_knn10", n), &n, |b, _| {
            b.iter(|| {
                let mut dists: Vec<(f64, _)> = ids
                    .iter()
                    .map(|&id| {
                        let info = db.info(id).unwrap();
                        (mmdb_histogram::l2_distance(&probe, &info.histogram), id)
                    })
                    .collect();
                dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                dists.truncate(10);
                std::hint::black_box(dists)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);

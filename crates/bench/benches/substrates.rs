//! Micro-benchmarks of the substrate layers: histogram extraction, PPM
//! codecs, similarity functions, edit-sequence serialization and the LRU
//! cache. These bound the fixed per-image costs that appear in every
//! end-to-end number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::flags::FlagGenerator;
use mmdb_editops::{codec, EditSequence, ImageId};
use mmdb_histogram::{histogram_intersection, l2_distance, ColorHistogram, RgbQuantizer};
use mmdb_imaging::ppm::{self, PnmFormat};
use mmdb_imaging::{Rect, Rgb};
use mmdb_storage::LruCache;

fn bench_substrates(c: &mut Criterion) {
    let flag = FlagGenerator::new(42, 180, 120).generate(3);
    let q = RgbQuantizer::default_64();

    c.bench_function("histogram_extract_180x120", |b| {
        b.iter(|| std::hint::black_box(ColorHistogram::extract(&flag, &q)));
    });

    let h1 = ColorHistogram::extract(&flag, &q);
    let h2 = ColorHistogram::extract(&FlagGenerator::new(42, 180, 120).generate(7), &q);
    c.bench_function("histogram_intersection_64", |b| {
        b.iter(|| std::hint::black_box(histogram_intersection(&h1, &h2)));
    });
    c.bench_function("l2_distance_64", |b| {
        b.iter(|| std::hint::black_box(l2_distance(&h1, &h2)));
    });

    let mut group = c.benchmark_group("ppm_codec");
    for (name, format) in [
        ("p6_binary", PnmFormat::RawRgb),
        ("p3_text", PnmFormat::PlainRgb),
    ] {
        let encoded = ppm::encode(&flag, format);
        group.bench_with_input(BenchmarkId::new("encode", name), &format, |b, &f| {
            b.iter(|| std::hint::black_box(ppm::encode(&flag, f)));
        });
        group.bench_with_input(BenchmarkId::new("decode", name), &encoded, |b, e| {
            b.iter(|| std::hint::black_box(ppm::decode(e).unwrap()));
        });
    }
    group.finish();

    let seq = EditSequence::builder(ImageId::new(1))
        .define(Rect::new(0, 0, 60, 40))
        .modify(Rgb::RED, Rgb::BLUE)
        .blur()
        .translate(4.0, 4.0)
        .crop_to_region()
        .build();
    let bytes = codec::encode(&seq);
    c.bench_function("editseq_encode_5ops", |b| {
        b.iter(|| std::hint::black_box(codec::encode(&seq)));
    });
    c.bench_function("editseq_decode_5ops", |b| {
        b.iter(|| std::hint::black_box(codec::decode(&bytes).unwrap()));
    });

    c.bench_function("lru_insert_get_mixed", |b| {
        let mut cache: LruCache<u64, u64> = LruCache::new(256, usize::MAX);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.insert(i % 512, i, 8);
            std::hint::black_box(cache.get(&(i % 512)));
        });
    });
}

fn bench_structure_build(c: &mut Criterion) {
    use mmdb_bwm::BwmStructure;
    use mmdb_datagen::{Collection, DatasetBuilder};
    // Figure 1's insertion path: classify every edited image and cluster it.
    let (db, info) = DatasetBuilder::new(Collection::Flags)
        .total_images(400)
        .pct_edited(0.8)
        .seed(42)
        .build();
    c.bench_function("bwm_build_400_images", |b| {
        b.iter(|| {
            std::hint::black_box(BwmStructure::build(
                info.binary_ids.iter().copied(),
                info.edited_ids.iter().copied(),
                &db,
            ))
        });
    });
    // Per-image incremental classification (fresh structure per batch so
    // the cluster lists do not grow across iterations).
    let seq = db.edit_sequence(info.edited_ids[0]).unwrap();
    c.bench_function("bwm_insert_one_edited", |b| {
        b.iter_batched(
            || {
                let mut s = BwmStructure::new();
                s.insert_binary(info.binary_ids[0]);
                s
            },
            |mut s| std::hint::black_box(s.insert_edited(info.edited_ids[0], &seq)),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_substrates, bench_structure_build);
criterion_main!(benches);

//! Criterion bench for **Figure 3** (helmet data set): RBM vs. BWM range
//! query time at three points of the "percentage of images stored as
//! editing operations" sweep.
//!
//! The `repro fig3` binary produces the full 9-point series; this bench
//! measures the same code paths with criterion's statistics at the sweep's
//! ends and middle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmdb_datagen::{Collection, DatasetBuilder, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_helmet");
    group.sample_size(20);
    for pct in [0.2f64, 0.5, 0.8] {
        let n_edit = (300.0 * pct).round();
        let p_merge = (1.0 - 27.0 / n_edit).clamp(0.0, 1.0);
        let (db, _info) = DatasetBuilder::new(Collection::Helmets)
            .total_images(300)
            .pct_edited(pct)
            .seed(42)
            .variant_config(VariantConfig {
                min_ops: 8,
                max_ops: 20,
                p_merge_target: p_merge,
            })
            .build();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        let queries = QueryGenerator::weighted_from_db(7, &db)
            .thresholds(0.02, 0.15)
            .two_sided_probability(0.0)
            .batch(16);
        group.bench_with_input(
            BenchmarkId::new("rbm", format!("{:.0}pct", pct * 100.0)),
            &pct,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(qp.range_rbm(q).unwrap());
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bwm", format!("{:.0}pct", pct * 100.0)),
            &pct,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(qp.range_bwm(q).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

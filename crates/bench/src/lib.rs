#![warn(missing_docs)]

//! # mmdb-bench
//!
//! The performance-evaluation harness (§5 of the paper). The library half
//! holds the experiment logic — dataset construction per sweep point, query
//! batches, wall-clock measurement, CSV output — shared between:
//!
//! * the `repro` binary (`cargo run -p mmdb-bench --release --bin repro`),
//!   which regenerates every table/figure as formatted text + CSV under
//!   `results/`;
//! * the criterion benches in `benches/`, which measure the same code paths
//!   with statistical rigour.
//!
//! ## Sweep semantics (Figures 3 and 4)
//!
//! The paper fixes the database size and varies "the percentage of images
//! stored as editing operations". Its reported trend — the BWM advantage
//! *shrinks* as that percentage grows — is explained by the authors as more
//! images falling into the non-bound-widening category. We therefore model
//! the sweep with a **fixed pool of bound-widening-only edited images**
//! (sized at the lowest sweep point) while every additional edited image
//! contains a `Merge`-with-target operation. The constant-mix alternative
//! (fixed non-bound-widening *share*) is available as an ablation
//! (`repro ablation-nbw` sweeps the share directly).

pub mod coldstart;
pub mod csvout;
pub mod experiments;
pub mod serveload;
pub mod timing;

pub use experiments::{
    bins_ablation, figure_sweep, figure_sweep_constant_mix, headline, knn_experiment, nbw_ablation,
    profile_ablation, selectivity_ablation, table2, BinsPoint, Figure, KnnPoint, NbwPoint,
    ProfileReport, SelectivityPoint, SweepConfig, SweepPoint,
};

//! Closed-loop load generator for the network query server (`repro
//! serve-load`). N client threads each run a fixed budget of range queries
//! back-to-back over their own connection; a sweep over N measures
//! throughput (qps) and latency percentiles per concurrency level, plus a
//! deliberately under-provisioned "tight" scenario that exercises the
//! admission-control (`OVERLOADED`) and deadline (`DEADLINE_EXCEEDED`)
//! paths. Results land in `results/serve_throughput.csv`.

use mmdbms::datagen::helmets::HelmetGenerator;
use mmdbms::prelude::*;
use mmdbms::server::protocol::{PlanKind, ProfileKind};
use mmdbms::server::{
    Client, ClientError, QueryServer, RangeRequest, ServerConfig, Status, TraceMode,
};
use mmdbms::MultimediaDatabase;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// CSV header for [`LoadPoint::csv_row`].
pub const LOAD_HEADERS: [&str; 10] = [
    "scenario",
    "concurrency",
    "requests",
    "ok",
    "overloaded",
    "deadline_exceeded",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
];

/// Load-generator shape: how much data to self-host and how hard to push.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Binary base images in the self-hosted database.
    pub base_images: usize,
    /// Edited variants generated per base image.
    pub augment: usize,
    /// Master seed (dataset and query mix).
    pub seed: u64,
    /// The concurrency sweep: one measurement per client count.
    pub concurrency_levels: Vec<usize>,
    /// Closed-loop request budget per client thread.
    pub queries_per_client: usize,
}

impl LoadConfig {
    /// The default sweep.
    pub fn default_sweep() -> Self {
        LoadConfig {
            base_images: 40,
            augment: 3,
            seed: 42,
            concurrency_levels: vec![1, 2, 4, 8, 16],
            queries_per_client: 150,
        }
    }

    /// A reduced configuration for CI and `--fast`.
    pub fn fast() -> Self {
        LoadConfig {
            base_images: 12,
            augment: 2,
            seed: 42,
            concurrency_levels: vec![1, 2, 4],
            queries_per_client: 40,
        }
    }
}

/// One measured concurrency level.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// `sweep` for the normal capacity server, `tight` for the
    /// under-provisioned overload/deadline scenario.
    pub scenario: &'static str,
    /// Client threads driving the closed loop.
    pub concurrency: usize,
    /// Requests issued (and answered — the loop is closed).
    pub requests: usize,
    /// Requests answered `OK`.
    pub ok: usize,
    /// Requests refused by admission control.
    pub overloaded: usize,
    /// Requests whose deadline expired in queue.
    pub deadline_exceeded: usize,
    /// Completed requests per second of wall-clock time.
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

impl LoadPoint {
    /// The row matching [`LOAD_HEADERS`].
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.scenario.to_string(),
            self.concurrency.to_string(),
            self.requests.to_string(),
            self.ok.to_string(),
            self.overloaded.to_string(),
            self.deadline_exceeded.to_string(),
            format!("{:.1}", self.qps),
            format!("{:.3}", self.p50_ms),
            format!("{:.3}", self.p95_ms),
            format!("{:.3}", self.p99_ms),
        ]
    }
}

/// Builds the self-hosted helmet database the server fronts.
pub fn build_database(cfg: &LoadConfig) -> Arc<MultimediaDatabase> {
    let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
    let generator = HelmetGenerator::with_seed(cfg.seed);
    for i in 0..cfg.base_images as u64 {
        let image = generator.generate(i);
        db.insert_image_with_augmentation(
            &image,
            cfg.augment,
            mmdbms::datagen::VariantConfig::default(),
            cfg.seed ^ i,
        )
        .expect("load-gen dataset insert");
    }
    Arc::new(db)
}

/// Tiny deterministic generator for the query mix (no `rand` needed here;
/// the split-mix constants give a uniform-enough bin spread).
struct QueryMix {
    state: u64,
}

impl QueryMix {
    fn new(seed: u64) -> Self {
        QueryMix {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    fn next_request(&mut self) -> RangeRequest {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let bin = (self.state >> 32) % 64;
        let plan = match self.state % 4 {
            0 => PlanKind::Rbm,
            1 => PlanKind::Bwm,
            _ => PlanKind::Indexed,
        };
        RangeRequest {
            plan,
            profile: ProfileKind::Conservative,
            bin: bin as u32,
            pct_min: 0.05,
            pct_max: 1.0,
        }
    }
}

/// Runs one closed-loop measurement at `concurrency` clients against a
/// running server. Every request is answered (OK or a structured error);
/// transport or protocol failures abort the run.
pub fn run_level(
    addr: SocketAddr,
    scenario: &'static str,
    concurrency: usize,
    queries_per_client: usize,
    deadline_ms: u32,
    seed: u64,
) -> LoadPoint {
    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let workers: Vec<_> = (0..concurrency)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("load-gen connect");
                let mut mix = QueryMix::new(seed ^ (c as u64 + 1));
                let mut latencies_ms = Vec::with_capacity(queries_per_client);
                let (mut ok, mut overloaded, mut deadline_exceeded) = (0usize, 0usize, 0usize);
                barrier.wait();
                for _ in 0..queries_per_client {
                    let request = mix.next_request();
                    let start = Instant::now();
                    match client.range_with_deadline(request, deadline_ms) {
                        Ok(_) => ok += 1,
                        Err(ClientError::Server {
                            status: Status::Overloaded,
                            ..
                        }) => overloaded += 1,
                        Err(ClientError::Server {
                            status: Status::DeadlineExceeded,
                            ..
                        }) => deadline_exceeded += 1,
                        Err(other) => panic!("load-gen client {c}: {other}"),
                    }
                    latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                }
                (latencies_ms, ok, overloaded, deadline_exceeded)
            })
        })
        .collect();

    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies_ms = Vec::with_capacity(concurrency * queries_per_client);
    let (mut ok, mut overloaded, mut deadline_exceeded) = (0usize, 0usize, 0usize);
    for handle in workers {
        let (lats, o, ov, de) = handle.join().expect("load-gen client panicked");
        latencies_ms.extend(lats);
        ok += o;
        overloaded += ov;
        deadline_exceeded += de;
    }
    let wall = wall_start.elapsed().as_secs_f64().max(1e-9);

    latencies_ms.sort_by(f64::total_cmp);
    let requests = latencies_ms.len();
    LoadPoint {
        scenario,
        concurrency,
        requests,
        ok,
        overloaded,
        deadline_exceeded,
        qps: requests as f64 / wall,
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (sorted_ms.len() as f64 * q).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// The concurrency sweep against an already-running server (the
/// `--connect` path; also used by the CI smoke job).
pub fn run_sweep_against(addr: SocketAddr, cfg: &LoadConfig) -> Vec<LoadPoint> {
    cfg.concurrency_levels
        .iter()
        .map(|&n| run_level(addr, "sweep", n, cfg.queries_per_client, 0, cfg.seed))
        .collect()
}

/// Self-hosted mode: builds the dataset, boots a full-capacity server for
/// the sweep, then an under-provisioned one (one worker, queue depth 2) at
/// the highest concurrency with a short deadline, so the `OVERLOADED` and
/// `DEADLINE_EXCEEDED` paths show up in the results and in `/metrics`.
pub fn run_self_hosted(cfg: &LoadConfig) -> Vec<LoadPoint> {
    let db = build_database(cfg);

    let server = QueryServer::bind(
        "127.0.0.1:0",
        Arc::<MultimediaDatabase>::clone(&db) as Arc<dyn mmdbms::server::QueryBackend>,
        ServerConfig::default(),
    )
    .expect("bind load-gen server");
    let mut points = run_sweep_against(server.local_addr(), cfg);
    server.shutdown();

    let tight = QueryServer::bind(
        "127.0.0.1:0",
        Arc::<MultimediaDatabase>::clone(&db) as Arc<dyn mmdbms::server::QueryBackend>,
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind tight server");
    let stress_concurrency = cfg.concurrency_levels.iter().copied().max().unwrap_or(8);
    points.push(run_level(
        tight.local_addr(),
        "tight",
        stress_concurrency,
        cfg.queries_per_client,
        2,
        cfg.seed,
    ));
    tight.shutdown();
    points
}

/// CSV header for [`TraceOverheadPoint::csv_row`].
pub const TRACE_OVERHEAD_HEADERS: [&str; 9] = [
    "trace_mode",
    "concurrency",
    "requests",
    "kept_traces",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "qps_vs_off_pct",
];

/// One tracing mode measured against the identical workload.
#[derive(Clone, Debug)]
pub struct TraceOverheadPoint {
    /// Row label (`trace-off`, `trace-tail`, `trace-full`, `tail-capture`).
    pub label: &'static str,
    /// The server's tracing mode for this run.
    pub mode: TraceMode,
    /// Traces retained by the tail sampler during the run.
    pub kept_traces: usize,
    /// Throughput relative to the `off` baseline, percent (100 = equal).
    pub qps_vs_off_pct: f64,
    /// The underlying load measurement.
    pub point: LoadPoint,
}

impl TraceOverheadPoint {
    /// The row matching [`TRACE_OVERHEAD_HEADERS`].
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.to_string(),
            self.point.concurrency.to_string(),
            self.point.requests.to_string(),
            self.kept_traces.to_string(),
            format!("{:.1}", self.point.qps),
            format!("{:.3}", self.point.p50_ms),
            format!("{:.3}", self.point.p95_ms),
            format!("{:.3}", self.point.p99_ms),
            format!("{:.1}", self.qps_vs_off_pct),
        ]
    }
}

/// Measures the serving cost of request tracing: the same closed-loop
/// workload against self-hosted servers that differ only in [`TraceMode`]
/// (off / tail-sampled / 100% retention). The acceptance bar is
/// tail-sampled throughput within 5% of tracing-off; `full` quantifies what
/// always-on retention would cost instead. A fourth `tail-capture` arm
/// reruns tail sampling with the retroactive-keep threshold pinned to the
/// off-run's p99, demonstrating that the store captures (roughly) the
/// slowest 1% of requests without being told which ones in advance.
pub fn run_trace_overhead(cfg: &LoadConfig) -> Vec<TraceOverheadPoint> {
    let db = build_database(cfg);
    let concurrency = cfg.concurrency_levels.iter().copied().max().unwrap_or(8);
    let run_mode = |label, mode| {
        mmdbms::telemetry::trace_store().clear();
        let server = QueryServer::bind(
            "127.0.0.1:0",
            Arc::<MultimediaDatabase>::clone(&db) as Arc<dyn mmdbms::server::QueryBackend>,
            ServerConfig {
                trace_mode: mode,
                ..ServerConfig::default()
            },
        )
        .expect("bind trace-overhead server");
        // A short unmeasured warm pass so lazy structures (bound index,
        // raster cache) are identical across the measured runs.
        run_level(server.local_addr(), "warm", 2, 20, 0, cfg.seed ^ 0xBEEF);
        let point = run_level(
            server.local_addr(),
            label,
            concurrency,
            cfg.queries_per_client,
            0,
            cfg.seed,
        );
        let kept_traces = mmdbms::telemetry::trace_store().len();
        server.shutdown();
        TraceOverheadPoint {
            label,
            mode,
            kept_traces,
            qps_vs_off_pct: 0.0,
            point,
        }
    };

    let mut out = vec![
        run_mode("trace-off", TraceMode::Off),
        run_mode("trace-tail", TraceMode::Tail),
        run_mode("trace-full", TraceMode::Full),
    ];
    // Capture arm: keep threshold = the off-run's p99, so the tail store
    // should retain roughly the slowest 1% of the 0-deadline workload.
    let p99_off = out[0].point.p99_ms;
    mmdbms::telemetry::set_trace_keep_threshold(std::time::Duration::from_secs_f64(p99_off / 1e3));
    out.push(run_mode("tail-capture", TraceMode::Tail));
    mmdbms::telemetry::set_trace_keep_threshold(mmdbms::telemetry::DEFAULT_TRACE_KEEP_THRESHOLD);

    let baseline = out[0].point.qps.max(1e-9);
    for p in &mut out {
        p.qps_vs_off_pct = 100.0 * p.point.qps / baseline;
    }
    out
}

/// CSV header for [`ObservatoryOverheadPoint::csv_row`].
pub const OBSERVATORY_OVERHEAD_HEADERS: [&str; 8] = [
    "observatory",
    "concurrency",
    "requests",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "qps_vs_off_pct",
];

/// One observatory setting measured against the identical workload.
#[derive(Clone, Debug)]
pub struct ObservatoryOverheadPoint {
    /// Row label (`observatory-off`, `observatory-on`).
    pub label: &'static str,
    /// Throughput relative to the `off` baseline, percent (100 = equal).
    pub qps_vs_off_pct: f64,
    /// The underlying load measurement.
    pub point: LoadPoint,
}

impl ObservatoryOverheadPoint {
    /// The row matching [`OBSERVATORY_OVERHEAD_HEADERS`].
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.to_string(),
            self.point.concurrency.to_string(),
            self.point.requests.to_string(),
            format!("{:.1}", self.point.qps),
            format!("{:.3}", self.point.p50_ms),
            format!("{:.3}", self.point.p95_ms),
            format!("{:.3}", self.point.p99_ms),
            format!("{:.1}", self.qps_vs_off_pct),
        ]
    }
}

/// Measures the serving cost of the workload observatory: the same
/// closed-loop workload with hot-path instrumentation (histograms, heat
/// recording) disabled entirely, then with heat accounting *and* an SLO
/// engine on while a scraper thread does what a metrics poller would —
/// publish heat gauges, refresh staleness gauges, and run SLO burn-rate
/// evaluations every 100ms. The acceptance bar is observatory-on
/// throughput ≥ 98% of fully-off (a stricter bar than heat+SLO alone,
/// since the on arm also carries the pre-existing histogram costs).
pub fn run_observatory_overhead(cfg: &LoadConfig) -> Vec<ObservatoryOverheadPoint> {
    let db = build_database(cfg);
    let concurrency = cfg.concurrency_levels.iter().copied().max().unwrap_or(8);
    let run_arm = |label: &'static str| {
        let server = QueryServer::bind(
            "127.0.0.1:0",
            Arc::<MultimediaDatabase>::clone(&db) as Arc<dyn mmdbms::server::QueryBackend>,
            ServerConfig {
                trace_mode: TraceMode::Off,
                ..ServerConfig::default()
            },
        )
        .expect("bind observatory-overhead server");
        // A short unmeasured warm pass so lazy structures (bound index,
        // raster cache) are identical across the measured runs.
        run_level(server.local_addr(), "warm", 2, 20, 0, cfg.seed ^ 0xFEED);
        let point = run_level(
            server.local_addr(),
            label,
            concurrency,
            cfg.queries_per_client,
            0,
            cfg.seed,
        );
        server.shutdown();
        ObservatoryOverheadPoint {
            label,
            qps_vs_off_pct: 0.0,
            point,
        }
    };

    let was_on = mmdbms::telemetry::instrumentation_enabled();
    mmdbms::telemetry::set_instrumentation(false);
    let off = run_arm("observatory-off");

    mmdbms::telemetry::set_instrumentation(true);
    mmdbms::telemetry::heat().clear();
    // First-configure wins process-wide, so the off arm above must have
    // already run; a tight p99 keeps the engine's evaluation loop honest
    // (it actually walks burn-rate windows, not an empty objective set).
    let _ = mmdbms::telemetry::configure_slo(
        mmdbms::telemetry::SloConfig::parse("range=5ms@p99,err<1%").expect("static spec parses"),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(engine) = mmdbms::telemetry::slo_engine() {
                    engine.evaluate();
                }
                mmdbms::telemetry::publish_heat_gauges(50);
                db.refresh_staleness_gauges();
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        })
    };
    let on = run_arm("observatory-on");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    scraper.join().expect("scraper thread joins");
    mmdbms::telemetry::set_instrumentation(was_on);

    let mut out = vec![off, on];
    let baseline = out[0].point.qps.max(1e-9);
    for p in &mut out {
        p.qps_vs_off_pct = 100.0 * p.point.qps / baseline;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global trace store (the
    /// default server config tail-samples, so even the plain load test can
    /// write to it).
    fn store_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn percentile_indexing() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_self_hosted_run_completes() {
        let _guard = store_lock();
        let cfg = LoadConfig {
            base_images: 4,
            augment: 1,
            seed: 7,
            concurrency_levels: vec![1, 2],
            queries_per_client: 5,
        };
        let points = run_self_hosted(&cfg);
        assert_eq!(points.len(), 3); // two sweep levels + tight scenario
        for p in &points {
            assert_eq!(
                p.requests,
                p.concurrency * cfg.queries_per_client,
                "closed loop must answer every request"
            );
            assert_eq!(p.requests, p.ok + p.overloaded + p.deadline_exceeded);
            assert!(p.qps > 0.0);
        }
        assert!(points.iter().all(|p| p.p50_ms <= p.p99_ms));
    }

    #[test]
    fn trace_overhead_covers_all_modes() {
        let _guard = store_lock();
        let cfg = LoadConfig {
            base_images: 4,
            augment: 1,
            seed: 9,
            concurrency_levels: vec![2],
            queries_per_client: 10,
        };
        let points = run_trace_overhead(&cfg);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].mode, TraceMode::Off);
        assert_eq!(points[0].kept_traces, 0, "off must keep nothing");
        assert_eq!(points[2].mode, TraceMode::Full);
        assert!(
            points[2].kept_traces > 0,
            "full retention must keep every trace"
        );
        // The capture arm exists and restores the default threshold; the
        // kept count is workload-dependent (at this tiny scale the p99 is
        // the max, which a rerun may never exceed), so it is not asserted.
        assert_eq!(points[3].label, "tail-capture");
        assert_eq!(points[3].mode, TraceMode::Tail);
        assert_eq!(
            mmdbms::telemetry::trace_keep_threshold(),
            mmdbms::telemetry::DEFAULT_TRACE_KEEP_THRESHOLD
        );
        assert!((points[0].qps_vs_off_pct - 100.0).abs() < 1e-9);
    }
}

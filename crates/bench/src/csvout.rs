//! Minimal CSV output (hand-rolled — no extra dependency needed for plain
//! numeric tables).

use std::io::Write;
use std::path::Path;

/// Escapes one CSV field (quotes fields containing separators/quotes).
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders a header + rows as CSV text.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str(&row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes a CSV file, creating parent directories as needed.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render(headers, rows).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_table() {
        let rows = vec![
            vec!["1".to_string(), "a".to_string()],
            vec!["2".to_string(), "b".to_string()],
        ];
        let csv = render(&["x", "label"], &rows);
        assert_eq!(csv, "x,label\n1,a\n2,b\n");
    }

    #[test]
    fn escapes_fields() {
        let rows = vec![vec!["he,llo".to_string(), "say \"hi\"".to_string()]];
        let csv = render(&["a", "b"], &rows);
        assert_eq!(csv, "a,b\n\"he,llo\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join(format!("mmdb_csv_{}", std::process::id()));
        let path = dir.join("nested").join("out.csv");
        write_csv(&path, &["v"], &[vec!["9".to_string()]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n9\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}

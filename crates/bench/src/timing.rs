//! Wall-clock measurement helpers.

use mmdb_bwm::QueryOutcome;
use mmdb_rules::ColorRangeQuery;
use std::time::Instant;

/// Runs `f` once per query as a warm-up, then `repeats` independently timed
/// passes over the whole batch, returning the **best-of** (minimum) time per
/// query in milliseconds. Best-of is the standard microbenchmark estimator
/// on noisy machines: scheduler preemption and frequency dips only ever add
/// time, so the minimum is the least-contaminated observation.
///
/// The per-query results of the warm-up pass are returned too, so callers
/// can extract result sets / stats without paying for an extra pass.
pub fn time_batch(
    queries: &[ColorRangeQuery],
    repeats: usize,
    mut f: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
) -> (f64, Vec<QueryOutcome>) {
    assert!(repeats > 0, "need at least one timed pass");
    assert!(!queries.is_empty(), "empty query batch");
    let warmup: Vec<QueryOutcome> = queries.iter().map(&mut f).collect();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(f(q));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let per_query_ms = best * 1e3 / queries.len() as f64;
    (per_query_ms, warmup)
}

/// Times two competing executions with **interleaved** passes (A, B, A, B,
/// …) so machine drift (thermal throttling, noisy neighbours) contaminates
/// both sides equally, and returns the best-of per-query milliseconds for
/// each. Results/stats from a warm-up pass of each side are returned too.
#[allow(clippy::type_complexity)]
pub fn time_interleaved(
    queries: &[ColorRangeQuery],
    repeats: usize,
    mut fa: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
    mut fb: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
) -> ((f64, Vec<QueryOutcome>), (f64, Vec<QueryOutcome>)) {
    assert!(repeats > 0, "need at least one timed pass");
    assert!(!queries.is_empty(), "empty query batch");
    let warm_a: Vec<QueryOutcome> = queries.iter().map(&mut fa).collect();
    let warm_b: Vec<QueryOutcome> = queries.iter().map(&mut fb).collect();
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(fa(q));
        }
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(fb(q));
        }
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    let n = queries.len() as f64;
    ((best_a * 1e3 / n, warm_a), (best_b * 1e3 / n, warm_b))
}

/// [`time_interleaved`] for three competing executions (A, B, C, A, B, C,
/// …): used by the Figure-3/4 sweeps to race RBM, BWM, and the indexed plan
/// under identical machine conditions.
#[allow(clippy::type_complexity)]
pub fn time_interleaved3(
    queries: &[ColorRangeQuery],
    repeats: usize,
    mut fa: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
    mut fb: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
    mut fc: impl FnMut(&ColorRangeQuery) -> QueryOutcome,
) -> (
    (f64, Vec<QueryOutcome>),
    (f64, Vec<QueryOutcome>),
    (f64, Vec<QueryOutcome>),
) {
    assert!(repeats > 0, "need at least one timed pass");
    assert!(!queries.is_empty(), "empty query batch");
    let warm_a: Vec<QueryOutcome> = queries.iter().map(&mut fa).collect();
    let warm_b: Vec<QueryOutcome> = queries.iter().map(&mut fb).collect();
    let warm_c: Vec<QueryOutcome> = queries.iter().map(&mut fc).collect();
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut best_c = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(fa(q));
        }
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(fb(q));
        }
        best_b = best_b.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for q in queries {
            std::hint::black_box(fc(q));
        }
        best_c = best_c.min(start.elapsed().as_secs_f64());
    }
    let n = queries.len() as f64;
    (
        (best_a * 1e3 / n, warm_a),
        (best_b * 1e3 / n, warm_b),
        (best_c * 1e3 / n, warm_c),
    )
}

/// Times a single closure, returning milliseconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_bwm::QueryOutcome;

    #[test]
    fn time_batch_counts_calls() {
        let queries = vec![ColorRangeQuery::at_least(0, 0.1); 4];
        let mut calls = 0;
        let (ms, warmup) = time_batch(&queries, 3, |_| {
            calls += 1;
            QueryOutcome::default()
        });
        // 1 warmup pass + 3 timed passes over 4 queries.
        assert_eq!(calls, 16);
        assert_eq!(warmup.len(), 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn time_once_returns_value() {
        let (ms, v) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty query batch")]
    fn empty_batch_rejected() {
        time_batch(&[], 1, |_| QueryOutcome::default());
    }
}

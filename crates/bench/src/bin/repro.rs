//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mmdb-bench --release --bin repro -- all
//! cargo run -p mmdb-bench --release --bin repro -- fig3 --fast
//! ```
//!
//! Subcommands: `table2`, `fig3`, `fig4`, `headline`, `ablation-nbw`,
//! `ablation-selectivity`, `ablation-profile`, `ablation-knn`,
//! `ablation-bins`, `fig3-constmix`, `fig4-constmix`, `storage`, `lint`,
//! `overhead`, `cold-start`, `serve-load`, `trace-overhead`,
//! `observatory-overhead`, `all`. `--fast` runs a reduced configuration;
//! CSVs land in `results/`. `cold-start` measures restart time-to-ready
//! (re-ingest vs snapshot+replay vs persisted warm index).
//! `serve-load [--connect HOST:PORT]` drives the network query server
//! (self-hosted unless `--connect` points at a running `mmdbctl
//! serve-queries`); `trace-overhead` measures the serving cost of the
//! request-tracing modes; `observatory-overhead` measures the cost of heat
//! accounting plus the SLO engine against instrumentation-off serving.

use mmdb_bench::csvout;
use mmdb_bench::experiments::{self, Figure, SweepConfig, METRICS_HEADERS, SWEEP_HEADERS};
use mmdb_datagen::Collection;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    // Walk up from the executable's cwd to a directory containing Cargo.toml
    // with [workspace]; fall back to ./results.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

fn print_rule(width: usize) {
    println!("{}", "-".repeat(width));
}

fn run_table2(seed: u64) {
    for collection in [Collection::Helmets, Collection::Flags] {
        let info = experiments::table2(collection, seed);
        println!();
        println!("Table 2 (analog) — default parameters, {collection} data set (seed {seed})");
        print_rule(78);
        let mut rows = Vec::new();
        for (desc, value) in info.table2_rows() {
            println!("{desc:<70} {value:>7}");
            rows.push(vec![desc, value]);
        }
        let path = results_dir().join(format!("table2_{collection}.csv"));
        csvout::write_csv(&path, &["parameter", "value"], &rows).expect("write csv");
        println!("[csv] {}", path.display());
    }
}

fn run_figure(figure: Figure, cfg: &SweepConfig) {
    let (name, label) = match figure {
        Figure::Fig3Helmet => (
            "fig3_helmet",
            "Figure 3 — Range Query Time (Helmet Data Set)",
        ),
        Figure::Fig4Flag => ("fig4_flag", "Figure 4 — Range Query Time (Flag Data Set)"),
    };
    println!();
    println!("{label}");
    println!(
        "execution time per range query vs. percentage of images stored as editing operations"
    );
    print_rule(120);
    println!(
        "{:>4}% {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>10} {:>11} {:>9} {:>9} {:>7}",
        "pct",
        "binary",
        "edited",
        "bw-only",
        "non-bw",
        "RBM ms/q",
        "BWM ms/q",
        "saved %",
        "IDX ms/q",
        "idx-spdup",
        "base-hit",
        "equal"
    );
    let points = experiments::figure_sweep(figure, cfg);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>4.0}% {:>8} {:>8} {:>8} {:>8} {:>12.4} {:>12.4} {:>10.2} {:>11.4} {:>8.1}x {:>9.3} {:>7}",
            p.pct * 100.0,
            p.binary,
            p.edited,
            p.bw_only,
            p.nbw,
            p.rbm_ms,
            p.bwm_ms,
            p.reduction_pct,
            p.indexed_ms,
            p.indexed_speedup_vs_bwm,
            p.base_hit_rate,
            p.results_equal
        );
        rows.push(p.csv_row());
    }
    let avg = points.iter().map(|p| p.reduction_pct).sum::<f64>() / points.len() as f64;
    let avg_speedup =
        points.iter().map(|p| p.indexed_speedup_vs_bwm).sum::<f64>() / points.len() as f64;
    print_rule(120);
    println!(
        "average reduction: {avg:.2}%   (paper reports {:.2}%)   indexed avg speedup vs BWM: {avg_speedup:.1}x",
        figure.paper_reduction_pct()
    );
    let path = results_dir().join(format!("{name}.csv"));
    csvout::write_csv(&path, &SWEEP_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());

    // Telemetry companion files: per-point counter deltas as CSV, plus the
    // full end-of-sweep registry in Prometheus text form.
    let metric_rows: Vec<Vec<String>> = points
        .iter()
        .map(mmdb_bench::SweepPoint::metrics_csv_row)
        .collect();
    let metrics_path = results_dir().join(format!("{name}.metrics.csv"));
    csvout::write_csv(&metrics_path, &METRICS_HEADERS, &metric_rows).expect("write metrics csv");
    println!("[csv] {}", metrics_path.display());
    let prom_path = results_dir().join(format!("{name}.metrics.prom"));
    std::fs::write(&prom_path, mmdb_telemetry::global().render_prometheus())
        .expect("write metrics snapshot");
    println!("[metrics] {}", prom_path.display());
}

fn run_headline(cfg: &SweepConfig) {
    println!();
    println!("Headline (§5): average BWM reduction over RBM, and the sweep trend");
    print_rule(86);
    for report in experiments::headline(cfg) {
        let name = match report.figure {
            Figure::Fig3Helmet => "helmet",
            Figure::Fig4Flag => "flag",
        };
        println!(
            "{name:<8} measured avg {:>6.2}%  (paper {:>6.2}%)   trend: {:>6.2}% @ {:.0}% -> {:>6.2}% @ {:.0}%",
            report.avg_reduction_pct,
            report.figure.paper_reduction_pct(),
            report.first_reduction_pct,
            report.points.first().map_or(0.0, |p| p.pct * 100.0),
            report.last_reduction_pct,
            report.points.last().map_or(0.0, |p| p.pct * 100.0),
        );
    }
    println!("(the paper reports the reduction decreasing as more images are stored as editing operations)");
}

fn run_ablation_nbw(cfg: &SweepConfig) {
    println!();
    println!("Ablation A1 — BWM advantage vs. share of non-bound-widening edited images");
    print_rule(96);
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "p_merge", "nbw-share", "RBM ms/q", "BWM ms/q", "saved %", "RBM bounds", "BWM bounds"
    );
    let shares = [0.0, 0.25, 0.5, 0.75, 1.0];
    let points = experiments::nbw_ablation(Collection::Flags, cfg, &shares);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>8.2} {:>10.3} {:>12.4} {:>12.4} {:>10.2} {:>12.1} {:>12.1}",
            p.p_merge,
            p.observed_nbw_share,
            p.rbm_ms,
            p.bwm_ms,
            p.reduction_pct,
            p.rbm_bounds_per_query,
            p.bwm_bounds_per_query
        );
        rows.push(vec![
            format!("{:.2}", p.p_merge),
            format!("{:.3}", p.observed_nbw_share),
            format!("{:.4}", p.rbm_ms),
            format!("{:.4}", p.bwm_ms),
            format!("{:.2}", p.reduction_pct),
            format!("{:.1}", p.rbm_bounds_per_query),
            format!("{:.1}", p.bwm_bounds_per_query),
        ]);
    }
    let path = results_dir().join("ablation_nbw.csv");
    csvout::write_csv(
        &path,
        &[
            "p_merge",
            "observed_nbw_share",
            "rbm_ms_per_query",
            "bwm_ms_per_query",
            "reduction_pct",
            "rbm_bounds_per_query",
            "bwm_bounds_per_query",
        ],
        &rows,
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_ablation_selectivity(cfg: &SweepConfig) {
    println!();
    println!("Ablation A2 — BWM advantage vs. query threshold (base-hit selectivity)");
    print_rule(76);
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "threshold", "base-hit", "RBM ms/q", "BWM ms/q", "saved %"
    );
    let thresholds = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65];
    let points = experiments::selectivity_ablation(Collection::Helmets, cfg, &thresholds);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>10.2} {:>10.3} {:>12.4} {:>12.4} {:>10.2}",
            p.threshold, p.base_hit_rate, p.rbm_ms, p.bwm_ms, p.reduction_pct
        );
        rows.push(vec![
            format!("{:.2}", p.threshold),
            format!("{:.3}", p.base_hit_rate),
            format!("{:.4}", p.rbm_ms),
            format!("{:.4}", p.bwm_ms),
            format!("{:.2}", p.reduction_pct),
        ]);
    }
    let path = results_dir().join("ablation_selectivity.csv");
    csvout::write_csv(
        &path,
        &[
            "threshold",
            "base_hit_rate",
            "rbm_ms_per_query",
            "bwm_ms_per_query",
            "reduction_pct",
        ],
        &rows,
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_ablation_profile(cfg: &SweepConfig) {
    println!();
    println!("Ablation A3 — rule profiles: literal Table 1 vs. conservative");
    print_rule(76);
    let report = experiments::profile_ablation(Collection::Flags, cfg);
    println!(
        "ground-truth matches over batch:      {:>8}",
        report.truth_matches
    );
    println!(
        "candidates (conservative profile):    {:>8}",
        report.candidates_conservative
    );
    println!(
        "candidates (literal Table 1 profile): {:>8}",
        report.candidates_literal
    );
    println!(
        "false negatives — conservative:       {:>8}   (soundness guarantee: must be 0)",
        report.false_negatives_conservative
    );
    println!(
        "false negatives — literal Table 1:    {:>8}   (the scraped Combine row is unsound for real blurs)",
        report.false_negatives_literal
    );
    println!(
        "mean bound width — conservative:      {:>8.4}",
        report.avg_width_conservative
    );
    println!(
        "mean bound width — literal Table 1:   {:>8.4}",
        report.avg_width_literal
    );
    let path = results_dir().join("ablation_profile.csv");
    csvout::write_csv(
        &path,
        &["metric", "conservative", "literal"],
        &[
            vec![
                "candidates".into(),
                report.candidates_conservative.to_string(),
                report.candidates_literal.to_string(),
            ],
            vec![
                "false_negatives".into(),
                report.false_negatives_conservative.to_string(),
                report.false_negatives_literal.to_string(),
            ],
            vec![
                "avg_bound_width".into(),
                format!("{:.4}", report.avg_width_conservative),
                format!("{:.4}", report.avg_width_literal),
            ],
            vec![
                "truth_matches".into(),
                report.truth_matches.to_string(),
                report.truth_matches.to_string(),
            ],
        ],
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_figure_constmix(figure: Figure, cfg: &SweepConfig) {
    let name = match figure {
        Figure::Fig3Helmet => "fig3_helmet_constmix",
        Figure::Fig4Flag => "fig4_flag_constmix",
    };
    println!();
    println!("Sweep variant — constant non-bound-widening mix (25%) at every point");
    println!(
        "(contrast with the fixed-pool sweep: here BWM's advantage grows with the edited share)"
    );
    print_rule(120);
    println!(
        "{:>4}% {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>10} {:>11} {:>9} {:>9} {:>7}",
        "pct",
        "binary",
        "edited",
        "bw-only",
        "non-bw",
        "RBM ms/q",
        "BWM ms/q",
        "saved %",
        "IDX ms/q",
        "idx-spdup",
        "base-hit",
        "equal"
    );
    let points = experiments::figure_sweep_constant_mix(figure, cfg, 0.25);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>4.0}% {:>8} {:>8} {:>8} {:>8} {:>12.4} {:>12.4} {:>10.2} {:>11.4} {:>8.1}x {:>9.3} {:>7}",
            p.pct * 100.0,
            p.binary,
            p.edited,
            p.bw_only,
            p.nbw,
            p.rbm_ms,
            p.bwm_ms,
            p.reduction_pct,
            p.indexed_ms,
            p.indexed_speedup_vs_bwm,
            p.base_hit_rate,
            p.results_equal
        );
        rows.push(p.csv_row());
    }
    let path = results_dir().join(format!("{name}.csv"));
    csvout::write_csv(&path, &SWEEP_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_ablation_knn(cfg: &SweepConfig) {
    println!();
    println!("Ablation A6 — bounds-pruned k-NN over the augmented database (§6 future work)");
    print_rule(86);
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>10} {:>7}",
        "k", "pruned-frac", "pruned ms/probe", "brute ms/probe", "speedup", "exact"
    );
    let ks = [1usize, 5, 10, 25];
    let points = experiments::knn_experiment(Collection::Flags, cfg, &ks);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>4} {:>12.3} {:>14.3} {:>14.3} {:>9.2}x {:>7}",
            p.k,
            p.pruned_frac,
            p.fast_ms,
            p.brute_ms,
            p.brute_ms / p.fast_ms,
            p.exact
        );
        rows.push(vec![
            p.k.to_string(),
            format!("{:.3}", p.pruned_frac),
            format!("{:.3}", p.fast_ms),
            format!("{:.3}", p.brute_ms),
            format!("{:.2}", p.brute_ms / p.fast_ms),
            p.exact.to_string(),
        ]);
    }
    let path = results_dir().join("ablation_knn.csv");
    csvout::write_csv(
        &path,
        &[
            "k",
            "pruned_frac",
            "pruned_ms",
            "brute_ms",
            "speedup",
            "exact",
        ],
        &rows,
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_ablation_bins(cfg: &SweepConfig) {
    println!();
    println!("Ablation A7 — quantizer granularity (§3.1's 'system-dependent number of divisions')");
    print_rule(76);
    println!(
        "{:>10} {:>6} {:>12} {:>8} {:>10} {:>12}",
        "divisions", "bins", "candidates", "truth", "precision", "RBM ms/q"
    );
    let points = experiments::bins_ablation(Collection::Flags, cfg, &[2, 4, 8]);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>10} {:>6} {:>12} {:>8} {:>10.3} {:>12.4}",
            p.divisions, p.bins, p.candidates, p.truth, p.precision, p.rbm_ms
        );
        rows.push(vec![
            p.divisions.to_string(),
            p.bins.to_string(),
            p.candidates.to_string(),
            p.truth.to_string(),
            format!("{:.3}", p.precision),
            format!("{:.4}", p.rbm_ms),
        ]);
    }
    let path = results_dir().join("ablation_bins.csv");
    csvout::write_csv(
        &path,
        &[
            "divisions",
            "bins",
            "candidates",
            "truth",
            "precision",
            "rbm_ms_per_query",
        ],
        &rows,
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_storage(cfg: &SweepConfig) {
    println!();
    println!("Storage — the §2 space argument for edit-sequence storage");
    print_rule(76);
    for collection in [Collection::Helmets, Collection::Flags] {
        let (db, info) = mmdb_datagen::DatasetBuilder::new(collection)
            .total_images(cfg.total_images)
            .pct_edited(0.8)
            .seed(cfg.seed)
            .build();
        let stats = db.stats();
        println!(
            "{collection:<8} binary: {:>4} images / {:>10} bytes   edited: {:>4} images / {:>8} bytes   saving factor: {:>8.1}x",
            stats.binary_count,
            stats.binary_bytes,
            stats.edited_count,
            stats.edited_bytes,
            stats.space_saving_factor().unwrap_or(f64::NAN)
        );
        let _ = info;
    }
}

fn run_lint(cfg: &SweepConfig) {
    use mmdbms::analysis::{analyze_catalog, Analyzer, Severity};
    println!();
    println!("Lint — static analysis throughput over generated catalogs");
    print_rule(76);
    let mut rows = Vec::new();
    for collection in [Collection::Helmets, Collection::Flags] {
        let (db, _info) = mmdb_datagen::DatasetBuilder::new(collection)
            .total_images(cfg.total_images)
            .pct_edited(0.8)
            .seed(cfg.seed)
            .build();
        let analyzer = Analyzer::with_resolver(db.quantizer(), db.background(), &db);
        let start = std::time::Instant::now();
        let report = analyze_catalog(&db, &analyzer);
        let elapsed = start.elapsed();
        let warns = report
            .diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warn)
            .count();
        println!(
            "{collection:<8} {:>4} sequence(s) in {elapsed:>10.2?}   errors: {:>3}   warnings: {:>4}   audits clean: {}/{}",
            report.sequences_analyzed,
            report.error_count(),
            warns,
            report.audits_clean,
            report.audited,
        );
        assert!(
            !report.has_errors(),
            "generated {collection} catalog must lint clean"
        );
        rows.push(vec![
            collection.to_string(),
            report.sequences_analyzed.to_string(),
            format!("{:.6}", elapsed.as_secs_f64()),
            report.error_count().to_string(),
            warns.to_string(),
            report.audits_clean.to_string(),
            report.audited.to_string(),
        ]);
    }
    let path = results_dir().join("lint.csv");
    csvout::write_csv(
        &path,
        &[
            "collection",
            "sequences",
            "seconds",
            "errors",
            "warnings",
            "audits_clean",
            "audited",
        ],
        &rows,
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_overhead(cfg: &SweepConfig) {
    println!();
    println!("Overhead — cost of the always-on instrumentation on the BWM hot path");
    print_rule(76);
    let report = experiments::overhead_experiment(Collection::Flags, cfg);
    println!("instrumentation on:  {:>10.4} ms/query", report.enabled_ms);
    println!("instrumentation off: {:>10.4} ms/query", report.disabled_ms);
    println!(
        "overhead: {:+.2}%   (acceptance bar: < 5% mean latency)",
        report.overhead_pct()
    );
    let path = results_dir().join("overhead.csv");
    csvout::write_csv(
        &path,
        &[
            "enabled_ms_per_query",
            "disabled_ms_per_query",
            "overhead_pct",
        ],
        &[vec![
            format!("{:.4}", report.enabled_ms),
            format!("{:.4}", report.disabled_ms),
            format!("{:.2}", report.overhead_pct()),
        ]],
    )
    .expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_serve_load(fast: bool, raw_args: &[String]) {
    use mmdb_bench::serveload::{self, LoadConfig, LOAD_HEADERS};
    let cfg = if fast {
        LoadConfig::fast()
    } else {
        LoadConfig::default_sweep()
    };
    let connect = raw_args
        .iter()
        .position(|a| a == "--connect")
        .and_then(|i| raw_args.get(i + 1));
    println!();
    let points = match connect {
        Some(addr) => {
            use std::net::ToSocketAddrs;
            println!("Serve-load — closed-loop throughput against {addr}");
            let addr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| panic!("bad --connect address {addr:?}"));
            serveload::run_sweep_against(addr, &cfg)
        }
        None => {
            println!(
                "Serve-load — closed-loop throughput, self-hosted helmet database \
                 ({} base images, +{} variants each)",
                cfg.base_images, cfg.augment
            );
            serveload::run_self_hosted(&cfg)
        }
    };
    print_rule(96);
    println!(
        "{:>8} {:>6} {:>9} {:>7} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "scenario",
        "conc",
        "requests",
        "ok",
        "ovld",
        "deadline",
        "qps",
        "p50 ms",
        "p95 ms",
        "p99 ms"
    );
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>8} {:>6} {:>9} {:>7} {:>7} {:>9} {:>10.1} {:>9.3} {:>9.3} {:>9.3}",
            p.scenario,
            p.concurrency,
            p.requests,
            p.ok,
            p.overloaded,
            p.deadline_exceeded,
            p.qps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms
        );
        rows.push(p.csv_row());
    }
    let path = results_dir().join("serve_throughput.csv");
    csvout::write_csv(&path, &LOAD_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_trace_overhead(fast: bool) {
    use mmdb_bench::serveload::{self, LoadConfig, TRACE_OVERHEAD_HEADERS};
    let cfg = if fast {
        LoadConfig::fast()
    } else {
        LoadConfig::default_sweep()
    };
    println!();
    println!(
        "Trace overhead — identical closed-loop workload vs. tracing mode \
         (off / tail-sampled / 100% retention)"
    );
    print_rule(96);
    println!(
        "{:>12} {:>6} {:>9} {:>12} {:>10} {:>9} {:>9} {:>9} {:>12}",
        "trace_mode",
        "conc",
        "requests",
        "kept_traces",
        "qps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "qps vs off"
    );
    let points = serveload::run_trace_overhead(&cfg);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>12} {:>6} {:>9} {:>12} {:>10.1} {:>9.3} {:>9.3} {:>9.3} {:>11.1}%",
            p.label,
            p.point.concurrency,
            p.point.requests,
            p.kept_traces,
            p.point.qps,
            p.point.p50_ms,
            p.point.p95_ms,
            p.point.p99_ms,
            p.qps_vs_off_pct
        );
        rows.push(p.csv_row());
    }
    print_rule(96);
    let tail = &points[1];
    println!(
        "tail-sampled throughput is {:.1}% of tracing-off (acceptance bar: >= 95%); with the \
         keep threshold at the off-run p99, the store captured {} slow-tail trace(s) of {}",
        tail.qps_vs_off_pct, points[3].kept_traces, points[3].point.requests
    );
    let path = results_dir().join("trace_overhead.csv");
    csvout::write_csv(&path, &TRACE_OVERHEAD_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_observatory_overhead(fast: bool) {
    use mmdb_bench::serveload::{self, LoadConfig, OBSERVATORY_OVERHEAD_HEADERS};
    let cfg = if fast {
        LoadConfig::fast()
    } else {
        LoadConfig::default_sweep()
    };
    println!();
    println!(
        "Observatory overhead — identical closed-loop workload with instrumentation off vs. \
         heat accounting + SLO engine on (plus a 100ms scraper thread)"
    );
    print_rule(92);
    println!(
        "{:>16} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>12}",
        "observatory", "conc", "requests", "qps", "p50 ms", "p95 ms", "p99 ms", "qps vs off"
    );
    let points = serveload::run_observatory_overhead(&cfg);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>16} {:>6} {:>9} {:>10.1} {:>9.3} {:>9.3} {:>9.3} {:>11.1}%",
            p.label,
            p.point.concurrency,
            p.point.requests,
            p.point.qps,
            p.point.p50_ms,
            p.point.p95_ms,
            p.point.p99_ms,
            p.qps_vs_off_pct
        );
        rows.push(p.csv_row());
    }
    print_rule(92);
    let on = &points[1];
    println!(
        "observatory-on throughput is {:.1}% of fully-off (acceptance bar: >= 98%)",
        on.qps_vs_off_pct
    );
    let path = results_dir().join("observatory_overhead.csv");
    csvout::write_csv(&path, &OBSERVATORY_OVERHEAD_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());
}

fn run_cold_start(fast: bool, seed: u64) {
    use mmdb_bench::coldstart::{self, COLD_START_HEADERS};
    // The issue's scales; `--fast` shrinks them an order of magnitude.
    let scales: &[u64] = if fast {
        &[1_000, 10_000]
    } else {
        &[10_000, 100_000]
    };
    println!();
    println!("Cold start (S4) — time-to-ready: re-ingest vs snapshot+replay vs persisted index");
    print_rule(100);
    println!(
        "{:>8} {:>16} {:>10} {:>12} {:>12} {:>9} {:>8} {:>9}",
        "images", "arm", "open s", "1st query s", "ready s", "replayed", "results", "speedup"
    );
    let scratch = std::env::temp_dir().join(format!("mmdb_coldstart_{}", std::process::id()));
    let mut rows = Vec::new();
    let mut warm_speedups = Vec::new();
    for &images in scales {
        let points = coldstart::run_scale(&scratch, images, seed);
        let baseline = points[0].total_seconds();
        for p in &points {
            let speedup = baseline / p.total_seconds();
            println!(
                "{:>8} {:>16} {:>10.4} {:>12.4} {:>12.4} {:>9} {:>8} {:>8.1}x",
                p.images,
                p.arm,
                p.open_seconds,
                p.first_query_seconds,
                p.total_seconds(),
                p.replayed_records,
                p.results,
                speedup
            );
            // The acceptance bar applies at the issue's scales; the smallest
            // fast-mode point is fixed-cost dominated and only reported.
            if p.arm == "warm_index" && p.images >= 10_000 {
                warm_speedups.push(speedup);
            }
            rows.push(p.csv_row(speedup));
        }
    }
    print_rule(100);
    let min_speedup = warm_speedups.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "warm persisted-index start vs full re-ingest: {min_speedup:.1}x at worst \
         (acceptance bar: >= 5x)"
    );
    assert!(
        min_speedup >= 5.0,
        "warm start only {min_speedup:.1}x faster than re-ingest (bar: 5x)"
    );
    let path = results_dir().join("cold_start.csv");
    csvout::write_csv(&path, &COLD_START_HEADERS, &rows).expect("write csv");
    println!("[csv] {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let cfg = if fast {
        SweepConfig::fast()
    } else {
        SweepConfig::default_paper()
    };
    println!(
        "repro — edit-sequence MMDBMS evaluation (config: {} images, {} queries, {} repeats{})",
        cfg.total_images,
        cfg.queries,
        cfg.repeats,
        if fast { ", fast mode" } else { "" }
    );

    match command.as_str() {
        "table2" => run_table2(cfg.seed),
        "fig3" => run_figure(Figure::Fig3Helmet, &cfg),
        "fig4" => run_figure(Figure::Fig4Flag, &cfg),
        "headline" => run_headline(&cfg),
        "ablation-nbw" => run_ablation_nbw(&cfg),
        "ablation-selectivity" => run_ablation_selectivity(&cfg),
        "ablation-profile" => run_ablation_profile(&cfg),
        "ablation-knn" => run_ablation_knn(&cfg),
        "ablation-bins" => run_ablation_bins(&cfg),
        "fig3-constmix" => run_figure_constmix(Figure::Fig3Helmet, &cfg),
        "fig4-constmix" => run_figure_constmix(Figure::Fig4Flag, &cfg),
        "storage" => run_storage(&cfg),
        "lint" => run_lint(&cfg),
        "overhead" => run_overhead(&cfg),
        "cold-start" => run_cold_start(fast, cfg.seed),
        "serve-load" => run_serve_load(fast, &args),
        "trace-overhead" => run_trace_overhead(fast),
        "observatory-overhead" => run_observatory_overhead(fast),
        "all" => {
            run_table2(cfg.seed);
            run_figure(Figure::Fig3Helmet, &cfg);
            run_figure(Figure::Fig4Flag, &cfg);
            run_ablation_nbw(&cfg);
            run_ablation_selectivity(&cfg);
            run_ablation_profile(&cfg);
            run_ablation_knn(&cfg);
            run_ablation_bins(&cfg);
            run_figure_constmix(Figure::Fig4Flag, &cfg);
            run_storage(&cfg);
            run_lint(&cfg);
            run_overhead(&cfg);
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            eprintln!(
                "usage: repro [table2|fig3|fig4|headline|ablation-nbw|ablation-selectivity|\
                 ablation-profile|ablation-knn|ablation-bins|fig3-constmix|fig4-constmix|storage|\
                 lint|overhead|cold-start|serve-load [--connect HOST:PORT]|trace-overhead|\
                 observatory-overhead|all] [--fast]"
            );
            std::process::exit(2);
        }
    }
}

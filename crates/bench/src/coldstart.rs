//! Cold-start experiment (S4): time-to-ready of the three restart paths.
//!
//! "Ready" means the database answers its first `Indexed`-plan range query —
//! the slowest thing a fresh process must achieve, since the bound index is
//! the only structure not rebuilt incrementally by ordinary inserts. The
//! three arms, slowest to fastest:
//!
//! 1. **reingest** — no data directory survives: regenerate and insert every
//!    image, then build the index. The disaster-recovery baseline.
//! 2. **snapshot_replay** — the directory survives but holds no persisted
//!    bound index: load the latest snapshot, replay the WAL tail, then build
//!    the index with rule walks over the whole catalog.
//! 3. **warm_index** — the directory additionally holds the persisted
//!    per-profile index segments: load the snapshot, replay the tail, load
//!    the index, and catch up only the records the index stamp misses.
//!
//! The directories are prepared so the snapshot covers all but a small tail
//! of mutations (as after a crash between background snapshots), making the
//! replay arm and the warm arm honest about their incremental work.

use mmdb_datagen::flags::FlagGenerator;
use mmdb_editops::{EditSequence, ImageId};
use mmdb_imaging::{Rect, Rgb};
use mmdb_rules::{ColorRangeQuery, RuleProfile};
use mmdbms::storage::DurabilityOptions;
use mmdbms::MultimediaDatabase;
use std::path::Path;
use std::time::Instant;

/// One arm's measurement at one scale.
#[derive(Clone, Debug)]
pub struct ColdStartPoint {
    /// Total images (binary + edited) in the catalog.
    pub images: u64,
    /// `reingest`, `snapshot_replay`, or `warm_index`.
    pub arm: &'static str,
    /// Opening the engine: recovery (or ingest for the baseline arm).
    pub open_seconds: f64,
    /// First `Indexed`-plan query, including index build/load/catch-up.
    pub first_query_seconds: f64,
    /// WAL records replayed during open (0 for reingest).
    pub replayed_records: u64,
    /// Result-set size of the ready-probe query (equal across arms).
    pub results: usize,
}

impl ColdStartPoint {
    /// Time-to-ready: open plus first indexed query.
    pub fn total_seconds(&self) -> f64 {
        self.open_seconds + self.first_query_seconds
    }

    /// CSV row (see [`COLD_START_HEADERS`]).
    pub fn csv_row(&self, speedup_vs_reingest: f64) -> Vec<String> {
        vec![
            self.images.to_string(),
            self.arm.to_string(),
            format!("{:.4}", self.open_seconds),
            format!("{:.4}", self.first_query_seconds),
            format!("{:.4}", self.total_seconds()),
            self.replayed_records.to_string(),
            self.results.to_string(),
            format!("{:.2}", speedup_vs_reingest),
        ]
    }
}

/// Column order of `results/cold_start.csv`.
pub const COLD_START_HEADERS: [&str; 8] = [
    "images",
    "arm",
    "open_seconds",
    "first_query_seconds",
    "time_to_ready_seconds",
    "replayed_records",
    "results",
    "speedup_vs_reingest",
];

/// Durability used for ingest and restart: fsync off (irrelevant to the
/// recovery code path, dominates ingest otherwise), default segment size
/// and background snapshot cadence.
fn opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: mmdbms::durable::FsyncPolicy::Never,
        ..DurabilityOptions::default()
    }
}

/// Deterministic workload: one base flag per five images, each with four
/// edited variants (the paper's motivating 80% edited share). Returns the
/// ids of inserted bases so the tail phase can reference them.
fn ingest(db: &MultimediaDatabase, first_index: u64, count: u64, seed: u64) -> Vec<ImageId> {
    let flags = FlagGenerator::with_seed(seed);
    let mut bases = Vec::new();
    let mut inserted = 0u64;
    let mut i = first_index;
    while inserted < count {
        let base = db
            .insert_image(&flags.generate(i))
            .expect("insert base image");
        bases.push(base);
        inserted += 1;
        for v in 0..4u64 {
            if inserted >= count {
                break;
            }
            let seq = EditSequence::builder(base)
                .define(Rect::new(v as i64, 0, 16 + v as i64, 16))
                .modify(Rgb::WHITE, Rgb::new(0xCE, 0x11, 0x26))
                .build();
            db.insert_edited(seq).expect("insert edited variant");
            inserted += 1;
        }
        i += 1;
    }
    bases
}

/// The ready probe: one indexed range query under the default profile. Its
/// latency *is* the index build/load cost on a fresh process.
fn ready_probe(db: &MultimediaDatabase) -> usize {
    let query = ColorRangeQuery::new(db.bin_of(Rgb::new(0xCE, 0x11, 0x26)), 0.05, 1.0);
    db.query_range_with(
        &query,
        mmdbms::query::QueryPlan::Indexed,
        RuleProfile::Conservative,
    )
    .expect("indexed query")
    .results
    .len()
}

fn replayed(db: &MultimediaDatabase) -> u64 {
    db.recovery_info().map_or(0, |r| r.replayed_records)
}

/// Recursive copy, skipping `exclude` top-level entries — used to clone the
/// prepared directory per arm (arms must not contaminate each other's
/// on-disk state).
fn copy_dir(src: &Path, dst: &Path, exclude: &[&str]) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read data dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        if exclude.iter().any(|e| name.to_str() == Some(e)) {
            continue;
        }
        let to = dst.join(&name);
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to, &[]);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

/// Runs the three arms at one scale inside `scratch` (wiped afterwards).
pub fn run_scale(scratch: &Path, images: u64, seed: u64) -> Vec<ColdStartPoint> {
    std::fs::remove_dir_all(scratch).ok();
    std::fs::create_dir_all(scratch).expect("create scratch");
    let prepared = scratch.join("prepared");

    // ── Arm 1: reingest, which doubles as preparation of the directory ──
    // The snapshot is flushed at ~98%; the last 2% stays in the WAL tail so
    // the restart arms replay a realistic between-snapshots residue.
    let tail = (images / 50).max(1);
    let bulk = images - tail;
    let start = Instant::now();
    let db = MultimediaDatabase::create_with(
        &prepared,
        Box::new(mmdbms::histogram::RgbQuantizer::default_64()),
        opts(),
    )
    .expect("create database");
    ingest(&db, 0, bulk, seed);
    let mut ingest_seconds = start.elapsed().as_secs_f64();
    // First indexed query of the fresh process: the from-scratch index
    // build. This is the probe the reingest arm reports.
    let probe_start = Instant::now();
    let probe_results = ready_probe(&db);
    let first_query_seconds = probe_start.elapsed().as_secs_f64();
    // Snapshot + persist the (now synced) bound index; prep work for the
    // restart arms, not part of any arm's time-to-ready.
    db.flush().expect("flush snapshot");
    let start = Instant::now();
    ingest(&db, bulk, tail, seed ^ 0x5eed);
    ingest_seconds += start.elapsed().as_secs_f64();
    let results = ready_probe(&db);
    assert!(results >= probe_results, "catalog shrank while growing");
    let reingest = ColdStartPoint {
        images,
        arm: "reingest",
        open_seconds: ingest_seconds,
        first_query_seconds,
        replayed_records: 0,
        results,
    };
    db.storage().wal_sync().expect("sync tail");
    drop(db);

    // ── Arm 2: snapshot + replay, index rebuilt from rule walks ─────────
    let replay_dir = scratch.join("replay");
    copy_dir(&prepared, &replay_dir, &["boundidx"]);
    let start = Instant::now();
    let db = MultimediaDatabase::open_with(&replay_dir, opts()).expect("open replay arm");
    let open_seconds = start.elapsed().as_secs_f64();
    let probe_start = Instant::now();
    let n = ready_probe(&db);
    let snapshot_replay = ColdStartPoint {
        images,
        arm: "snapshot_replay",
        open_seconds,
        first_query_seconds: probe_start.elapsed().as_secs_f64(),
        replayed_records: replayed(&db),
        results: n,
    };
    assert_eq!(
        n, results,
        "replay arm answers differently than live database"
    );
    drop(db);

    // ── Arm 3: snapshot + replay + persisted bound index ────────────────
    let warm_dir = scratch.join("warm");
    copy_dir(&prepared, &warm_dir, &[]);
    let start = Instant::now();
    let db = MultimediaDatabase::open_with(&warm_dir, opts()).expect("open warm arm");
    let open_seconds = start.elapsed().as_secs_f64();
    let probe_start = Instant::now();
    let warm_results = ready_probe(&db);
    let warm_index = ColdStartPoint {
        images,
        arm: "warm_index",
        open_seconds,
        first_query_seconds: probe_start.elapsed().as_secs_f64(),
        replayed_records: replayed(&db),
        results: warm_results,
    };
    drop(db);

    std::fs::remove_dir_all(scratch).ok();
    vec![reingest, snapshot_replay, warm_index]
}

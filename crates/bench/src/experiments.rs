//! Experiment implementations — one function per paper artifact (see
//! DESIGN.md's experiment index).

use mmdb_datagen::{Collection, DatasetBuilder, DatasetInfo, QueryGenerator, VariantConfig};
use mmdb_query::QueryProcessor;
use mmdb_rules::{ColorRangeQuery, RuleProfile};
use mmdb_storage::StorageEngine;
use mmdb_telemetry::{HistogramSnapshot, Snapshot};

/// Which figure of the paper a sweep reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Figure {
    /// Figure 3: the helmet data set.
    Fig3Helmet,
    /// Figure 4: the flag data set.
    Fig4Flag,
}

impl Figure {
    /// The collection behind the figure.
    pub fn collection(self) -> Collection {
        match self {
            Figure::Fig3Helmet => Collection::Helmets,
            Figure::Fig4Flag => Collection::Flags,
        }
    }

    /// Paper-reported average reduction of BWM over RBM (§5).
    pub fn paper_reduction_pct(self) -> f64 {
        match self {
            Figure::Fig3Helmet => 33.07,
            Figure::Fig4Flag => 22.08,
        }
    }
}

fn palette_of(collection: Collection) -> &'static [mmdb_imaging::Rgb] {
    match collection {
        Collection::Flags => &mmdb_datagen::palette::FLAG_COLORS,
        Collection::Helmets => &mmdb_datagen::palette::TEAM_COLORS,
    }
}

/// Shared sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Total images in the database (binary + edited), fixed across the
    /// sweep.
    pub total_images: usize,
    /// The x-axis: fraction of images stored as editing operations.
    pub pcts: Vec<f64>,
    /// Range queries per batch.
    pub queries: usize,
    /// Timed passes over the batch.
    pub repeats: usize,
    /// Master seed.
    pub seed: u64,
    /// Fixed pool of bound-widening-only edited images (see the crate docs
    /// for why the pool is fixed while the sweep grows).
    pub bw_pool: usize,
    /// `(min, max)` operations per variant.
    pub variant_ops: (usize, usize),
}

impl SweepConfig {
    /// Full-scale configuration (≈ minutes of wall time).
    pub fn default_paper() -> Self {
        SweepConfig {
            total_images: 600,
            pcts: (1..=9).map(|i| i as f64 / 10.0).collect(),
            queries: 40,
            repeats: 9,
            seed: 42,
            bw_pool: 54, // 0.9 × (600 × 10%): the mix at the lowest point
            // Table 2's ops-per-image value was lost in the text extraction;
            // 8–20 models a realistic editing session (each user action is a
            // Define + one effect operation).
            variant_ops: (8, 20),
        }
    }

    /// Reduced configuration for smoke tests.
    pub fn fast() -> Self {
        SweepConfig {
            total_images: 120,
            pcts: vec![0.2, 0.5, 0.8],
            queries: 10,
            repeats: 2,
            seed: 42,
            bw_pool: 18,
            variant_ops: (3, 6),
        }
    }
}

/// p50/p95/p99 latency estimates (milliseconds) extracted from one plan's
/// telemetry histogram over a timed window.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyPercentiles {
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

impl LatencyPercentiles {
    /// Extracts percentiles from a histogram-snapshot window (zeros when the
    /// window holds no observations).
    pub fn from_window(window: &HistogramSnapshot) -> Self {
        let ms = |d: Option<std::time::Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e3);
        LatencyPercentiles {
            p50_ms: ms(window.quantile(0.50)),
            p95_ms: ms(window.quantile(0.95)),
            p99_ms: ms(window.quantile(0.99)),
        }
    }
}

/// One x-axis point of Figure 3/4.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Fraction of images stored as editing operations.
    pub pct: f64,
    /// Binary image count at this point.
    pub binary: usize,
    /// Edited image count at this point.
    pub edited: usize,
    /// Edited images with only bound-widening operations.
    pub bw_only: usize,
    /// Edited images with a non-bound-widening operation.
    pub nbw: usize,
    /// Mean RBM time per query (ms) — "without data structure".
    pub rbm_ms: f64,
    /// Mean BWM time per query (ms) — "with data structure".
    pub bwm_ms: f64,
    /// `100 × (rbm − bwm) / rbm`.
    pub reduction_pct: f64,
    /// Fraction of Main-Component clusters whose base satisfied the query
    /// (averaged over the batch).
    pub base_hit_rate: f64,
    /// Mean BOUNDS computations per query under RBM (deterministic work
    /// counter; equals the edited-image count).
    pub rbm_bounds_per_query: f64,
    /// Mean BOUNDS computations per query under BWM (what the shortcut
    /// saves).
    pub bwm_bounds_per_query: f64,
    /// Mean indexed-plan time per query (ms) — bound-interval index lookup.
    pub indexed_ms: f64,
    /// `bwm_ms / indexed_ms`: how many times faster the index answers the
    /// same queries than the scan-based BWM.
    pub indexed_speedup_vs_bwm: f64,
    /// Whether RBM, BWM, and the indexed plan returned identical result sets
    /// on every query.
    pub results_equal: bool,
    /// RBM latency percentiles over the timed passes, from the telemetry
    /// histogram delta (not best-of: all timed passes contribute).
    pub rbm_latency: LatencyPercentiles,
    /// BWM latency percentiles over the timed passes.
    pub bwm_latency: LatencyPercentiles,
    /// Indexed-plan latency percentiles over the timed passes.
    pub indexed_latency: LatencyPercentiles,
    /// Telemetry registry deltas over the timed passes (warm-up excluded):
    /// what the global counters attribute to this sweep point. Keyed by
    /// series name exactly as the live registry exposes them.
    pub metrics: Snapshot,
}

impl SweepPoint {
    /// CSV row (matches [`SWEEP_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            format!("{:.0}", self.pct * 100.0),
            self.binary.to_string(),
            self.edited.to_string(),
            self.bw_only.to_string(),
            self.nbw.to_string(),
            format!("{:.4}", self.rbm_ms),
            format!("{:.4}", self.bwm_ms),
            format!("{:.2}", self.reduction_pct),
            format!("{:.3}", self.base_hit_rate),
            self.results_equal.to_string(),
            format!("{:.4}", self.rbm_latency.p50_ms),
            format!("{:.4}", self.rbm_latency.p95_ms),
            format!("{:.4}", self.rbm_latency.p99_ms),
            format!("{:.4}", self.bwm_latency.p50_ms),
            format!("{:.4}", self.bwm_latency.p95_ms),
            format!("{:.4}", self.bwm_latency.p99_ms),
            format!("{:.4}", self.indexed_ms),
            format!("{:.2}", self.indexed_speedup_vs_bwm),
            format!("{:.4}", self.indexed_latency.p50_ms),
            format!("{:.4}", self.indexed_latency.p95_ms),
            format!("{:.4}", self.indexed_latency.p99_ms),
        ]
    }

    /// Metrics-snapshot CSV row (matches [`METRICS_HEADERS`]): the key
    /// per-point counter deltas, one column per series of interest.
    pub fn metrics_csv_row(&self) -> Vec<String> {
        let m = &self.metrics;
        let widening = m.get(r#"mmdb_rules_widening_ops_total{profile="paper_table1"}"#)
            + m.get(r#"mmdb_rules_widening_ops_total{profile="conservative"}"#);
        vec![
            format!("{:.0}", self.pct * 100.0),
            m.get("mmdb_rules_bounds_computed_total").to_string(),
            widening.to_string(),
            m.get("mmdb_bwm_clusters_visited_total").to_string(),
            m.get("mmdb_bwm_base_hits_total").to_string(),
            m.get("mmdb_bwm_shortcut_emissions_total").to_string(),
            m.get("mmdb_bwm_ops_processed_total").to_string(),
            m.get(r#"mmdb_bwm_scans_total{component="unclassified"}"#)
                .to_string(),
            m.get("mmdb_storage_instantiations_total").to_string(),
            m.get("mmdb_storage_cache_hits_total").to_string(),
            m.get("mmdb_storage_cache_misses_total").to_string(),
            m.get(r#"mmdb_query_range_latency_seconds{plan="rbm"}_sum_nanos"#)
                .to_string(),
            m.get(r#"mmdb_query_range_latency_seconds{plan="bwm"}_sum_nanos"#)
                .to_string(),
            m.get("mmdb_boundidx_hits_total").to_string(),
            m.get("mmdb_boundidx_misses_total").to_string(),
            m.get(r#"mmdb_query_range_latency_seconds{plan="indexed"}_sum_nanos"#)
                .to_string(),
        ]
    }
}

/// CSV headers for the per-point metrics-snapshot file written next to each
/// figure's timing CSV (`<figure>.metrics.csv`).
pub const METRICS_HEADERS: [&str; 16] = [
    "pct_edited",
    "rules_bounds_computed",
    "rules_widening_ops",
    "bwm_clusters_visited",
    "bwm_base_hits",
    "bwm_shortcut_emissions",
    "bwm_ops_processed",
    "bwm_scans_unclassified",
    "storage_instantiations",
    "storage_cache_hits",
    "storage_cache_misses",
    "rbm_latency_sum_nanos",
    "bwm_latency_sum_nanos",
    "boundidx_hits",
    "boundidx_misses",
    "indexed_latency_sum_nanos",
];

/// CSV headers for sweep outputs.
pub const SWEEP_HEADERS: [&str; 21] = [
    "pct_edited",
    "binary_images",
    "edited_images",
    "bw_only",
    "non_bw",
    "rbm_ms_per_query",
    "bwm_ms_per_query",
    "reduction_pct",
    "base_hit_rate",
    "results_equal",
    "rbm_p50_ms",
    "rbm_p95_ms",
    "rbm_p99_ms",
    "bwm_p50_ms",
    "bwm_p95_ms",
    "bwm_p99_ms",
    "indexed_ms_per_query",
    "indexed_speedup_vs_bwm",
    "indexed_p50_ms",
    "indexed_p95_ms",
    "indexed_p99_ms",
];

fn build_dataset(
    collection: Collection,
    total: usize,
    pct: f64,
    seed: u64,
    variant_ops: (usize, usize),
    p_merge: f64,
) -> (StorageEngine, DatasetInfo) {
    DatasetBuilder::new(collection)
        .total_images(total)
        .pct_edited(pct)
        .seed(seed)
        .variant_config(VariantConfig {
            min_ops: variant_ops.0,
            max_ops: variant_ops.1,
            p_merge_target: p_merge,
        })
        .build()
}

fn measure_point(
    collection: Collection,
    cfg: &SweepConfig,
    pct: f64,
    p_merge: f64,
    query_thresholds: Option<(f64, f64)>,
) -> SweepPoint {
    let (db, info) = build_dataset(
        collection,
        cfg.total_images,
        pct,
        cfg.seed,
        cfg.variant_ops,
        p_merge,
    );
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    qp.build_bound_index().expect("bound index build");
    // Mass-weighted colors with modest thresholds: the paper's users query
    // for colors the collection actually contains.
    let mut qgen = QueryGenerator::weighted_from_db(cfg.seed ^ 0xBEEF, &db)
        .thresholds(0.02, 0.15)
        .two_sided_probability(0.0);
    if let Some((lo, hi)) = query_thresholds {
        qgen = qgen.thresholds(lo, hi);
    }
    let queries = qgen.batch(cfg.queries);

    // Warm all code paths (page-in, allocator, CPU frequency) before any
    // timing, then measure with interleaved best-of passes so machine drift
    // hits every method equally.
    for q in &queries {
        std::hint::black_box(qp.range_rbm(q).unwrap());
        std::hint::black_box(qp.range_bwm(q).unwrap());
        std::hint::black_box(qp.range_indexed(q).unwrap());
    }
    mmdb_rules::flush_metrics(); // drain warm-up remnants out of the window
    let g = mmdb_telemetry::global();
    let rbm_hist = g.histogram(r#"mmdb_query_range_latency_seconds{plan="rbm"}"#);
    let bwm_hist = g.histogram(r#"mmdb_query_range_latency_seconds{plan="bwm"}"#);
    let idx_hist = g.histogram(r#"mmdb_query_range_latency_seconds{plan="indexed"}"#);
    let (rbm_before, bwm_before, idx_before) = (
        rbm_hist.snapshot(),
        bwm_hist.snapshot(),
        idx_hist.snapshot(),
    );
    let telemetry_before = g.snapshot();
    let ((rbm_ms, rbm_out), (bwm_ms, bwm_out), (indexed_ms, idx_out)) =
        crate::timing::time_interleaved3(
            &queries,
            cfg.repeats,
            |q| qp.range_rbm(q).unwrap(),
            |q| qp.range_bwm(q).unwrap(),
            |q| qp.range_indexed(q).unwrap(),
        );
    mmdb_rules::flush_metrics();
    let metrics = g.snapshot().delta(&telemetry_before);
    let rbm_latency = LatencyPercentiles::from_window(&rbm_hist.snapshot().diff(&rbm_before));
    let bwm_latency = LatencyPercentiles::from_window(&bwm_hist.snapshot().diff(&bwm_before));
    let indexed_latency = LatencyPercentiles::from_window(&idx_hist.snapshot().diff(&idx_before));

    let results_equal = rbm_out
        .iter()
        .zip(&bwm_out)
        .zip(&idx_out)
        .all(|((a, b), c)| {
            let rbm = a.sorted_results();
            rbm == b.sorted_results() && rbm == c.sorted_results()
        });
    let (hits, clusters) = bwm_out.iter().fold((0usize, 0usize), |(h, c), o| {
        (h + o.stats.base_hits, c + o.stats.clusters_visited)
    });
    let base_hit_rate = if clusters == 0 {
        0.0
    } else {
        hits as f64 / clusters as f64
    };
    let rbm_bounds_per_query = rbm_out
        .iter()
        .map(|o| o.stats.bounds_computed)
        .sum::<usize>() as f64
        / rbm_out.len() as f64;
    let bwm_bounds_per_query = bwm_out
        .iter()
        .map(|o| o.stats.bounds_computed)
        .sum::<usize>() as f64
        / bwm_out.len() as f64;
    SweepPoint {
        pct,
        binary: info.binary_images,
        edited: info.edited_images,
        bw_only: info.bound_widening_only,
        nbw: info.non_bound_widening,
        rbm_ms,
        bwm_ms,
        reduction_pct: 100.0 * (rbm_ms - bwm_ms) / rbm_ms,
        base_hit_rate,
        rbm_bounds_per_query,
        bwm_bounds_per_query,
        indexed_ms,
        indexed_speedup_vs_bwm: if indexed_ms > 0.0 {
            bwm_ms / indexed_ms
        } else {
            0.0
        },
        results_equal,
        rbm_latency,
        bwm_latency,
        indexed_latency,
        metrics,
    }
}

/// Result of the instrumentation-overhead experiment (`repro overhead`).
#[derive(Clone, Debug)]
pub struct OverheadReport {
    /// Mean BWM ms/query with histograms and the flight recorder live.
    pub enabled_ms: f64,
    /// Mean BWM ms/query with instrumentation gated off.
    pub disabled_ms: f64,
}

impl OverheadReport {
    /// `100 × (enabled − disabled) / disabled` — what the always-on
    /// observability costs the BWM hot path. The acceptance bar is < 5%.
    pub fn overhead_pct(&self) -> f64 {
        if self.disabled_ms <= 0.0 {
            0.0
        } else {
            100.0 * (self.enabled_ms - self.disabled_ms) / self.disabled_ms
        }
    }
}

/// Measures the cost of the always-on instrumentation on the BWM hot path:
/// interleaved best-of passes over the same batch with the histogram +
/// flight-recorder gate enabled (arm A) vs. off (arm B), so machine drift
/// hits both arms equally. The gate is flipped per call — an atomic store
/// both arms pay identically.
pub fn overhead_experiment(collection: Collection, cfg: &SweepConfig) -> OverheadReport {
    let (db, _info) = build_dataset(
        collection,
        cfg.total_images,
        0.8,
        cfg.seed,
        cfg.variant_ops,
        0.25,
    );
    let mut qp = QueryProcessor::new(&db);
    qp.build_bwm();
    // The effect under measurement is sub-microsecond per query, so this
    // experiment needs a bigger batch and more best-of passes than the
    // figure sweeps to keep scheduler noise from swamping it.
    let queries = QueryGenerator::weighted_from_db(cfg.seed ^ 0x0B5E, &db)
        .thresholds(0.02, 0.15)
        .two_sided_probability(0.0)
        .batch(cfg.queries.max(60));
    let ((enabled_ms, _), (disabled_ms, _)) = crate::timing::time_interleaved(
        &queries,
        cfg.repeats.max(15),
        |q| {
            mmdb_telemetry::set_instrumentation(true);
            qp.range_bwm(q).unwrap()
        },
        |q| {
            mmdb_telemetry::set_instrumentation(false);
            qp.range_bwm(q).unwrap()
        },
    );
    mmdb_telemetry::set_instrumentation(true);
    OverheadReport {
        enabled_ms,
        disabled_ms,
    }
}

/// Figures 3 and 4: execution time vs. percentage of images stored as
/// editing operations, RBM ("w/out data structure") vs. BWM ("with data
/// structure").
pub fn figure_sweep(figure: Figure, cfg: &SweepConfig) -> Vec<SweepPoint> {
    let collection = figure.collection();
    cfg.pcts
        .iter()
        .map(|&pct| {
            let n_edit = (cfg.total_images as f64 * pct).round().max(1.0);
            // Fixed bound-widening pool: the extra edited images of higher
            // sweep points all carry a non-bound-widening Merge.
            let p_merge = (1.0 - cfg.bw_pool as f64 / n_edit).clamp(0.0, 1.0);
            measure_point(collection, cfg, pct, p_merge, None)
        })
        .collect()
}

/// Sweep variant with a **constant** non-bound-widening share at every
/// point, instead of the fixed bound-widening pool of [`figure_sweep`].
/// Under a constant mix the BWM advantage *grows* with the edited share
/// (more of the query's work is edited-image bounds that the shortcut can
/// skip) — contrasting with the paper's reported decreasing trend, which is
/// what motivates the fixed-pool reading of their sweep (see EXPERIMENTS.md).
pub fn figure_sweep_constant_mix(
    figure: Figure,
    cfg: &SweepConfig,
    p_merge: f64,
) -> Vec<SweepPoint> {
    let collection = figure.collection();
    cfg.pcts
        .iter()
        .map(|&pct| measure_point(collection, cfg, pct, p_merge, None))
        .collect()
}

/// One point of the k-NN pruning experiment (A6 — the paper's §6
/// nearest-neighbour future work).
#[derive(Clone, Debug)]
pub struct KnnPoint {
    /// Neighbours requested.
    pub k: usize,
    /// Fraction of edited images pruned without instantiation.
    pub pruned_frac: f64,
    /// Mean time per probe, bounds-pruned search (ms, cold caches).
    pub fast_ms: f64,
    /// Mean time per probe, brute force (ms, cold caches).
    pub brute_ms: f64,
    /// Result sets agreed with brute force.
    pub exact: bool,
}

/// A6: bounds-pruned k-NN over the augmented database vs. brute-force
/// instantiation. Both run against freshly built (cold-cache) databases of
/// the same seed so neither benefits from the other's instantiation work.
pub fn knn_experiment(collection: Collection, cfg: &SweepConfig, ks: &[usize]) -> Vec<KnnPoint> {
    use mmdb_histogram::ColorHistogram;
    ks.iter()
        .map(|&k| {
            let build = || {
                build_dataset(
                    collection,
                    cfg.total_images,
                    0.8,
                    cfg.seed,
                    cfg.variant_ops,
                    0.25,
                )
                .0
            };
            let db_fast = build();
            let db_brute = build();
            // Probes: a handful of binary rasters' histograms — queries that
            // resemble the collection, as a user's example image would.
            let probe_ids: Vec<_> = db_fast.binary_ids().into_iter().take(6).collect();
            let probes: Vec<ColorHistogram> = probe_ids
                .iter()
                .map(|&id| {
                    let raster = db_fast.raster(id).unwrap();
                    ColorHistogram::extract(&raster, db_fast.quantizer())
                })
                .collect();

            let t = std::time::Instant::now();
            let fast: Vec<_> = probes
                .iter()
                .map(|p| {
                    mmdb_query::knn_augmented(&db_fast, p, k, RuleProfile::Conservative).unwrap()
                })
                .collect();
            let fast_ms = t.elapsed().as_secs_f64() * 1e3 / probes.len() as f64;

            let t = std::time::Instant::now();
            let brute: Vec<_> = probes
                .iter()
                .map(|p| mmdb_query::knn_brute_force(&db_brute, p, k).unwrap())
                .collect();
            let brute_ms = t.elapsed().as_secs_f64() * 1e3 / probes.len() as f64;

            let exact = fast.iter().zip(&brute).all(|(f, b)| {
                f.neighbours.len() == b.len()
                    && f.neighbours
                        .iter()
                        .zip(b)
                        .all(|(x, y)| (x.0 - y.0).abs() < 1e-9)
            });
            let (pruned, total) = fast.iter().fold((0usize, 0usize), |(p, t), o| {
                (
                    p + o.stats.edited_pruned,
                    t + o.stats.edited_pruned + o.stats.edited_instantiated,
                )
            });
            KnnPoint {
                k,
                pruned_frac: if total == 0 {
                    0.0
                } else {
                    pruned as f64 / total as f64
                },
                fast_ms,
                brute_ms,
                exact,
            }
        })
        .collect()
}

/// One point of the quantizer-granularity ablation (A7): how the
/// "system-dependent number of divisions" (§3.1) trades filter precision
/// against query time.
#[derive(Clone, Debug)]
pub struct BinsPoint {
    /// Per-channel divisions (bins = d³).
    pub divisions: u32,
    /// Total histogram bins.
    pub bins: usize,
    /// Candidates returned by RBM over the batch.
    pub candidates: usize,
    /// Ground-truth matches over the batch.
    pub truth: usize,
    /// Candidate precision (`truth / candidates`; 1.0 = perfect filter).
    pub precision: f64,
    /// Mean RBM ms/query.
    pub rbm_ms: f64,
}

/// A7: sweep the RGB quantizer granularity.
pub fn bins_ablation(
    collection: Collection,
    cfg: &SweepConfig,
    divisions: &[u32],
) -> Vec<BinsPoint> {
    divisions
        .iter()
        .map(|&d| {
            let (db, _info) = DatasetBuilder::new(collection)
                .total_images(cfg.total_images)
                .pct_edited(0.8)
                .seed(cfg.seed)
                .quantizer_divisions(d)
                .variant_config(VariantConfig {
                    min_ops: cfg.variant_ops.0,
                    max_ops: cfg.variant_ops.1,
                    p_merge_target: 0.25,
                })
                .build();
            let qp = QueryProcessor::new(&db);
            let queries = QueryGenerator::weighted_from_db(cfg.seed ^ 0xB145, &db)
                .thresholds(0.02, 0.15)
                .two_sided_probability(0.0)
                .batch(cfg.queries.min(12));
            let mut candidates = 0usize;
            let mut truth = 0usize;
            let (rbm_ms, outs) =
                crate::timing::time_batch(&queries, cfg.repeats, |q| qp.range_rbm(q).unwrap());
            for (q, out) in queries.iter().zip(&outs) {
                candidates += out.results.len();
                truth += qp.range_instantiate(q).unwrap().results.len();
            }
            BinsPoint {
                divisions: d,
                bins: (d * d * d) as usize,
                candidates,
                truth,
                precision: if candidates == 0 {
                    1.0
                } else {
                    truth as f64 / candidates as f64
                },
                rbm_ms,
            }
        })
        .collect()
}

/// The §5 headline numbers: average reduction per figure plus the trend
/// (reduction at the first vs. last sweep point).
#[derive(Clone, Debug)]
pub struct HeadlineReport {
    /// Which figure.
    pub figure: Figure,
    /// Mean reduction over the sweep (percent).
    pub avg_reduction_pct: f64,
    /// Reduction at the lowest percentage point.
    pub first_reduction_pct: f64,
    /// Reduction at the highest percentage point.
    pub last_reduction_pct: f64,
    /// The underlying sweep.
    pub points: Vec<SweepPoint>,
}

/// Computes [`HeadlineReport`]s for both figures.
pub fn headline(cfg: &SweepConfig) -> Vec<HeadlineReport> {
    [Figure::Fig3Helmet, Figure::Fig4Flag]
        .into_iter()
        .map(|figure| {
            let points = figure_sweep(figure, cfg);
            let avg = points.iter().map(|p| p.reduction_pct).sum::<f64>() / points.len() as f64;
            HeadlineReport {
                figure,
                avg_reduction_pct: avg,
                first_reduction_pct: points.first().map_or(0.0, |p| p.reduction_pct),
                last_reduction_pct: points.last().map_or(0.0, |p| p.reduction_pct),
                points,
            }
        })
        .collect()
}

/// Table 2 analog: the generated dataset's actual parameters under the
/// sweep's default configuration (80% of images stored as editing
/// operations, the variant mix the figure sweeps use at that point).
pub fn table2(collection: Collection, seed: u64) -> DatasetInfo {
    let cfg = SweepConfig::default_paper();
    let n_edit = (cfg.total_images as f64 * 0.8).round();
    let p_merge = (1.0 - cfg.bw_pool as f64 / n_edit).clamp(0.0, 1.0);
    let (_, info) = build_dataset(
        collection,
        cfg.total_images,
        0.8,
        seed,
        cfg.variant_ops,
        p_merge,
    );
    info
}

/// One point of the non-bound-widening-share ablation (A1).
#[derive(Clone, Debug)]
pub struct NbwPoint {
    /// Probability that a variant contains a `Merge` with target.
    pub p_merge: f64,
    /// Observed non-bound-widening share of the edited images.
    pub observed_nbw_share: f64,
    /// Mean RBM ms/query.
    pub rbm_ms: f64,
    /// Mean BWM ms/query.
    pub bwm_ms: f64,
    /// Reduction percent.
    pub reduction_pct: f64,
    /// Mean BOUNDS computations per query, RBM.
    pub rbm_bounds_per_query: f64,
    /// Mean BOUNDS computations per query, BWM.
    pub bwm_bounds_per_query: f64,
}

/// A1: BWM's advantage as a direct function of the non-bound-widening share
/// — the mechanism behind the Figure 3/4 trend.
pub fn nbw_ablation(collection: Collection, cfg: &SweepConfig, shares: &[f64]) -> Vec<NbwPoint> {
    shares
        .iter()
        .map(|&p_merge| {
            let point = measure_point(collection, cfg, 0.8, p_merge, None);
            NbwPoint {
                p_merge,
                observed_nbw_share: point.nbw as f64 / point.edited.max(1) as f64,
                rbm_ms: point.rbm_ms,
                bwm_ms: point.bwm_ms,
                reduction_pct: point.reduction_pct,
                rbm_bounds_per_query: point.rbm_bounds_per_query,
                bwm_bounds_per_query: point.bwm_bounds_per_query,
            }
        })
        .collect()
}

/// One point of the base-hit-selectivity ablation (A2).
#[derive(Clone, Debug)]
pub struct SelectivityPoint {
    /// One-sided query threshold ("at least X").
    pub threshold: f64,
    /// Observed fraction of clusters whose base satisfied the query.
    pub base_hit_rate: f64,
    /// Mean RBM ms/query.
    pub rbm_ms: f64,
    /// Mean BWM ms/query.
    pub bwm_ms: f64,
    /// Reduction percent.
    pub reduction_pct: f64,
}

/// A2: BWM's advantage as a function of query selectivity. The shortcut
/// only fires when a cluster's base satisfies the query, so tight (high
/// threshold) queries erode the gain.
pub fn selectivity_ablation(
    collection: Collection,
    cfg: &SweepConfig,
    thresholds: &[f64],
) -> Vec<SelectivityPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let point = measure_point(collection, cfg, 0.8, 0.25, Some((t, t)));
            SelectivityPoint {
                threshold: t,
                base_hit_rate: point.base_hit_rate,
                rbm_ms: point.rbm_ms,
                bwm_ms: point.bwm_ms,
                reduction_pct: point.reduction_pct,
            }
        })
        .collect()
}

/// A3: rule-profile comparison (literal Table 1 vs. conservative).
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Candidate count over the batch, conservative profile.
    pub candidates_conservative: usize,
    /// Candidate count over the batch, literal profile.
    pub candidates_literal: usize,
    /// Ground-truth match count (instantiate plan).
    pub truth_matches: usize,
    /// False negatives of the conservative profile (must be 0 — the
    /// soundness guarantee).
    pub false_negatives_conservative: usize,
    /// False negatives of the literal profile (may be non-zero: the scraped
    /// Combine row is unsound for real blurs).
    pub false_negatives_literal: usize,
    /// Mean fraction-interval width over edited images × queries,
    /// conservative.
    pub avg_width_conservative: f64,
    /// Mean fraction-interval width, literal.
    pub avg_width_literal: f64,
}

/// Runs the profile ablation on a default dataset.
pub fn profile_ablation(collection: Collection, cfg: &SweepConfig) -> ProfileReport {
    let (db, info) = build_dataset(
        collection,
        cfg.total_images,
        0.8,
        cfg.seed,
        cfg.variant_ops,
        0.25,
    );
    let mut qgen = QueryGenerator::new(cfg.seed ^ 0xF00D, palette_of(collection), db.quantizer());
    let queries = qgen.batch(cfg.queries);

    let truth = QueryProcessor::new(&db);
    let cons = QueryProcessor::with_profile(&db, RuleProfile::Conservative);
    let lit = QueryProcessor::with_profile(&db, RuleProfile::PaperTable1);

    let mut report = ProfileReport {
        candidates_conservative: 0,
        candidates_literal: 0,
        truth_matches: 0,
        false_negatives_conservative: 0,
        false_negatives_literal: 0,
        avg_width_conservative: 0.0,
        avg_width_literal: 0.0,
    };
    for q in &queries {
        let truth_hits = truth.range_instantiate(q).unwrap().sorted_results();
        let cons_hits = cons.range_rbm(q).unwrap().sorted_results();
        let lit_hits = lit.range_rbm(q).unwrap().sorted_results();
        report.truth_matches += truth_hits.len();
        report.candidates_conservative += cons_hits.len();
        report.candidates_literal += lit_hits.len();
        report.false_negatives_conservative += truth_hits
            .iter()
            .filter(|id| !cons_hits.contains(id))
            .count();
        report.false_negatives_literal += truth_hits
            .iter()
            .filter(|id| !lit_hits.contains(id))
            .count();
    }

    // Average bound widths over edited images × query bins.
    let cons_engine = mmdb_rules::RuleEngine::new(db.quantizer(), RuleProfile::Conservative);
    let lit_engine = mmdb_rules::RuleEngine::new(db.quantizer(), RuleProfile::PaperTable1);
    let mut cons_width = 0.0;
    let mut lit_width = 0.0;
    let mut samples = 0usize;
    for id in &info.edited_ids {
        let seq = db.edit_sequence(*id).expect("sequence exists");
        for q in queries.iter().take(8) {
            cons_width += cons_engine
                .bounds(&seq, q.bin, &db)
                .map_or(1.0, |b| b.fraction_width());
            lit_width += lit_engine
                .bounds(&seq, q.bin, &db)
                .map_or(1.0, |b| b.fraction_width());
            samples += 1;
        }
    }
    if samples > 0 {
        report.avg_width_conservative = cons_width / samples as f64;
        report.avg_width_literal = lit_width / samples as f64;
    }
    report
}

/// Convenience: a query batch for external benches.
pub fn query_batch(
    collection: Collection,
    db: &StorageEngine,
    n: usize,
    seed: u64,
) -> Vec<ColorRangeQuery> {
    QueryGenerator::new(seed, palette_of(collection), db.quantizer()).batch(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_sweep_is_correct_and_monotone_in_work() {
        let cfg = SweepConfig::fast();
        let points = figure_sweep(Figure::Fig4Flag, &cfg);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                p.results_equal,
                "RBM, BWM, and indexed must agree at pct {}",
                p.pct
            );
            assert!(p.rbm_ms > 0.0 && p.bwm_ms > 0.0 && p.indexed_ms > 0.0);
            // The timed passes answered queries from the index.
            assert!(p.metrics.get("mmdb_boundidx_lookups_total") > 0);
            assert_eq!(p.binary + p.edited, cfg.total_images);
            // The timed passes ran BOUNDS computations, so the per-point
            // telemetry delta must have attributed some to this point.
            assert!(p.metrics.get("mmdb_rules_bounds_computed_total") > 0);
            assert_eq!(p.metrics_csv_row().len(), METRICS_HEADERS.len());
            assert_eq!(p.csv_row().len(), SWEEP_HEADERS.len());
            // The timed passes feed the latency histograms, so the
            // percentile window must be populated and ordered.
            assert!(p.rbm_latency.p50_ms > 0.0 && p.bwm_latency.p50_ms > 0.0);
            assert!(p.rbm_latency.p50_ms <= p.rbm_latency.p95_ms);
            assert!(p.rbm_latency.p95_ms <= p.rbm_latency.p99_ms);
        }
        // Fixed BW pool: the non-BW count grows along the sweep.
        assert!(points[0].nbw < points[2].nbw);
        // The BW-only pool stays (approximately — the per-variant coin flips
        // make it stochastic) constant.
        let spread = points.iter().map(|p| p.bw_only as i64).max().unwrap()
            - points.iter().map(|p| p.bw_only as i64).min().unwrap();
        assert!(spread <= cfg.bw_pool as i64, "pool spread {spread}");
    }

    #[test]
    fn nbw_ablation_shows_mechanism() {
        let cfg = SweepConfig::fast();
        let points = nbw_ablation(Collection::Flags, &cfg, &[0.0, 1.0]);
        assert_eq!(points.len(), 2);
        assert!(points[0].observed_nbw_share < 0.05);
        assert!(points[1].observed_nbw_share > 0.95);
        // With everything unclassified BWM does exactly RBM's bound work;
        // with everything classified the base-hit shortcut must save some.
        // (Work counters are deterministic, unlike wall-clock at this scale.)
        assert_eq!(
            points[1].rbm_bounds_per_query,
            points[1].bwm_bounds_per_query
        );
        assert!(
            points[0].bwm_bounds_per_query < points[0].rbm_bounds_per_query,
            "bwm {} vs rbm {}",
            points[0].bwm_bounds_per_query,
            points[0].rbm_bounds_per_query
        );
    }

    #[test]
    fn table2_defaults() {
        let info = table2(Collection::Helmets, 42);
        assert_eq!(info.total_images, 600);
        assert_eq!(info.edited_images, 480);
        assert_eq!(info.binary_images, 120);
        assert!(info.avg_ops_per_edited > 3.0);
    }

    #[test]
    fn profile_ablation_soundness_and_tightness() {
        let mut cfg = SweepConfig::fast();
        cfg.total_images = 60;
        cfg.queries = 6;
        let report = profile_ablation(Collection::Flags, &cfg);
        assert_eq!(
            report.false_negatives_conservative, 0,
            "conservative profile must never lose a true match"
        );
        // The literal profile is tighter (its Combine rule is a no-op).
        assert!(report.avg_width_literal <= report.avg_width_conservative + 1e-9);
        assert!(report.truth_matches <= report.candidates_conservative);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn constant_mix_sweep_runs() {
        let mut cfg = SweepConfig::fast();
        cfg.pcts = vec![0.2, 0.8];
        cfg.total_images = 60;
        cfg.queries = 6;
        let points = figure_sweep_constant_mix(Figure::Fig4Flag, &cfg, 0.25);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.results_equal);
            // Constant mix: the NBW share stays near 25% at both ends.
            let share = p.nbw as f64 / p.edited.max(1) as f64;
            assert!((share - 0.25).abs() < 0.25, "share {share} at {}", p.pct);
        }
    }

    #[test]
    fn overhead_experiment_runs_and_restores_gate() {
        let mut cfg = SweepConfig::fast();
        cfg.total_images = 60;
        cfg.queries = 6;
        let report = overhead_experiment(Collection::Flags, &cfg);
        assert!(report.enabled_ms > 0.0 && report.disabled_ms > 0.0);
        assert!(report.overhead_pct().is_finite());
        // The experiment must leave instrumentation on for everyone else.
        assert!(mmdb_telemetry::instrumentation_enabled());
    }

    #[test]
    fn knn_experiment_exact_and_counts() {
        let mut cfg = SweepConfig::fast();
        cfg.total_images = 50;
        let points = knn_experiment(Collection::Flags, &cfg, &[1, 5]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.exact, "bounds-pruned k-NN must equal brute force");
            assert!((0.0..=1.0).contains(&p.pruned_frac));
        }
    }
}

//! The wire protocol: a length-prefixed binary framing with a versioned
//! handshake, little-endian throughout, zero dependencies.
//!
//! ## Handshake
//!
//! Immediately after connecting, the client sends `MMDB` (4 bytes) followed
//! by its protocol version (`u16`). The server answers with the same magic,
//! its own version, and one status byte (0 = accepted, 1 = unsupported
//! version). On rejection the server closes the connection. The server
//! accepts any version in `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]` and
//! speaks the *client's* version on that connection, so old clients keep
//! working against new servers unchanged.
//!
//! ## Frames
//!
//! Every subsequent message, in both directions, is one frame:
//!
//! ```text
//! u32 payload_len | payload
//! ```
//!
//! A version-1 request payload is `u64 request_id | u8 opcode |
//! u32 deadline_ms | body`; a version-1 response payload is
//! `u64 request_id | u8 status | body`. Version 2 inserts an optional
//! trace context between the fixed header and the body:
//!
//! ```text
//! request:  u64 id | u8 opcode | u32 deadline_ms | u8 trace_flags | [u64 trace_id] | body
//! response: u64 id | u8 status | u8 trace_flags | [u64 trace_id] | body
//! ```
//!
//! `trace_flags` bit 0 says a `u64 trace_id` follows; bit 1 (requests
//! only) marks the request as head-sampled — the server's tail-sampling
//! trace store keeps sampled requests unconditionally. Responses echo the
//! trace id the server used (the client's, or a server-generated one), so
//! callers can fetch the matching span tree from `/traces/<id>`. A
//! `deadline_ms` of 0 means "no deadline". Oversized `payload_len` values
//! (beyond the server's configured maximum) are answered with a structured
//! error and a clean disconnect, since the stream can no longer be trusted
//! to be framed correctly.
//!
//! ## Opcodes
//!
//! | opcode | name   | request body | response body (status OK) |
//! |--------|--------|--------------|---------------------------|
//! | 1 | `Ping`   | empty | empty |
//! | 2 | `Range`  | `u8 plan, u8 profile, u32 bin, f64 pct_min, f64 pct_max` | `u32 n, n×u64 ids, u64 bounds_computed, u64 shortcut_emissions` |
//! | 3 | `Knn`    | `u64 probe_id, u32 k` | `u32 n, n×(u64 id, f64 distance)` |
//! | 4 | `Lookup` | `u64 id` | `u8 kind, u32 width, u32 height, u64 pixels, u8 has_base, u64 base_id` |
//! | 5 | `Stats`  | empty | `u64 binary_count, u64 edited_count, u64 binary_bytes, u64 edited_bytes, u64 cache_hits, u64 cache_misses` |
//!
//! Error responses (any non-zero status) carry a UTF-8 message as their
//! body.

use std::io::{Read, Write};

pub use mmdb_telemetry::TraceContext;

/// Connection preamble bytes.
pub const MAGIC: [u8; 4] = *b"MMDB";

/// The protocol version this build speaks (v2 adds the optional wire trace
/// context).
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version the server still accepts; v1 connections simply
/// never carry trace contexts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Default cap on `payload_len`; larger frames are rejected as malformed.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 4 << 20;

/// Fixed prefix of every v1 request payload: id (8) + opcode (1) +
/// deadline (4). Version 2 appends a trace-flags byte (and optionally a
/// trace id) to this prefix.
pub const REQUEST_HEADER_LEN: usize = 13;

/// Fixed prefix of every v1 response payload: id (8) + status (1).
/// Version 2 appends a trace-flags byte (and optionally a trace id).
pub const RESPONSE_HEADER_LEN: usize = 9;

/// Trace-flags bit: a `u64 trace_id` follows the flags byte.
const TRACE_FLAG_PRESENT: u8 = 0x1;

/// Trace-flags bit (requests only): the client head-sampled this request.
const TRACE_FLAG_SAMPLED: u8 = 0x2;

/// Request opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// Liveness probe; answered inline even under overload.
    Ping,
    /// Color range query (the paper's §3/§4 retrieval).
    Range,
    /// k-nearest-neighbour search seeded by a stored image.
    Knn,
    /// Point lookup of one image's catalog record.
    Lookup,
    /// Storage statistics.
    Stats,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::Ping),
            2 => Some(Opcode::Range),
            3 => Some(Opcode::Knn),
            4 => Some(Opcode::Lookup),
            5 => Some(Opcode::Stats),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Opcode::Ping => 1,
            Opcode::Range => 2,
            Opcode::Knn => 3,
            Opcode::Lookup => 4,
            Opcode::Stats => 5,
        }
    }

    /// Stable lowercase name (metric labels, log lines).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Range => "range",
            Opcode::Knn => "knn",
            Opcode::Lookup => "lookup",
            Opcode::Stats => "stats",
        }
    }
}

/// Response status codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Success; the body is opcode-specific.
    Ok,
    /// Malformed frame, unknown opcode, or invalid parameters.
    BadRequest,
    /// The submission queue was full — admission control rejected the
    /// request without queueing it.
    Overloaded,
    /// The request's deadline expired before a worker picked it up; it was
    /// never executed.
    DeadlineExceeded,
    /// The referenced image does not exist.
    NotFound,
    /// The backend failed while executing the request.
    Internal,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::BadRequest),
            2 => Some(Status::Overloaded),
            3 => Some(Status::DeadlineExceeded),
            4 => Some(Status::NotFound),
            5 => Some(Status::Internal),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::BadRequest => 1,
            Status::Overloaded => 2,
            Status::DeadlineExceeded => 3,
            Status::NotFound => 4,
            Status::Internal => 5,
        }
    }

    /// Stable SCREAMING_SNAKE name, as surfaced to users and logs.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "BAD_REQUEST",
            Status::Overloaded => "OVERLOADED",
            Status::DeadlineExceeded => "DEADLINE_EXCEEDED",
            Status::NotFound => "NOT_FOUND",
            Status::Internal => "INTERNAL",
        }
    }
}

/// Query plan selector carried in [`RangeRequest`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlanKind {
    /// Bound-Widening Method (the paper's proposal; default).
    #[default]
    Bwm,
    /// Rule-Based Method.
    Rbm,
    /// Instantiate every edited image (ground truth).
    Instantiate,
    /// Bound-interval index lookup (memoized bounds; no rule walk).
    Indexed,
}

impl PlanKind {
    /// Decodes a plan byte.
    pub fn from_u8(b: u8) -> Option<PlanKind> {
        match b {
            0 => Some(PlanKind::Bwm),
            1 => Some(PlanKind::Rbm),
            2 => Some(PlanKind::Instantiate),
            3 => Some(PlanKind::Indexed),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            PlanKind::Bwm => 0,
            PlanKind::Rbm => 1,
            PlanKind::Instantiate => 2,
            PlanKind::Indexed => 3,
        }
    }
}

/// Rule-profile selector carried in [`RangeRequest`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfileKind {
    /// Provably sound bounds (default).
    #[default]
    Conservative,
    /// The literal Table 1 rules from the paper.
    PaperTable1,
}

impl ProfileKind {
    /// Decodes a profile byte.
    pub fn from_u8(b: u8) -> Option<ProfileKind> {
        match b {
            0 => Some(ProfileKind::Conservative),
            1 => Some(ProfileKind::PaperTable1),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            ProfileKind::Conservative => 0,
            ProfileKind::PaperTable1 => 1,
        }
    }
}

/// A parsed color range request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeRequest {
    /// Execution strategy.
    pub plan: PlanKind,
    /// Rule profile for bound computation.
    pub profile: ProfileKind,
    /// Histogram bin the query constrains.
    pub bin: u32,
    /// Lower pixel-fraction bound in `[0, 1]`.
    pub pct_min: f64,
    /// Upper pixel-fraction bound in `[0, 1]`.
    pub pct_max: f64,
}

/// A range query's reply payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeReply {
    /// Matching (or candidate) image ids.
    pub ids: Vec<u64>,
    /// Full BOUNDS computations the query executed.
    pub bounds_computed: u64,
    /// Edited images emitted without applying any rule (base shortcut).
    pub shortcut_emissions: u64,
}

/// A point lookup's reply payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupReply {
    /// 0 = stored conventionally, 1 = stored as an edit sequence.
    pub kind: u8,
    /// Raster width in pixels.
    pub width: u32,
    /// Raster height in pixels.
    pub height: u32,
    /// Total pixel count (histogram mass).
    pub pixels: u64,
    /// The base image this one derives from, for edited images.
    pub base: Option<u64>,
}

/// A stats reply payload (mirrors the storage engine's counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Conventionally stored images.
    pub binary_count: u64,
    /// Images stored as edit sequences.
    pub edited_count: u64,
    /// Blob bytes consumed by binary images.
    pub binary_bytes: u64,
    /// Catalog bytes consumed by encoded edit sequences.
    pub edited_bytes: u64,
    /// Raster cache hits since open.
    pub cache_hits: u64,
    /// Raster cache misses since open.
    pub cache_misses: u64,
}

/// The body of a request, by opcode.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// [`Opcode::Ping`]
    Ping,
    /// [`Opcode::Range`]
    Range(RangeRequest),
    /// [`Opcode::Knn`]
    Knn {
        /// Id of the stored image whose raster seeds the search.
        probe_id: u64,
        /// How many neighbours to return.
        k: u32,
    },
    /// [`Opcode::Lookup`]
    Lookup {
        /// Image id to look up.
        id: u64,
    },
    /// [`Opcode::Stats`]
    Stats,
}

impl RequestBody {
    /// The opcode this body is carried under.
    pub fn opcode(&self) -> Opcode {
        match self {
            RequestBody::Ping => Opcode::Ping,
            RequestBody::Range(_) => Opcode::Range,
            RequestBody::Knn { .. } => Opcode::Knn,
            RequestBody::Lookup { .. } => Opcode::Lookup,
            RequestBody::Stats => Opcode::Stats,
        }
    }
}

/// A fully parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Deadline in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Wire-propagated trace context (protocol v2+; always `None` on v1
    /// connections).
    pub trace: Option<TraceContext>,
    /// The opcode-specific body.
    pub body: RequestBody,
}

// ── Byte-level helpers ─────────────────────────────────────────────────

/// A little cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consumes and returns every remaining byte.
    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the structure was complete.
    Truncated,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Unknown plan / profile / status selector.
    BadSelector(&'static str, u8),
    /// The payload had bytes left over after the structure.
    TrailingBytes,
    /// A numeric field was out of its documented domain.
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated payload"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b}"),
            DecodeError::BadSelector(what, b) => write!(f, "bad {what} selector {b}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after payload"),
            DecodeError::BadValue(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ── Trace-context encode / decode ──────────────────────────────────────

/// Appends the v2 trace-flags byte (and trace id when present).
/// `allow_sampled` distinguishes requests (which carry the sampling bit)
/// from responses (which only echo the id).
fn put_trace(out: &mut Vec<u8>, trace: Option<&TraceContext>, allow_sampled: bool) {
    match trace {
        None => out.push(0),
        Some(ctx) => {
            let mut flags = TRACE_FLAG_PRESENT;
            if allow_sampled && ctx.sampled {
                flags |= TRACE_FLAG_SAMPLED;
            }
            out.push(flags);
            put_u64(out, ctx.trace_id);
        }
    }
}

/// Reads the v2 trace-flags byte (and trace id when present).
fn read_trace(
    r: &mut Reader<'_>,
    allow_sampled: bool,
) -> Result<Option<TraceContext>, DecodeError> {
    let flags = r.u8()?;
    let known = if allow_sampled {
        TRACE_FLAG_PRESENT | TRACE_FLAG_SAMPLED
    } else {
        TRACE_FLAG_PRESENT
    };
    if flags & !known != 0 {
        return Err(DecodeError::BadSelector("trace flags", flags));
    }
    if flags & TRACE_FLAG_PRESENT == 0 {
        if flags & TRACE_FLAG_SAMPLED != 0 {
            // Sampled-but-absent is contradictory; reject rather than guess.
            return Err(DecodeError::BadSelector("trace flags", flags));
        }
        return Ok(None);
    }
    Ok(Some(TraceContext {
        trace_id: r.u64()?,
        sampled: flags & TRACE_FLAG_SAMPLED != 0,
    }))
}

// ── Request encode / decode ────────────────────────────────────────────

/// Encodes a request payload (without the length prefix) for the given
/// negotiated protocol version. Version 1 silently drops the trace context
/// — v1 peers have no field to carry it in.
pub fn encode_request(req: &Request, version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(REQUEST_HEADER_LEN + 32);
    put_u64(&mut out, req.id);
    out.push(req.body.opcode().as_u8());
    put_u32(&mut out, req.deadline_ms);
    if version >= 2 {
        put_trace(&mut out, req.trace.as_ref(), true);
    }
    match &req.body {
        RequestBody::Ping | RequestBody::Stats => {}
        RequestBody::Range(r) => {
            out.push(r.plan.as_u8());
            out.push(r.profile.as_u8());
            put_u32(&mut out, r.bin);
            put_f64(&mut out, r.pct_min);
            put_f64(&mut out, r.pct_max);
        }
        RequestBody::Knn { probe_id, k } => {
            put_u64(&mut out, *probe_id);
            put_u32(&mut out, *k);
        }
        RequestBody::Lookup { id } => {
            put_u64(&mut out, *id);
        }
    }
    out
}

/// Decodes a request payload under the given negotiated protocol version.
/// On failure the caller still learns the request id (when at least 8 bytes
/// arrived) so the error response can be correlated.
pub fn decode_request(payload: &[u8], version: u16) -> Result<Request, (u64, DecodeError)> {
    let id = if payload.len() >= 8 {
        u64::from_le_bytes(payload[..8].try_into().unwrap())
    } else {
        0
    };
    decode_request_inner(payload, version).map_err(|e| (id, e))
}

fn decode_request_inner(payload: &[u8], version: u16) -> Result<Request, DecodeError> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let opcode_byte = r.u8()?;
    let opcode = Opcode::from_u8(opcode_byte).ok_or(DecodeError::UnknownOpcode(opcode_byte))?;
    let deadline_ms = r.u32()?;
    let trace = if version >= 2 {
        read_trace(&mut r, true)?
    } else {
        None
    };
    let body = match opcode {
        Opcode::Ping => RequestBody::Ping,
        Opcode::Stats => RequestBody::Stats,
        Opcode::Range => {
            let plan_byte = r.u8()?;
            let plan =
                PlanKind::from_u8(plan_byte).ok_or(DecodeError::BadSelector("plan", plan_byte))?;
            let profile_byte = r.u8()?;
            let profile = ProfileKind::from_u8(profile_byte)
                .ok_or(DecodeError::BadSelector("profile", profile_byte))?;
            let bin = r.u32()?;
            let pct_min = r.f64()?;
            let pct_max = r.f64()?;
            let in_unit = |v: f64| (0.0..=1.0).contains(&v);
            if !in_unit(pct_min) || !in_unit(pct_max) || pct_min > pct_max {
                return Err(DecodeError::BadValue("percentage range"));
            }
            RequestBody::Range(RangeRequest {
                plan,
                profile,
                bin,
                pct_min,
                pct_max,
            })
        }
        Opcode::Knn => RequestBody::Knn {
            probe_id: r.u64()?,
            k: r.u32()?,
        },
        Opcode::Lookup => RequestBody::Lookup { id: r.u64()? },
    };
    r.finish()?;
    Ok(Request {
        id,
        deadline_ms,
        trace,
        body,
    })
}

// ── Response encode / decode ───────────────────────────────────────────

/// The body of a successful response, by opcode.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplyBody {
    /// [`Opcode::Ping`]
    Pong,
    /// [`Opcode::Range`]
    Range(RangeReply),
    /// [`Opcode::Knn`] — `(id, distance)` pairs ascending by distance.
    Knn(Vec<(u64, f64)>),
    /// [`Opcode::Lookup`]
    Lookup(LookupReply),
    /// [`Opcode::Stats`]
    Stats(StatsReply),
}

/// A parsed response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Status OK with an opcode-specific body.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Trace id the server recorded this request under (v2+); fetchable
        /// from the exposition server's `/traces/<id>` when kept.
        trace_id: Option<u64>,
        /// The decoded body.
        body: ReplyBody,
    },
    /// Any non-OK status with its UTF-8 message.
    Err {
        /// Echoed request id (0 when the request could not be parsed far
        /// enough to learn it).
        id: u64,
        /// Trace id the server recorded this request under (v2+).
        trace_id: Option<u64>,
        /// The structured error class.
        status: Status,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed trace id, whatever the status.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Response::Ok { trace_id, .. } | Response::Err { trace_id, .. } => *trace_id,
        }
    }
}

/// Encodes a success response payload (without the length prefix) for the
/// given negotiated protocol version; `trace_id` is echoed on v2+ and
/// dropped on v1.
pub fn encode_ok(id: u64, trace_id: Option<u64>, body: &ReplyBody, version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(RESPONSE_HEADER_LEN + 32);
    put_u64(&mut out, id);
    out.push(Status::Ok.as_u8());
    if version >= 2 {
        let ctx = trace_id.map(|trace_id| TraceContext {
            trace_id,
            sampled: false,
        });
        put_trace(&mut out, ctx.as_ref(), false);
    }
    match body {
        ReplyBody::Pong => {}
        ReplyBody::Range(r) => {
            put_u32(&mut out, r.ids.len() as u32);
            for &iid in &r.ids {
                put_u64(&mut out, iid);
            }
            put_u64(&mut out, r.bounds_computed);
            put_u64(&mut out, r.shortcut_emissions);
        }
        ReplyBody::Knn(pairs) => {
            put_u32(&mut out, pairs.len() as u32);
            for &(iid, d) in pairs {
                put_u64(&mut out, iid);
                put_f64(&mut out, d);
            }
        }
        ReplyBody::Lookup(l) => {
            out.push(l.kind);
            put_u32(&mut out, l.width);
            put_u32(&mut out, l.height);
            put_u64(&mut out, l.pixels);
            out.push(u8::from(l.base.is_some()));
            put_u64(&mut out, l.base.unwrap_or(0));
        }
        ReplyBody::Stats(s) => {
            for v in [
                s.binary_count,
                s.edited_count,
                s.binary_bytes,
                s.edited_bytes,
                s.cache_hits,
                s.cache_misses,
            ] {
                put_u64(&mut out, v);
            }
        }
    }
    out
}

/// Encodes an error response payload (without the length prefix) for the
/// given negotiated protocol version; `trace_id` is echoed on v2+ and
/// dropped on v1.
pub fn encode_err(
    id: u64,
    trace_id: Option<u64>,
    status: Status,
    message: &str,
    version: u16,
) -> Vec<u8> {
    debug_assert_ne!(status, Status::Ok);
    let mut out = Vec::with_capacity(RESPONSE_HEADER_LEN + message.len());
    put_u64(&mut out, id);
    out.push(status.as_u8());
    if version >= 2 {
        let ctx = trace_id.map(|trace_id| TraceContext {
            trace_id,
            sampled: false,
        });
        put_trace(&mut out, ctx.as_ref(), false);
    }
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes a response payload under the given negotiated protocol version.
/// `opcode` disambiguates the OK body layout.
pub fn decode_response(
    payload: &[u8],
    opcode: Opcode,
    version: u16,
) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let status_byte = r.u8()?;
    let status =
        Status::from_u8(status_byte).ok_or(DecodeError::BadSelector("status", status_byte))?;
    let trace_id = if version >= 2 {
        read_trace(&mut r, false)?.map(|ctx| ctx.trace_id)
    } else {
        None
    };
    if status != Status::Ok {
        let message = String::from_utf8_lossy(r.rest()).into_owned();
        return Ok(Response::Err {
            id,
            trace_id,
            status,
            message,
        });
    }
    let body = match opcode {
        Opcode::Ping => ReplyBody::Pong,
        Opcode::Range => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                ids.push(r.u64()?);
            }
            ReplyBody::Range(RangeReply {
                ids,
                bounds_computed: r.u64()?,
                shortcut_emissions: r.u64()?,
            })
        }
        Opcode::Knn => {
            let n = r.u32()? as usize;
            let mut pairs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let iid = r.u64()?;
                let d = r.f64()?;
                pairs.push((iid, d));
            }
            ReplyBody::Knn(pairs)
        }
        Opcode::Lookup => {
            let kind = r.u8()?;
            let width = r.u32()?;
            let height = r.u32()?;
            let pixels = r.u64()?;
            let has_base = r.u8()? != 0;
            let base_raw = r.u64()?;
            ReplyBody::Lookup(LookupReply {
                kind,
                width,
                height,
                pixels,
                base: has_base.then_some(base_raw),
            })
        }
        Opcode::Stats => ReplyBody::Stats(StatsReply {
            binary_count: r.u64()?,
            edited_count: r.u64()?,
            binary_bytes: r.u64()?,
            edited_bytes: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
        }),
    };
    r.finish()?;
    Ok(Response::Ok { id, trace_id, body })
}

// ── Framed stream I/O ──────────────────────────────────────────────────

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame, rejecting payloads above `max_len`.
///
/// # Errors
/// `InvalidData` for oversized frames, `UnexpectedEof` at clean stream end.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Client side of the handshake: sends magic + version, checks the reply.
/// Returns the version this connection speaks (always [`PROTOCOL_VERSION`]
/// on success; the server adapts to us, never the reverse).
pub fn client_handshake(stream: &mut (impl Read + Write)) -> std::io::Result<u16> {
    client_handshake_with_version(stream, PROTOCOL_VERSION)
}

/// Client handshake announcing a specific `version` (used by compatibility
/// tests and by clients deliberately speaking an older dialect).
pub fn client_handshake_with_version(
    stream: &mut (impl Read + Write),
    version: u16,
) -> std::io::Result<u16> {
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&version.to_le_bytes());
    stream.write_all(&hello)?;
    let mut reply = [0u8; 7];
    stream.read_exact(&mut reply)?;
    if reply[..4] != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "server did not answer with MMDB magic",
        ));
    }
    let server_version = u16::from_le_bytes(reply[4..6].try_into().unwrap());
    if reply[6] != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("server rejected protocol version {version} (it speaks {server_version})"),
        ));
    }
    Ok(version)
}

/// Server side of the handshake: checks magic + version, answers. Returns
/// the version this connection must speak (the client's), or `None` when
/// the connection must be closed (bad magic or unsupported version).
pub fn server_handshake(stream: &mut (impl Read + Write)) -> std::io::Result<Option<u16>> {
    let mut hello = [0u8; 6];
    stream.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        // Not our protocol — close without a reply (it could be HTTP or
        // garbage; echoing bytes at it helps nobody).
        return Ok(None);
    }
    let client_version = u16::from_le_bytes(hello[4..6].try_into().unwrap());
    let ok = (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&client_version);
    let mut reply = [0u8; 7];
    reply[..4].copy_from_slice(&MAGIC);
    reply[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    reply[6] = u8::from(!ok);
    stream.write_all(&reply)?;
    Ok(ok.then_some(client_version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(body: RequestBody) {
        // v2, no trace context.
        let req = Request {
            id: 42,
            deadline_ms: 250,
            trace: None,
            body,
        };
        let bytes = encode_request(&req, PROTOCOL_VERSION);
        let back = decode_request(&bytes, PROTOCOL_VERSION).unwrap();
        assert_eq!(back, req);

        // v2, traced + sampled.
        let traced = Request {
            trace: Some(TraceContext {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                sampled: true,
            }),
            ..req.clone()
        };
        let bytes = encode_request(&traced, PROTOCOL_VERSION);
        let back = decode_request(&bytes, PROTOCOL_VERSION).unwrap();
        assert_eq!(back, traced);

        // v1 drops the trace context but carries everything else.
        let bytes = encode_request(&traced, 1);
        let back = decode_request(&bytes, 1).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(RequestBody::Ping);
        roundtrip_request(RequestBody::Stats);
        roundtrip_request(RequestBody::Range(RangeRequest {
            plan: PlanKind::Rbm,
            profile: ProfileKind::PaperTable1,
            bin: 12,
            pct_min: 0.25,
            pct_max: 0.75,
        }));
        roundtrip_request(RequestBody::Range(RangeRequest {
            plan: PlanKind::Indexed,
            profile: ProfileKind::Conservative,
            bin: 3,
            pct_min: 0.1,
            pct_max: 0.9,
        }));
        roundtrip_request(RequestBody::Knn { probe_id: 9, k: 5 });
        roundtrip_request(RequestBody::Lookup { id: 7 });
    }

    #[test]
    fn response_roundtrips() {
        let cases: Vec<(Opcode, ReplyBody)> = vec![
            (Opcode::Ping, ReplyBody::Pong),
            (
                Opcode::Range,
                ReplyBody::Range(RangeReply {
                    ids: vec![1, 5, 9],
                    bounds_computed: 12,
                    shortcut_emissions: 3,
                }),
            ),
            (Opcode::Knn, ReplyBody::Knn(vec![(4, 0.5), (2, 1.25)])),
            (
                Opcode::Lookup,
                ReplyBody::Lookup(LookupReply {
                    kind: 1,
                    width: 64,
                    height: 48,
                    pixels: 3072,
                    base: Some(3),
                }),
            ),
            (
                Opcode::Stats,
                ReplyBody::Stats(StatsReply {
                    binary_count: 2,
                    edited_count: 6,
                    binary_bytes: 4096,
                    edited_bytes: 128,
                    cache_hits: 10,
                    cache_misses: 1,
                }),
            ),
        ];
        for (opcode, body) in cases {
            // v2 with a trace echo.
            let bytes = encode_ok(7, Some(0x1234), &body, PROTOCOL_VERSION);
            match decode_response(&bytes, opcode, PROTOCOL_VERSION).unwrap() {
                Response::Ok {
                    id,
                    trace_id,
                    body: back,
                } => {
                    assert_eq!(id, 7);
                    assert_eq!(trace_id, Some(0x1234));
                    assert_eq!(back, body);
                }
                other => panic!("expected Ok, got {other:?}"),
            }
            // v1 carries no trace echo.
            let bytes = encode_ok(7, Some(0x1234), &body, 1);
            match decode_response(&bytes, opcode, 1).unwrap() {
                Response::Ok { trace_id, .. } => assert_eq!(trace_id, None),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_response_roundtrips() {
        for version in [1u16, PROTOCOL_VERSION] {
            let bytes = encode_err(
                3,
                Some(0xFEED),
                Status::Overloaded,
                "queue full (depth 64)",
                version,
            );
            match decode_response(&bytes, Opcode::Range, version).unwrap() {
                Response::Err {
                    id,
                    trace_id,
                    status,
                    message,
                } => {
                    assert_eq!(id, 3);
                    assert_eq!(trace_id, (version >= 2).then_some(0xFEED));
                    assert_eq!(status, Status::Overloaded);
                    assert_eq!(message, "queue full (depth 64)");
                }
                other => panic!("expected Err, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_trace_flags_are_rejected() {
        // Unknown flag bit.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(Opcode::Ping.as_u8());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(0x4);
        assert_eq!(
            decode_request(&payload, PROTOCOL_VERSION).unwrap_err().1,
            DecodeError::BadSelector("trace flags", 0x4)
        );
        // Sampled without a trace id is contradictory.
        let last = payload.len() - 1;
        payload[last] = 0x2;
        assert_eq!(
            decode_request(&payload, PROTOCOL_VERSION).unwrap_err().1,
            DecodeError::BadSelector("trace flags", 0x2)
        );
        // The sampled bit is request-only; responses reject it.
        let mut resp = Vec::new();
        resp.extend_from_slice(&1u64.to_le_bytes());
        resp.push(Status::Ok.as_u8());
        resp.push(0x3);
        resp.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(
            decode_response(&resp, Opcode::Ping, PROTOCOL_VERSION).unwrap_err(),
            DecodeError::BadSelector("trace flags", 0x3)
        );
    }

    #[test]
    fn truncated_and_malformed_payloads_are_rejected() {
        // Too short for even the id.
        assert_eq!(
            decode_request(&[1, 2, 3], PROTOCOL_VERSION).unwrap_err().1,
            DecodeError::Truncated
        );
        // Unknown opcode: id + opcode 99 + deadline.
        let mut bad = Vec::new();
        bad.extend_from_slice(&5u64.to_le_bytes());
        bad.push(99);
        bad.extend_from_slice(&0u32.to_le_bytes());
        let (id, err) = decode_request(&bad, PROTOCOL_VERSION).unwrap_err();
        assert_eq!(id, 5);
        assert_eq!(err, DecodeError::UnknownOpcode(99));
        // A range request cut off mid-f64.
        let ok = encode_request(
            &Request {
                id: 8,
                deadline_ms: 0,
                trace: None,
                body: RequestBody::Range(RangeRequest {
                    plan: PlanKind::Bwm,
                    profile: ProfileKind::Conservative,
                    bin: 1,
                    pct_min: 0.0,
                    pct_max: 1.0,
                }),
            },
            PROTOCOL_VERSION,
        );
        let (id, err) = decode_request(&ok[..ok.len() - 3], PROTOCOL_VERSION).unwrap_err();
        assert_eq!(id, 8);
        assert_eq!(err, DecodeError::Truncated);
        // Trailing garbage.
        let mut long = encode_request(
            &Request {
                id: 9,
                deadline_ms: 0,
                trace: None,
                body: RequestBody::Ping,
            },
            PROTOCOL_VERSION,
        );
        long.push(0xFF);
        assert_eq!(
            decode_request(&long, PROTOCOL_VERSION).unwrap_err().1,
            DecodeError::TrailingBytes
        );
        // NaN percentage (hand-built v1 layout, decoded as v1).
        let mut nan = Vec::new();
        nan.extend_from_slice(&1u64.to_le_bytes());
        nan.push(Opcode::Range.as_u8());
        nan.extend_from_slice(&0u32.to_le_bytes());
        nan.push(0);
        nan.push(0);
        nan.extend_from_slice(&0u32.to_le_bytes());
        nan.extend_from_slice(&f64::NAN.to_le_bytes());
        nan.extend_from_slice(&1.0f64.to_le_bytes());
        assert_eq!(
            decode_request(&nan, 1).unwrap_err().1,
            DecodeError::BadValue("percentage range")
        );
    }

    #[test]
    fn oversized_frame_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let payload = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn handshake_accepts_matching_version() {
        // Use an in-memory duplex made of two vecs: simulate with a
        // loopback TcpStream-free pair via cursor composition.
        struct Duplex {
            input: std::io::Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        // Client hello captured…
        let mut client = Duplex {
            input: std::io::Cursor::new(Vec::new()),
            output: Vec::new(),
        };
        // (pre-load the expected server reply)
        let mut reply = Vec::new();
        reply.extend_from_slice(&MAGIC);
        reply.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        reply.push(0);
        client.input = std::io::Cursor::new(reply);
        assert_eq!(client_handshake(&mut client).unwrap(), PROTOCOL_VERSION);

        // …and fed to the server side.
        let mut server = Duplex {
            input: std::io::Cursor::new(client.output.clone()),
            output: Vec::new(),
        };
        assert_eq!(
            server_handshake(&mut server).unwrap(),
            Some(PROTOCOL_VERSION)
        );

        // An old v1 client is still accepted, and the connection speaks v1.
        let mut v1_hello = Vec::new();
        v1_hello.extend_from_slice(&MAGIC);
        v1_hello.extend_from_slice(&MIN_PROTOCOL_VERSION.to_le_bytes());
        let mut server = Duplex {
            input: std::io::Cursor::new(v1_hello),
            output: Vec::new(),
        };
        assert_eq!(
            server_handshake(&mut server).unwrap(),
            Some(MIN_PROTOCOL_VERSION)
        );
        assert_eq!(server.output[6], 0, "v1 accepted");

        // Wrong version is refused.
        let mut bad_hello = Vec::new();
        bad_hello.extend_from_slice(&MAGIC);
        bad_hello.extend_from_slice(&999u16.to_le_bytes());
        let mut server = Duplex {
            input: std::io::Cursor::new(bad_hello),
            output: Vec::new(),
        };
        assert_eq!(server_handshake(&mut server).unwrap(), None);
        assert_eq!(server.output[6], 1, "rejection byte set");
    }
}

//! A blocking client for the query service. One request in flight at a
//! time per client; spin up one client per thread for concurrency (that is
//! exactly what the load generator does).

use crate::protocol::{
    client_handshake, decode_response, encode_request, read_frame, write_frame, LookupReply,
    RangeReply, RangeRequest, ReplyBody, Request, RequestBody, Response, StatsReply, Status,
    TraceContext, DEFAULT_MAX_FRAME_LEN,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or timeout).
    Io(std::io::Error),
    /// The server broke the protocol (bad frame, wrong id, bad handshake).
    Protocol(String),
    /// The server answered with a structured error status.
    Server {
        /// The structured error class (`OVERLOADED`, `DEADLINE_EXCEEDED`, …).
        status: Status,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { status, message } => {
                write!(f, "server error {}: {message}", status.name())
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server status, when this is a server-side error.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Server { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// A connected, handshaken client.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_len: u32,
    /// Negotiated protocol version for this connection.
    version: u16,
    /// Trace id echoed by the server on the most recent call (success or
    /// structured error); `None` before any call, on v1 connections, or
    /// when the server traced nothing.
    last_trace_id: Option<u64>,
}

impl Client {
    /// Connects, performs the version handshake, and returns a ready client.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let version = client_handshake(&mut stream)
            .map_err(|e| ClientError::Protocol(format!("handshake failed: {e}")))?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            version,
            last_trace_id: None,
        })
    }

    /// Overrides the 30s default read timeout (e.g. for huge scans).
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        Ok(())
    }

    /// The protocol version negotiated at connect time.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The trace id the server echoed on the most recent call; fetch the
    /// matching span tree from the exposition server's `/traces/<id>` when
    /// the tail sampler kept it.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.last_trace_id
    }

    fn call(&mut self, body: RequestBody, deadline_ms: u32) -> Result<ReplyBody, ClientError> {
        self.call_traced(body, deadline_ms, None)
    }

    fn call_traced(
        &mut self,
        body: RequestBody,
        deadline_ms: u32,
        trace: Option<TraceContext>,
    ) -> Result<ReplyBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let opcode = body.opcode();
        let request = Request {
            id,
            deadline_ms,
            trace,
            body,
        };
        write_frame(&mut self.stream, &encode_request(&request, self.version))?;
        let payload = read_frame(&mut self.stream, self.max_frame_len)?;
        let response = decode_response(&payload, opcode, self.version)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.last_trace_id = response.trace_id();
        match response {
            Response::Ok { id: rid, body, .. } => {
                if rid != id {
                    return Err(ClientError::Protocol(format!(
                        "response id {rid} does not match request id {id}"
                    )));
                }
                Ok(body)
            }
            Response::Err {
                id: rid,
                status,
                message,
                ..
            } => {
                // id 0 is the server's "could not even parse the id" marker.
                if rid != id && rid != 0 {
                    return Err(ClientError::Protocol(format!(
                        "error response id {rid} does not match request id {id}"
                    )));
                }
                Err(ClientError::Server { status, message })
            }
        }
    }

    /// Liveness probe (answered inline by the server, even under overload).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(RequestBody::Ping, 0)? {
            ReplyBody::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Color range query without a deadline.
    pub fn range(&mut self, req: RangeRequest) -> Result<RangeReply, ClientError> {
        self.range_with_deadline(req, 0)
    }

    /// Color range query with a deadline in milliseconds (0 = none); the
    /// server refuses to execute it once the deadline has passed in queue.
    pub fn range_with_deadline(
        &mut self,
        req: RangeRequest,
        deadline_ms: u32,
    ) -> Result<RangeReply, ClientError> {
        match self.call(RequestBody::Range(req), deadline_ms)? {
            ReplyBody::Range(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected range reply, got {other:?}"
            ))),
        }
    }

    /// Color range query carrying an explicit wire trace context. Returns
    /// the reply plus the trace id the server recorded the request under
    /// (normally the one sent; `None` only on v1 connections). Mark the
    /// context `sampled` to force the server's tail sampler to keep the
    /// trace regardless of latency.
    pub fn range_traced(
        &mut self,
        req: RangeRequest,
        deadline_ms: u32,
        trace: TraceContext,
    ) -> Result<(RangeReply, Option<u64>), ClientError> {
        match self.call_traced(RequestBody::Range(req), deadline_ms, Some(trace))? {
            ReplyBody::Range(r) => Ok((r, self.last_trace_id)),
            other => Err(ClientError::Protocol(format!(
                "expected range reply, got {other:?}"
            ))),
        }
    }

    /// k-NN seeded by a stored image.
    pub fn knn(&mut self, probe_id: u64, k: u32) -> Result<Vec<(u64, f64)>, ClientError> {
        match self.call(RequestBody::Knn { probe_id, k }, 0)? {
            ReplyBody::Knn(pairs) => Ok(pairs),
            other => Err(ClientError::Protocol(format!(
                "expected knn reply, got {other:?}"
            ))),
        }
    }

    /// Point lookup of one image's catalog record.
    pub fn lookup(&mut self, id: u64) -> Result<LookupReply, ClientError> {
        match self.call(RequestBody::Lookup { id }, 0)? {
            ReplyBody::Lookup(l) => Ok(l),
            other => Err(ClientError::Protocol(format!(
                "expected lookup reply, got {other:?}"
            ))),
        }
    }

    /// Storage statistics.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(RequestBody::Stats, 0)? {
            ReplyBody::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }
}

//! A bounded multi-producer/multi-consumer submission queue with
//! non-blocking admission: [`BoundedQueue::try_push`] never waits — when the
//! queue is at capacity the item is handed straight back so the caller can
//! answer `OVERLOADED` instead of queueing unboundedly.
//!
//! Built on the `mmdb_conc::sync` facade (std `Mutex`/`Condvar` in normal
//! builds, the model-checking scheduler under `mmdb-conc`'s `model`
//! feature); consumers block in [`BoundedQueue::pop`] until an item arrives
//! or the queue is closed *and* drained — which is exactly the
//! graceful-shutdown contract: close, let the workers finish the backlog,
//! then they exit. The contract "every accepted item is popped exactly
//! once before drain completes" is model-checked in
//! `crates/conc/tests/model_queue.rs`.

use mmdb_conc::sync::{Condvar, Mutex};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Shared by `Arc`; all methods take `&self`.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `capacity` items already.
    Full,
    /// The queue was closed for new submissions.
    Closed,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued items.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking submission. Returns the item when the queue is full or
    /// closed — admission control, never backpressure-by-blocking.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock();
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is left
    /// and then observe `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_control_rejects_when_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err, PushError::Full);
        assert_eq!(q.len(), 2);
        // A pop frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().1, PushError::Full);
    }
}

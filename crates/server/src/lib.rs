#![warn(missing_docs)]

//! # mmdb-server — the network query service
//!
//! Turns the in-process retrieval engine into a query *service*: a
//! dependency-free length-prefixed binary [`protocol`], a
//! [`QueryServer`] that dispatches connections onto a fixed worker pool
//! through a **bounded submission queue with admission control** (overload
//! returns a structured `OVERLOADED` error instead of queueing
//! unboundedly), **per-request deadlines** (`DEADLINE_EXCEEDED` without
//! executing), and **graceful shutdown** (stop accepting, drain in-flight,
//! close); plus a blocking [`Client`] used by tests and the load generator.
//!
//! The crate sits *below* the `mmdbms` facade: it talks to the database
//! through the [`QueryBackend`] trait, which the facade implements for
//! `MultimediaDatabase`. That keeps the dependency graph acyclic while
//! letting `mmdbctl serve-queries` embed the server.
//!
//! ```no_run
//! use mmdb_server::{Client, QueryServer, ServerConfig};
//! use mmdb_server::protocol::{PlanKind, ProfileKind, RangeRequest};
//! # fn backend() -> std::sync::Arc<dyn mmdb_server::QueryBackend> { unimplemented!() }
//!
//! let server = QueryServer::bind("127.0.0.1:0", backend(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.range(RangeRequest {
//!     plan: PlanKind::Bwm,
//!     profile: ProfileKind::Conservative,
//!     bin: 12,
//!     pct_min: 0.25,
//!     pct_max: 1.0,
//! }).unwrap();
//! println!("{} candidate(s)", reply.ids.len());
//! server.shutdown();
//! ```

mod backend;
mod client;
pub mod protocol;
mod queue;
mod server;
mod shutdown;

pub use backend::{BackendError, QueryBackend};
pub use client::{Client, ClientError};
pub use protocol::{
    LookupReply, Opcode, PlanKind, ProfileKind, RangeReply, RangeRequest, StatsReply, Status,
    TraceContext,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{register_metrics, DrainStats, QueryServer, ServerConfig, TraceMode};
pub use shutdown::ShutdownSignal;

//! The query server: a `TcpListener` accept loop, one reader/writer thread
//! pair per connection, and a fixed worker pool fed through a bounded
//! submission queue.
//!
//! ## Request lifecycle
//!
//! 1. The connection reader parses a frame and decodes the request.
//!    Malformed input is answered with a structured `BAD_REQUEST` (and, for
//!    unframeable streams — oversized length prefixes — a clean disconnect).
//! 2. `Ping` is answered inline by the reader, so liveness probes succeed
//!    even when the pool is saturated.
//! 3. Everything else is submitted to the bounded queue. A full queue means
//!    the request is *refused immediately* with `OVERLOADED` — admission
//!    control instead of an unbounded backlog.
//! 4. A worker dequeues the job. If its deadline expired while queued it is
//!    answered `DEADLINE_EXCEEDED` without executing; otherwise the backend
//!    runs it and the reply is routed back through the connection's writer
//!    thread (request ids correlate pipelined responses).
//!
//! ## Graceful shutdown
//!
//! [`QueryServer::shutdown`] stops the accept loop, lets connection readers
//! notice the stop flag (they poll it every ~100ms between reads), waits
//! for writers to flush every in-flight response, closes the queue so the
//! workers drain the backlog and exit, and joins all threads. No accepted
//! request is dropped.

use crate::backend::QueryBackend;
use crate::protocol::{
    decode_request, encode_err, encode_ok, Opcode, PlanKind, ProfileKind, ReplyBody, Request,
    RequestBody, Status, TraceContext, DEFAULT_MAX_FRAME_LEN,
};
use crate::queue::{BoundedQueue, PushError};
use mmdb_telemetry::{counter, gauge, histogram, EventKind, KeepReason, QueryTrace, StoredTrace};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
// Stop-flag atomics go through the mmdb-conc facade so the shutdown
// handshake can be exercised under the model-checking scheduler; `mpsc`
// and the per-connection `Condvar`/`Mutex` pair stay on std (they guard
// OS-level I/O paths the model never drives).
use mmdb_conc::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How often blocked reads re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// How much request tracing the server performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No traces are built or stored; trace ids from clients are still
    /// echoed so correlation never silently breaks.
    Off,
    /// Every request is traced cheaply; the store keeps only head-sampled
    /// requests, errors, and the slow tail (default).
    #[default]
    Tail,
    /// Every trace is kept (100% retention) — measurement and debugging.
    Full,
}

impl TraceMode {
    /// Parses the CLI spelling (`off` / `tail` / `full`).
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "tail" => Some(TraceMode::Tail),
            "full" => Some(TraceMode::Full),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Tail => "tail",
            TraceMode::Full => "full",
        }
    }
}

/// Tuning knobs for [`QueryServer::bind`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (min 1).
    pub workers: usize,
    /// Bounded submission-queue depth; requests beyond it are refused with
    /// `OVERLOADED` (min 1).
    pub queue_depth: usize,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// Request-tracing mode (default: tail sampling).
    pub trace_mode: TraceMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8)),
            queue_depth: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            trace_mode: TraceMode::default(),
        }
    }
}

/// Counters reported by [`QueryServer::shutdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Requests still queued when the drain began (all of them completed
    /// before shutdown returned).
    pub queued_at_stop: usize,
}

/// Tracks live connections so shutdown can wait for their writers to flush.
#[derive(Default)]
struct ConnGate {
    active: Mutex<usize>,
    idle: Condvar,
}

impl ConnGate {
    fn enter(self: &Arc<Self>) -> ConnGuard {
        *self.active.lock().expect("gate lock poisoned") += 1;
        ConnGuard(Arc::clone(self))
    }

    /// Waits until no connection is active, up to `timeout`. Returns whether
    /// it drained fully.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let mut active = self.active.lock().expect("gate lock poisoned");
        let deadline = Instant::now() + timeout;
        while *active > 0 {
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, result) = self
                .idle
                .wait_timeout(active, remaining)
                .expect("gate lock poisoned");
            active = guard;
            if result.timed_out() {
                return *active == 0;
            }
        }
        true
    }
}

struct ConnGuard(Arc<ConnGate>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().expect("gate lock poisoned");
        *active -= 1;
        if *active == 0 {
            self.0.idle.notify_all();
        }
    }
}

/// One queued unit of work. `Ping` never becomes a job.
struct Job {
    request: Request,
    /// Negotiated protocol version of the originating connection; replies
    /// must be encoded in the same dialect.
    version: u16,
    accepted_at: Instant,
    reply: mpsc::Sender<Vec<u8>>,
}

/// A running query server; [`QueryServer::shutdown`] (or drop) drains it.
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Job>>,
    gate: Arc<ConnGate>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn QueryBackend>,
        config: ServerConfig,
    ) -> std::io::Result<QueryServer> {
        register_metrics();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let backend = Arc::clone(&backend);
                let trace_mode = config.trace_mode;
                std::thread::Builder::new()
                    .name(format!("mmdb-server-worker-{i}"))
                    .spawn(move || worker_loop(&queue, backend.as_ref(), trace_mode))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let gate = Arc::new(ConnGate::default());
        let accept_stop = Arc::clone(&stop);
        let accept_queue = Arc::clone(&queue);
        let accept_gate = Arc::clone(&gate);
        let accept_handle = std::thread::Builder::new()
            .name("mmdb-server-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let guard = accept_gate.enter();
                    let stop = Arc::clone(&accept_stop);
                    let queue = Arc::clone(&accept_queue);
                    let spawned = std::thread::Builder::new()
                        .name("mmdb-server-conn".into())
                        .spawn(move || serve_connection(stream, &stop, &queue, config, guard));
                    // Thread exhaustion: refuse the connection rather than
                    // crash the accept loop.
                    drop(spawned);
                }
            })?;

        Ok(QueryServer {
            addr: local,
            stop,
            queue,
            gate,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, close.
    pub fn shutdown(mut self) -> DrainStats {
        self.stop_and_drain()
    }

    fn stop_and_drain(&mut self) -> DrainStats {
        let Some(accept_handle) = self.accept_handle.take() else {
            return DrainStats::default();
        };
        let queued_at_stop = self.queue.len();
        if mmdb_telemetry::instrumentation_enabled() {
            mmdb_telemetry::recorder().record(
                EventKind::ServerDrain,
                "phase=begin",
                &[("queued", queued_at_stop as u64)],
            );
        }
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a self-connection wakes it.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on all
        // platforms, so aim the wake-up at loopback on the bound port.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(2));
        let _ = accept_handle.join();
        // Connection readers exit within one STOP_POLL; each writer exits
        // once every in-flight response for its connection (the queue drains
        // because the workers are still running) has been delivered. Only
        // then is it safe to close the queue and retire the pool.
        self.gate.wait_idle(Duration::from_secs(10));
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if mmdb_telemetry::instrumentation_enabled() {
            mmdb_telemetry::recorder().record(EventKind::ServerDrain, "phase=complete", &[]);
        }
        DrainStats { queued_at_stop }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop_and_drain();
        }
    }
}

/// Eagerly registers every `mmdb_server_*` series so exposition shows the
/// full schema from process start.
pub fn register_metrics() {
    for opcode in [
        Opcode::Ping,
        Opcode::Range,
        Opcode::Knn,
        Opcode::Lookup,
        Opcode::Stats,
    ] {
        let _ = requests_counter(opcode);
        let _ = errors_counter(opcode);
        let _ = latency_histogram(opcode);
        let _ = execute_histogram(opcode);
    }
    let _ = counter!("mmdb_server_connections_total");
    let _ = counter!("mmdb_server_overloaded_total");
    let _ = counter!("mmdb_server_deadline_exceeded_total");
    let _ = counter!("mmdb_server_malformed_total");
    let _ = counter!("mmdb_server_backend_panics_total");
    let _ = gauge!("mmdb_server_queue_depth");
    let _ = histogram!("mmdb_server_queue_wait_seconds");
    let _ = counter!("mmdb_trace_dropped_total");
    let _ = gauge!("mmdb_trace_store_entries");
    for reason in [
        KeepReason::Forced,
        KeepReason::Sampled,
        KeepReason::Error,
        KeepReason::Slow,
    ] {
        let _ = mmdb_telemetry::global().counter(&format!(
            "mmdb_trace_kept_total{{reason=\"{}\"}}",
            reason.as_str()
        ));
    }
}

/// Per-opcode non-OK response counter — the error-event source the SLO
/// engine's `err<x%` objectives read.
fn errors_counter(op: Opcode) -> &'static mmdb_telemetry::Counter {
    match op {
        Opcode::Ping => counter!(r#"mmdb_server_errors_total{opcode="ping"}"#),
        Opcode::Range => counter!(r#"mmdb_server_errors_total{opcode="range"}"#),
        Opcode::Knn => counter!(r#"mmdb_server_errors_total{opcode="knn"}"#),
        Opcode::Lookup => counter!(r#"mmdb_server_errors_total{opcode="lookup"}"#),
        Opcode::Stats => counter!(r#"mmdb_server_errors_total{opcode="stats"}"#),
    }
}

/// Records refused (never-executed) range demand in the heat table. The
/// executed path records from the query executor itself; this keeps the
/// worker loop's refusals — demand the backend never saw — visible to
/// heat ranking without double-counting completed queries.
fn record_refused_heat(body: &RequestBody) {
    if let RequestBody::Range(req) = body {
        let plan = match req.plan {
            PlanKind::Instantiate => 0,
            PlanKind::Rbm => 1,
            PlanKind::Bwm => 2,
            PlanKind::Indexed => 3,
        };
        let profile = match req.profile {
            ProfileKind::Conservative => 0,
            ProfileKind::PaperTable1 => 1,
        };
        mmdb_telemetry::heat().record(req.bin, plan, profile);
    }
}

fn requests_counter(op: Opcode) -> &'static mmdb_telemetry::Counter {
    match op {
        Opcode::Ping => counter!(r#"mmdb_server_requests_total{opcode="ping"}"#),
        Opcode::Range => counter!(r#"mmdb_server_requests_total{opcode="range"}"#),
        Opcode::Knn => counter!(r#"mmdb_server_requests_total{opcode="knn"}"#),
        Opcode::Lookup => counter!(r#"mmdb_server_requests_total{opcode="lookup"}"#),
        Opcode::Stats => counter!(r#"mmdb_server_requests_total{opcode="stats"}"#),
    }
}

fn latency_histogram(op: Opcode) -> &'static mmdb_telemetry::Histogram {
    match op {
        Opcode::Ping => histogram!(r#"mmdb_server_request_latency_seconds{opcode="ping"}"#),
        Opcode::Range => histogram!(r#"mmdb_server_request_latency_seconds{opcode="range"}"#),
        Opcode::Knn => histogram!(r#"mmdb_server_request_latency_seconds{opcode="knn"}"#),
        Opcode::Lookup => histogram!(r#"mmdb_server_request_latency_seconds{opcode="lookup"}"#),
        Opcode::Stats => histogram!(r#"mmdb_server_request_latency_seconds{opcode="stats"}"#),
    }
}

/// Pure backend-execution time, excluding queue wait — together with
/// `mmdb_server_queue_wait_seconds` this decomposes request latency, so
/// "slow because queued" and "slow because BOUNDS" are separable from
/// metrics alone (traces give the per-request version of the same split).
fn execute_histogram(op: Opcode) -> &'static mmdb_telemetry::Histogram {
    match op {
        Opcode::Ping => histogram!(r#"mmdb_server_execute_seconds{opcode="ping"}"#),
        Opcode::Range => histogram!(r#"mmdb_server_execute_seconds{opcode="range"}"#),
        Opcode::Knn => histogram!(r#"mmdb_server_execute_seconds{opcode="knn"}"#),
        Opcode::Lookup => histogram!(r#"mmdb_server_execute_seconds{opcode="lookup"}"#),
        Opcode::Stats => histogram!(r#"mmdb_server_execute_seconds{opcode="stats"}"#),
    }
}

/// What a stop-aware read produced.
enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean end of stream (or stop flag raised between frames).
    Closed,
    /// The length prefix exceeded the configured maximum.
    Oversized(u32),
}

/// Reads one frame, polling the stop flag between timed-out reads. Any
/// partial frame at stop time is abandoned (the connection is closing).
fn read_frame_stop(
    stream: &mut TcpStream,
    max_len: u32,
    stop: &AtomicBool,
) -> std::io::Result<ReadOutcome> {
    let mut len_buf = [0u8; 4];
    if !read_exact_stop(stream, &mut len_buf, stop)? {
        return Ok(ReadOutcome::Closed);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_len {
        return Ok(ReadOutcome::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_stop(stream, &mut payload, stop)? {
        return Ok(ReadOutcome::Closed);
    }
    Ok(ReadOutcome::Frame(payload))
}

/// `read_exact` that re-checks `stop` on every read timeout. Returns
/// `Ok(false)` on stop or on EOF before the first byte of `buf`.
fn read_exact_stop(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(
    mut stream: TcpStream,
    stop: &Arc<AtomicBool>,
    queue: &Arc<BoundedQueue<Job>>,
    config: ServerConfig,
    guard: ConnGuard,
) {
    let max_frame_len = config.max_frame_len;
    counter!("mmdb_server_connections_total").inc();
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    if mmdb_telemetry::instrumentation_enabled() {
        mmdb_telemetry::recorder().record(
            EventKind::ServerConnAccepted,
            format!("peer={peer}"),
            &[],
        );
    }
    // Generous handshake window, then short timeouts so the reader can poll
    // the stop flag.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let version = match crate::protocol::server_handshake(&mut stream) {
        Ok(Some(v)) => v,
        Ok(None) | Err(_) => return, // guard drops, connection closes
    };
    let _ = stream.set_read_timeout(Some(STOP_POLL));

    // Writer half: all responses (inline errors, pings, worker replies)
    // funnel through one channel so frame writes never interleave.
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = std::thread::Builder::new()
        .name("mmdb-server-write".into())
        .spawn(move || {
            let _guard = guard; // released when the last response is flushed
            let mut stream = write_stream;
            while let Ok(frame) = reply_rx.recv() {
                if crate::protocol::write_frame(&mut stream, &frame).is_err() {
                    break;
                }
            }
            let _ = std::io::Write::flush(&mut stream);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        });
    if writer.is_err() {
        return;
    }

    loop {
        let payload = match read_frame_stop(&mut stream, max_frame_len, stop) {
            Ok(ReadOutcome::Frame(p)) => p,
            Ok(ReadOutcome::Closed) | Err(_) => break,
            Ok(ReadOutcome::Oversized(len)) => {
                // The stream can no longer be framed — answer and disconnect.
                counter!("mmdb_server_malformed_total").inc();
                let msg = format!("frame length {len} exceeds maximum {max_frame_len}");
                let _ = reply_tx.send(encode_err(0, None, Status::BadRequest, &msg, version));
                break;
            }
        };
        let request = match decode_request(&payload, version) {
            Ok(r) => r,
            Err((id, err)) => {
                counter!("mmdb_server_malformed_total").inc();
                let _ = reply_tx.send(encode_err(
                    id,
                    None,
                    Status::BadRequest,
                    &err.to_string(),
                    version,
                ));
                continue;
            }
        };
        requests_counter(request.body.opcode()).inc();
        if matches!(request.body, RequestBody::Ping) {
            let trace_id = request.trace.map(|ctx| ctx.trace_id);
            let _ = reply_tx.send(encode_ok(request.id, trace_id, &ReplyBody::Pong, version));
            continue;
        }
        let job = Job {
            request,
            version,
            accepted_at: Instant::now(),
            reply: reply_tx.clone(),
        };
        match queue.try_push(job) {
            Ok(()) => {
                gauge!("mmdb_server_queue_depth").set(queue.len() as u64);
            }
            Err((job, push_err)) => {
                counter!("mmdb_server_overloaded_total").inc();
                errors_counter(job.request.body.opcode()).inc();
                if mmdb_telemetry::instrumentation_enabled() {
                    record_refused_heat(&job.request.body);
                }
                let detail = match push_err {
                    PushError::Full => format!("queue full (depth {})", queue.capacity()),
                    PushError::Closed => "server shutting down".to_string(),
                };
                if mmdb_telemetry::instrumentation_enabled() {
                    mmdb_telemetry::recorder().record(
                        EventKind::ServerOverload,
                        format!("opcode={} {detail}", job.request.body.opcode().name()),
                        &[("request_id", job.request.id)],
                    );
                }
                let opcode = job.request.body.opcode();
                let trace_ctx = resolve_trace(config.trace_mode, job.request.trace);
                if config.trace_mode != TraceMode::Off {
                    if let Some(ctx) = trace_ctx {
                        // Admission refusals never reach a worker, so they'd
                        // otherwise be invisible to tracing; store a spanless
                        // trace (kept via the error rule) carrying the refusal.
                        let mut trace = QueryTrace::new(format!("request/{}", opcode.name()));
                        trace.event("opcode", opcode.name());
                        trace.event("status", Status::Overloaded.name());
                        trace.event("detail", &detail);
                        offer_trace(
                            ctx,
                            opcode,
                            Status::Overloaded,
                            Duration::ZERO,
                            Duration::ZERO,
                            trace,
                            config.trace_mode,
                        );
                    }
                }
                let _ = job.reply.send(encode_err(
                    job.request.id,
                    trace_ctx.map(|ctx| ctx.trace_id),
                    Status::Overloaded,
                    &detail,
                    job.version,
                ));
            }
        }
    }
    // Dropping reply_tx lets the writer exit once pending worker replies
    // (which hold their own clones) are delivered.
}

/// Resolves the trace context a request runs under: the client's when it
/// sent one (any mode — ids are echoed even with tracing off), otherwise a
/// server-generated unsampled one when tracing is on.
fn resolve_trace(mode: TraceMode, wire: Option<TraceContext>) -> Option<TraceContext> {
    match (wire, mode) {
        (Some(ctx), _) => Some(ctx),
        (None, TraceMode::Off) => None,
        (None, _) => Some(TraceContext {
            trace_id: mmdb_telemetry::next_trace_id(),
            sampled: false,
        }),
    }
}

fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64)
}

/// Offers a finished request trace to the global tail-sampling store.
fn offer_trace(
    ctx: TraceContext,
    opcode: Opcode,
    status: Status,
    total: Duration,
    queue_wait: Duration,
    trace: QueryTrace,
    mode: TraceMode,
) {
    // The hint encodes which unconditional-keep rule applies; the store
    // falls through to the latency threshold when neither does.
    let hint = if status != Status::Ok {
        KeepReason::Error
    } else if ctx.sampled {
        KeepReason::Sampled
    } else {
        KeepReason::Slow
    };
    mmdb_telemetry::trace_store().offer(
        StoredTrace {
            trace_id: ctx.trace_id,
            unix_micros: unix_micros_now(),
            opcode: opcode.name().to_string(),
            status: status.name().to_string(),
            total,
            queue_wait,
            keep_reason: hint,
            trace,
        },
        mode == TraceMode::Full,
    );
}

fn worker_loop(queue: &BoundedQueue<Job>, backend: &dyn QueryBackend, trace_mode: TraceMode) {
    let _prof = mmdb_telemetry::register_profiler_thread("worker");
    loop {
        let job = {
            // Published while blocked on the queue so idle workers show up
            // as `worker;idle` in profiles rather than vanishing.
            let _idle = mmdb_telemetry::profile_frame("idle");
            match queue.pop() {
                Some(job) => job,
                None => break,
            }
        };
        gauge!("mmdb_server_queue_depth").set(queue.len() as u64);
        let waited = job.accepted_at.elapsed();
        histogram!("mmdb_server_queue_wait_seconds").observe(waited);
        let id = job.request.id;
        let opcode = job.request.body.opcode();
        let tracing = trace_mode != TraceMode::Off;
        let ctx = resolve_trace(trace_mode, job.request.trace);
        let wire_trace_id = ctx.map(|c| c.trace_id);
        if job.request.deadline_ms > 0
            && waited >= Duration::from_millis(u64::from(job.request.deadline_ms))
        {
            counter!("mmdb_server_deadline_exceeded_total").inc();
            errors_counter(opcode).inc();
            if mmdb_telemetry::instrumentation_enabled() {
                record_refused_heat(&job.request.body);
                mmdb_telemetry::recorder().record(
                    EventKind::ServerDeadlineExceeded,
                    format!(
                        "opcode={} queued_for={}",
                        opcode.name(),
                        mmdb_telemetry::format_duration(waited)
                    ),
                    &[
                        ("request_id", id),
                        ("deadline_ms", u64::from(job.request.deadline_ms)),
                    ],
                );
            }
            if tracing {
                if let Some(ctx) = ctx {
                    // The whole lifetime of this request was queue wait —
                    // exactly the "slow because queued" shape the tail
                    // sampler exists to expose.
                    let mut trace = QueryTrace::new(format!("request/{}", opcode.name()));
                    trace.event("opcode", opcode.name());
                    trace.event("status", Status::DeadlineExceeded.name());
                    trace.stage("queue_wait", waited);
                    trace.finish(waited);
                    offer_trace(
                        ctx,
                        opcode,
                        Status::DeadlineExceeded,
                        waited,
                        waited,
                        trace,
                        trace_mode,
                    );
                }
            }
            let msg = format!(
                "deadline of {}ms expired after {} in queue; request not executed",
                job.request.deadline_ms,
                mmdb_telemetry::format_duration(waited)
            );
            let _ = job.reply.send(encode_err(
                id,
                wire_trace_id,
                Status::DeadlineExceeded,
                &msg,
                job.version,
            ));
            continue;
        }
        let exec_start = Instant::now();
        // A panic in the backend must not unwind the worker: the pool is
        // fixed-size with no respawn, so an unwinding request would both
        // drop its reply (hanging the client until its read timeout) and
        // permanently shrink the pool. Catch it and answer INTERNAL.
        // Backend stage tracing (the per-plan span tree) costs real work —
        // traced query paths bypass caches and allocate spans — so it runs
        // only when the trace is certain to be kept (full mode, or a
        // sampled context). Unsampled tail-mode requests are timed with the
        // cheap queue_wait/execute spans and remain eligible for
        // retroactive keep; only the plan-internal detail is coarser.
        let want_stages = trace_mode == TraceMode::Full || ctx.is_some_and(|c| c.sampled);
        let outcome = {
            let _frame = mmdb_telemetry::profile_frame(opcode.name());
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute(backend, &job.request.body, want_stages)
            }))
        };
        let exec_elapsed = exec_start.elapsed();
        let (status, backend_trace, payload) = match outcome {
            Ok(Ok((body, backend_trace))) => (
                Status::Ok,
                backend_trace,
                encode_ok(id, wire_trace_id, &body, job.version),
            ),
            Ok(Err(err)) => (
                err.status(),
                None,
                encode_err(id, wire_trace_id, err.status(), &err.message(), job.version),
            ),
            Err(panic) => {
                counter!("mmdb_server_backend_panics_total").inc();
                let detail = panic_message(panic.as_ref());
                if mmdb_telemetry::instrumentation_enabled() {
                    mmdb_telemetry::recorder().record(
                        EventKind::ServerBackendPanic,
                        format!("opcode={} {detail}", opcode.name()),
                        &[("request_id", id)],
                    );
                }
                (
                    Status::Internal,
                    None,
                    encode_err(
                        id,
                        wire_trace_id,
                        Status::Internal,
                        &format!("backend panicked: {detail}"),
                        job.version,
                    ),
                )
            }
        };
        if status != Status::Ok {
            errors_counter(opcode).inc();
        }
        execute_histogram(opcode).observe(exec_elapsed);
        // Full request latency from admission, so queue_wait + execute
        // histograms decompose it.
        latency_histogram(opcode).observe(job.accepted_at.elapsed());
        if tracing {
            if let Some(ctx) = ctx {
                let total = waited + exec_elapsed;
                let mut trace = QueryTrace::new(format!("request/{}", opcode.name()));
                trace.event("opcode", opcode.name());
                trace.event("status", status.name());
                if ctx.sampled {
                    trace.event("sampled", "true");
                }
                trace.stage("queue_wait", waited);
                if let Some(backend_trace) = backend_trace {
                    // Graft the backend's stage tree (plan scans,
                    // index_sync/index_lookup, …) under the execute span and
                    // hoist its events (plan chosen, …) to the request level.
                    trace
                        .stage("execute", exec_elapsed)
                        .child(backend_trace.root().clone());
                    trace.events.extend(backend_trace.events);
                } else {
                    trace.stage("execute", exec_elapsed);
                }
                trace.finish(total);
                offer_trace(ctx, opcode, status, total, waited, trace, trace_mode);
            }
        }
        let _ = job.reply.send(payload);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn execute(
    backend: &dyn QueryBackend,
    body: &RequestBody,
    traced: bool,
) -> Result<(ReplyBody, Option<QueryTrace>), crate::backend::BackendError> {
    match body {
        RequestBody::Ping => Ok((ReplyBody::Pong, None)),
        RequestBody::Range(req) if traced => backend
            .range_traced(req)
            .map(|(reply, trace)| (ReplyBody::Range(reply), trace)),
        RequestBody::Range(req) => backend.range(req).map(|r| (ReplyBody::Range(r), None)),
        RequestBody::Knn { probe_id, k } => backend
            .knn(*probe_id, *k)
            .map(|pairs| (ReplyBody::Knn(pairs), None)),
        RequestBody::Lookup { id } => backend.lookup(*id).map(|l| (ReplyBody::Lookup(l), None)),
        RequestBody::Stats => Ok((ReplyBody::Stats(backend.stats()), None)),
    }
}

//! The service-side abstraction over the database. `mmdb-server` sits
//! *below* the `mmdbms` facade in the dependency graph (so the facade's
//! `mmdbctl` binary can embed the server); the facade implements
//! [`QueryBackend`] for `MultimediaDatabase`, and tests plug in mocks.

use crate::protocol::{LookupReply, RangeReply, RangeRequest, StatsReply, Status};
use mmdb_telemetry::QueryTrace;

/// Why a backend call failed, mapped onto wire [`Status`] codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The referenced image id does not exist.
    NotFound(u64),
    /// The request parameters are invalid for this database.
    BadRequest(String),
    /// Execution failed.
    Internal(String),
}

impl BackendError {
    /// The wire status this error is reported as.
    pub fn status(&self) -> Status {
        match self {
            BackendError::NotFound(_) => Status::NotFound,
            BackendError::BadRequest(_) => Status::BadRequest,
            BackendError::Internal(_) => Status::Internal,
        }
    }

    /// The wire error message.
    pub fn message(&self) -> String {
        match self {
            BackendError::NotFound(id) => format!("image {id} not found"),
            BackendError::BadRequest(m) | BackendError::Internal(m) => m.clone(),
        }
    }
}

/// What the server needs from a database. All methods take `&self`:
/// implementations must be internally synchronized ([`Send`] + [`Sync`] is
/// part of the bound) because the worker pool calls them concurrently.
pub trait QueryBackend: Send + Sync {
    /// Executes a color range query under the requested plan and profile.
    fn range(&self, req: &RangeRequest) -> Result<RangeReply, BackendError>;

    /// Traced variant of [`QueryBackend::range`]: also returns the
    /// per-plan stage tree (RBM/BWM scans, `index_sync`/`index_lookup`, …)
    /// when the backend supports stage timing. The default delegates to
    /// `range` and reports no stages, so mock backends need not care.
    fn range_traced(
        &self,
        req: &RangeRequest,
    ) -> Result<(RangeReply, Option<QueryTrace>), BackendError> {
        self.range(req).map(|reply| (reply, None))
    }

    /// The `k` nearest neighbours of stored image `probe_id` over the whole
    /// augmented database, as `(id, distance)` ascending.
    fn knn(&self, probe_id: u64, k: u32) -> Result<Vec<(u64, f64)>, BackendError>;

    /// Catalog record of one image.
    fn lookup(&self, id: u64) -> Result<LookupReply, BackendError>;

    /// Storage statistics.
    fn stats(&self) -> StatsReply;
}

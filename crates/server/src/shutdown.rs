//! Ctrl-C / SIGTERM handling without a libc dependency: one `extern "C"`
//! declaration of the POSIX `signal` entry point (already linked into every
//! std binary on unix) installs a handler that flips a process-global
//! `AtomicBool` — the only async-signal-safe thing a handler may do.
//!
//! [`ShutdownSignal`] is the drain primitive both network servers share:
//! the query server's accept loop and `mmdbctl serve`'s foreground wait
//! poll [`ShutdownSignal::is_triggered`] and then run their drain sequence
//! (stop accepting, finish in-flight work, close) instead of dying mid-write
//! to a kill.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// Relaxed everywhere on TRIGGERED is deliberate: it is a standalone boolean
// flag — no observer infers the state of any other memory from it, and the
// signal-handler store must stay a bare atomic write (async-signal-safe).
// Kept on `std::sync::atomic` rather than the mmdb-conc facade for the same
// reason: the facade's model path takes locks, which a handler must not.
static TRIGGERED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    // `sighandler_t` is a function pointer on every unix libc; declaring the
    // symbol directly keeps the workspace free of a libc crate dependency.
    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: a relaxed atomic store.
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// A handle to the process-wide shutdown flag. All handles observe the same
/// flag; installing twice is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownSignal;

impl ShutdownSignal {
    /// Installs SIGINT + SIGTERM handlers (first call only) and returns a
    /// handle. On non-unix targets no handler is installed and the flag can
    /// only be raised programmatically via [`ShutdownSignal::trigger`].
    pub fn install() -> ShutdownSignal {
        if !INSTALLED.swap(true, Ordering::SeqCst) {
            #[cfg(unix)]
            unsafe {
                sys::signal(sys::SIGINT, sys::on_signal);
                sys::signal(sys::SIGTERM, sys::on_signal);
            }
        }
        ShutdownSignal
    }

    /// A handle that observes the flag without installing any handler
    /// (tests, embedders with their own signal strategy).
    pub fn uninstalled() -> ShutdownSignal {
        ShutdownSignal
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        TRIGGERED.load(Ordering::Relaxed)
    }

    /// Raises the flag programmatically (tests, admin endpoints).
    pub fn trigger(&self) {
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    /// Clears the flag (test isolation).
    pub fn reset(&self) {
        TRIGGERED.store(false, Ordering::Relaxed);
    }

    /// Blocks the calling thread until the flag is raised, polling every
    /// `interval`. A signal interrupting the sleep only shortens the wait.
    pub fn wait(&self, interval: Duration) {
        while !self.is_triggered() {
            std::thread::sleep(interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_trigger_and_wait() {
        let sig = ShutdownSignal::uninstalled();
        sig.reset();
        assert!(!sig.is_triggered());
        let waiter = std::thread::spawn(move || {
            sig.wait(Duration::from_millis(5));
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        sig.trigger();
        assert!(waiter.join().unwrap());
        assert!(sig.is_triggered());
        sig.reset();
    }
}

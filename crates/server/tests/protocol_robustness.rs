//! Robustness tests for the wire protocol and server loop: malformed
//! frames, oversized length prefixes, truncated payloads, and unknown
//! opcodes must produce a structured error or a clean disconnect — never a
//! panic or a hang — and the admission-control / deadline / drain paths
//! must behave as specified.

use mmdb_server::protocol::{
    decode_response, encode_request, read_frame, write_frame, Opcode, PlanKind, ProfileKind,
    RangeRequest, Request, RequestBody, Response, MAGIC, PROTOCOL_VERSION,
};
use mmdb_server::{
    BackendError, Client, ClientError, LookupReply, QueryBackend, QueryServer, RangeReply,
    ServerConfig, StatsReply, Status,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A backend that optionally sleeps per range call (to hold a worker busy)
/// and counts executed range queries (to prove deadline-expired requests
/// are never executed).
struct MockBackend {
    range_delay: Duration,
    range_calls: AtomicU64,
}

impl MockBackend {
    fn instant() -> Arc<MockBackend> {
        Arc::new(MockBackend {
            range_delay: Duration::ZERO,
            range_calls: AtomicU64::new(0),
        })
    }

    fn slow(delay: Duration) -> Arc<MockBackend> {
        Arc::new(MockBackend {
            range_delay: delay,
            range_calls: AtomicU64::new(0),
        })
    }
}

impl QueryBackend for MockBackend {
    fn range(&self, req: &RangeRequest) -> Result<RangeReply, BackendError> {
        self.range_calls.fetch_add(1, Ordering::SeqCst);
        if req.bin == 666 {
            panic!("backend exploded on bin 666");
        }
        if !self.range_delay.is_zero() {
            std::thread::sleep(self.range_delay);
        }
        Ok(RangeReply {
            ids: vec![u64::from(req.bin)],
            bounds_computed: 1,
            shortcut_emissions: 0,
        })
    }

    fn knn(&self, probe_id: u64, k: u32) -> Result<Vec<(u64, f64)>, BackendError> {
        if probe_id == 404 {
            return Err(BackendError::NotFound(probe_id));
        }
        Ok((0..u64::from(k)).map(|i| (i, i as f64)).collect())
    }

    fn lookup(&self, id: u64) -> Result<LookupReply, BackendError> {
        match id {
            404 => Err(BackendError::NotFound(id)),
            500 => Err(BackendError::Internal("disk on fire".into())),
            _ => Ok(LookupReply {
                kind: 0,
                width: 8,
                height: 8,
                pixels: 64,
                base: None,
            }),
        }
    }

    fn stats(&self) -> StatsReply {
        StatsReply {
            binary_count: 1,
            edited_count: 2,
            binary_bytes: 3,
            edited_bytes: 4,
            cache_hits: 5,
            cache_misses: 6,
        }
    }
}

fn range_request() -> RangeRequest {
    RangeRequest {
        plan: PlanKind::Bwm,
        profile: ProfileKind::Conservative,
        bin: 7,
        pct_min: 0.25,
        pct_max: 1.0,
    }
}

/// Connects and performs the handshake by hand, returning a raw stream for
/// byte-level tests. A read timeout guards every test against hangs.
fn raw_connect(server: &QueryServer) -> TcpStream {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    mmdb_server::protocol::client_handshake(&mut stream).unwrap();
    stream
}

fn send_request(stream: &mut TcpStream, id: u64, deadline_ms: u32, body: RequestBody) {
    let frame = encode_request(
        &Request {
            id,
            deadline_ms,
            trace: None,
            body,
        },
        PROTOCOL_VERSION,
    );
    write_frame(stream, &frame).unwrap();
}

fn recv_response(stream: &mut TcpStream, opcode: Opcode) -> Response {
    let payload = read_frame(stream, 4 << 20).unwrap();
    decode_response(&payload, opcode, PROTOCOL_VERSION).unwrap()
}

#[test]
fn malformed_payload_gets_structured_error_and_connection_survives() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = raw_connect(&server);

    // Too short to even hold a request id.
    write_frame(&mut stream, &[1, 2, 3]).unwrap();
    match recv_response(&mut stream, Opcode::Ping) {
        Response::Err { status, .. } => assert_eq!(status, Status::BadRequest),
        other => panic!("expected error response, got {other:?}"),
    }

    // The same connection still serves well-formed requests.
    send_request(&mut stream, 9, 0, RequestBody::Ping);
    match recv_response(&mut stream, Opcode::Ping) {
        Response::Ok { id, .. } => assert_eq!(id, 9),
        other => panic!("expected pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_opcode_reports_bad_request_with_request_id() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = raw_connect(&server);

    let mut payload = Vec::new();
    payload.extend_from_slice(&77u64.to_le_bytes());
    payload.push(0xEE); // no such opcode
    payload.extend_from_slice(&0u32.to_le_bytes());
    write_frame(&mut stream, &payload).unwrap();

    match recv_response(&mut stream, Opcode::Ping) {
        Response::Err {
            id,
            status,
            message,
            ..
        } => {
            assert_eq!(id, 77, "error must carry the offending request id");
            assert_eq!(status, Status::BadRequest);
            assert!(message.contains("opcode"), "unhelpful message: {message}");
        }
        other => panic!("expected error response, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversized_length_prefix_disconnects_cleanly() {
    let config = ServerConfig {
        max_frame_len: 1024,
        ..ServerConfig::default()
    };
    let server = QueryServer::bind("127.0.0.1:0", MockBackend::instant(), config).unwrap();
    let mut stream = raw_connect(&server);

    // A length prefix far beyond the configured maximum. The server answers
    // with a structured error and then hangs up (the stream can no longer
    // be framed).
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match recv_response(&mut stream, Opcode::Ping) {
        Response::Err { status, .. } => assert_eq!(status, Status::BadRequest),
        other => panic!("expected error response, got {other:?}"),
    }
    // Clean disconnect: EOF, not a hang or a reset mid-frame.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn truncated_frame_then_close_does_not_wedge_server() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();

    {
        let mut stream = raw_connect(&server);
        // Claim 100 bytes, deliver 10, vanish.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 10]).unwrap();
        drop(stream);
    }

    // The server must still accept and serve fresh connections.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn bad_magic_is_disconnected_without_reply() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Exactly one hello's worth of non-MMDB bytes (extra unread bytes would
    // turn the server's close into a RST, which is also fine but noisier).
    stream.write_all(b"GET / ").unwrap();
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => assert!(
            reply.is_empty(),
            "server must not echo anything at a non-MMDB client"
        ),
        // A reset is still "hung up without replying".
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected read error: {e}"),
    }
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_in_handshake() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&999u16.to_le_bytes());
    stream.write_all(&hello).unwrap();
    let mut reply = [0u8; 7];
    stream.read_exact(&mut reply).unwrap();
    assert_eq!(reply[..4], MAGIC);
    assert_eq!(reply[6], 1, "rejection byte must be set");
    // And then the server hangs up.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn overload_returns_structured_error_and_ping_still_answers() {
    // One worker, queue depth one: the second in-flight range occupies the
    // queue slot and the third must be refused.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let backend = MockBackend::slow(Duration::from_millis(300));
    let server = QueryServer::bind("127.0.0.1:0", backend, config).unwrap();
    let mut stream = raw_connect(&server);

    send_request(&mut stream, 1, 0, RequestBody::Range(range_request()));
    // Give the worker a moment to dequeue request 1 before filling the slot.
    std::thread::sleep(Duration::from_millis(100));
    send_request(&mut stream, 2, 0, RequestBody::Range(range_request()));
    std::thread::sleep(Duration::from_millis(50));
    send_request(&mut stream, 3, 0, RequestBody::Range(range_request()));
    // Pings bypass the queue entirely, so liveness survives overload.
    send_request(&mut stream, 4, 0, RequestBody::Ping);

    let mut ok = Vec::new();
    let mut overloaded = Vec::new();
    let mut pong = 0;
    for _ in 0..4 {
        // Responses are pipelined in completion order; pick the decode
        // opcode by request id (4 was the ping).
        let payload = read_frame(&mut stream, 4 << 20).unwrap();
        let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let opcode = if id == 4 { Opcode::Ping } else { Opcode::Range };
        match decode_response(&payload, opcode, PROTOCOL_VERSION).unwrap() {
            Response::Ok { id: 4, .. } => pong += 1,
            Response::Ok { id, .. } => ok.push(id),
            Response::Err { id, status, .. } => {
                assert_eq!(status, Status::Overloaded, "request {id}");
                overloaded.push(id);
            }
        }
    }
    assert_eq!(pong, 1, "ping must be answered inline under overload");
    assert_eq!(overloaded, vec![3], "third range must be refused");
    ok.sort_unstable();
    assert_eq!(ok, vec![1, 2]);
    server.shutdown();
}

#[test]
fn expired_deadline_is_refused_without_executing() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    };
    let backend = MockBackend::slow(Duration::from_millis(200));
    let server =
        QueryServer::bind("127.0.0.1:0", Arc::<MockBackend>::clone(&backend), config).unwrap();
    let mut stream = raw_connect(&server);

    // Request 1 holds the only worker for 200ms; request 2 allows 1ms of
    // queueing, which has long expired by the time a worker frees up.
    send_request(&mut stream, 1, 0, RequestBody::Range(range_request()));
    std::thread::sleep(Duration::from_millis(100));
    send_request(&mut stream, 2, 1, RequestBody::Range(range_request()));

    let mut expired = 0;
    for _ in 0..2 {
        match recv_response(&mut stream, Opcode::Range) {
            Response::Ok { id, .. } => assert_eq!(id, 1),
            Response::Err { id, status, .. } => {
                assert_eq!(id, 2);
                assert_eq!(status, Status::DeadlineExceeded);
                expired += 1;
            }
        }
    }
    assert_eq!(expired, 1);
    assert_eq!(
        backend.range_calls.load(Ordering::SeqCst),
        1,
        "the expired request must never reach the backend"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_requests() {
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    };
    let backend = MockBackend::slow(Duration::from_millis(50));
    let server =
        QueryServer::bind("127.0.0.1:0", Arc::<MockBackend>::clone(&backend), config).unwrap();
    let mut stream = raw_connect(&server);

    for id in 1..=6u64 {
        send_request(&mut stream, id, 0, RequestBody::Range(range_request()));
    }
    std::thread::sleep(Duration::from_millis(20));
    let handle = std::thread::spawn(move || server.shutdown());

    // Every accepted request is answered before the server closes.
    let mut answered = Vec::new();
    for _ in 0..6 {
        match recv_response(&mut stream, Opcode::Range) {
            Response::Ok { id, .. } => answered.push(id),
            Response::Err { id, status, .. } => panic!("request {id} failed with {status:?}"),
        }
    }
    answered.sort_unstable();
    assert_eq!(answered, vec![1, 2, 3, 4, 5, 6]);
    handle.join().unwrap();
    assert_eq!(backend.range_calls.load(Ordering::SeqCst), 6);
}

#[test]
fn backend_errors_map_to_structured_statuses() {
    let server = QueryServer::bind(
        "127.0.0.1:0",
        MockBackend::instant(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    match client.lookup(404) {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, Status::NotFound),
        other => panic!("expected NOT_FOUND, got {other:?}"),
    }
    match client.lookup(500) {
        Err(ClientError::Server { status, message }) => {
            assert_eq!(status, Status::Internal);
            assert!(message.contains("disk on fire"));
        }
        other => panic!("expected INTERNAL, got {other:?}"),
    }
    let found = client.lookup(1).unwrap();
    assert_eq!(found.pixels, 64);
    server.shutdown();
}

#[test]
fn backend_panic_answers_internal_and_worker_survives() {
    // One worker: if the panic unwound the worker thread, the follow-up
    // requests would never be executed and the reply for the panicking
    // request would be silently dropped (client hang). The server must
    // instead answer INTERNAL and keep the worker alive.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    };
    let backend = MockBackend::instant();
    let server =
        QueryServer::bind("127.0.0.1:0", Arc::<MockBackend>::clone(&backend), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for round in 0..3 {
        let mut bad = range_request();
        bad.bin = 666;
        match client.range(bad) {
            Err(ClientError::Server { status, message }) => {
                assert_eq!(status, Status::Internal, "round {round}");
                assert!(
                    message.contains("panic"),
                    "round {round}: unhelpful message: {message}"
                );
            }
            other => panic!("round {round}: expected INTERNAL, got {other:?}"),
        }
        // The sole worker must still be alive to serve this.
        let reply = client.range(range_request()).unwrap();
        assert_eq!(reply.ids, vec![7]);
    }
    assert_eq!(backend.range_calls.load(Ordering::SeqCst), 6);
    server.shutdown();
}

#[test]
fn invalid_percentage_range_is_rejected_before_execution() {
    let backend = MockBackend::instant();
    let server = QueryServer::bind(
        "127.0.0.1:0",
        Arc::<MockBackend>::clone(&backend),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut req = range_request();
    req.pct_min = f64::NAN;
    match client.range(req) {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, Status::BadRequest),
        other => panic!("expected BAD_REQUEST, got {other:?}"),
    }
    assert_eq!(backend.range_calls.load(Ordering::SeqCst), 0);
    server.shutdown();
}

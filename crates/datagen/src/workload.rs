//! Random range-query workloads of the paper's shape.

use mmdb_histogram::Quantizer;
use mmdb_imaging::Rgb;
use mmdb_rules::ColorRangeQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded generator of color range queries over a palette.
///
/// Queries take the paper's example form — "Retrieve all images that are at
/// least 25% blue" — with the color drawn from the collection palette
/// (mapped to its histogram bin) and the threshold drawn uniformly from a
/// configurable range. A fraction of queries are two-sided.
pub struct QueryGenerator {
    rng: SmallRng,
    bins: Vec<usize>,
    min_threshold: f64,
    max_threshold: f64,
    p_two_sided: f64,
}

impl QueryGenerator {
    /// Creates a generator drawing colors from `palette` under `quantizer`.
    ///
    /// # Panics
    /// Panics on an empty palette.
    pub fn new(seed: u64, palette: &[Rgb], quantizer: &dyn Quantizer) -> Self {
        assert!(!palette.is_empty(), "palette must not be empty");
        let mut bins: Vec<usize> = palette.iter().map(|&c| quantizer.bin_of(c)).collect();
        bins.sort_unstable();
        bins.dedup();
        QueryGenerator {
            rng: SmallRng::seed_from_u64(seed),
            bins,
            min_threshold: 0.05,
            max_threshold: 0.5,
            p_two_sided: 0.25,
        }
    }

    /// Creates a generator whose query colors are drawn **proportionally to
    /// the collection's own color mass** (the aggregate histogram of the
    /// database's binary images). This models real users querying for colors
    /// that actually occur — red flags, navy helmets — rather than uniform
    /// palette colors, and is the workload the figure sweeps use. Bins below
    /// 1% of the total mass are excluded.
    pub fn weighted_from_db(seed: u64, db: &mmdb_storage::StorageEngine) -> Self {
        use mmdb_rules::InfoResolver;
        let bin_count = db.quantizer().bin_count();
        let mut pooled = mmdb_histogram::ColorHistogram::zeroed(bin_count);
        for id in db.binary_ids() {
            if let Some(info) = db.info(id) {
                pooled.accumulate(&info.histogram);
            }
        }
        // Expand each qualifying bin proportionally to its mass (percent
        // resolution) so uniform sampling over `bins` is mass-weighted.
        let mut bins = Vec::new();
        for (bin, count) in pooled.nonzero() {
            let share = count as f64 / pooled.total().max(1) as f64;
            let copies = (share * 100.0).round() as usize;
            if copies >= 1 {
                bins.extend(std::iter::repeat_n(bin, copies));
            }
        }
        assert!(
            !bins.is_empty(),
            "database has no binary images to derive a weighted workload from"
        );
        QueryGenerator {
            rng: SmallRng::seed_from_u64(seed),
            bins,
            min_threshold: 0.05,
            max_threshold: 0.5,
            p_two_sided: 0.25,
        }
    }

    /// Overrides the threshold range for the `at least X%` form.
    ///
    /// # Panics
    /// Panics on an invalid range.
    pub fn thresholds(mut self, min: f64, max: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min) && (0.0..=1.0).contains(&max) && min <= max,
            "invalid threshold range"
        );
        self.min_threshold = min;
        self.max_threshold = max;
        self
    }

    /// Overrides the share of two-sided queries.
    ///
    /// # Panics
    /// Panics outside `[0, 1]`.
    pub fn two_sided_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.p_two_sided = p;
        self
    }

    /// Generates one query.
    pub fn next_query(&mut self) -> ColorRangeQuery {
        let bin = self.bins[self.rng.gen_range(0..self.bins.len())];
        let lo = self.rng.gen_range(self.min_threshold..=self.max_threshold);
        if self.rng.gen_bool(self.p_two_sided) {
            let hi = self.rng.gen_range(lo..=1.0f64);
            ColorRangeQuery::new(bin, lo, hi)
        } else {
            ColorRangeQuery::at_least(bin, lo)
        }
    }

    /// Generates a batch of `n` queries.
    pub fn batch(&mut self, n: usize) -> Vec<ColorRangeQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::FLAG_COLORS;
    use mmdb_histogram::RgbQuantizer;

    fn generator(seed: u64) -> QueryGenerator {
        QueryGenerator::new(seed, &FLAG_COLORS, &RgbQuantizer::default_64())
    }

    #[test]
    fn queries_are_well_formed() {
        let mut g = generator(1);
        for q in g.batch(200) {
            assert!(q.bin < 64);
            assert!(q.pct_min >= 0.05 && q.pct_min <= 0.5);
            assert!(q.pct_min <= q.pct_max && q.pct_max <= 1.0);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = generator(5);
        let mut b = generator(5);
        assert_eq!(a.batch(20), b.batch(20));
        let mut c = generator(6);
        assert_ne!(a.batch(20), c.batch(20));
    }

    #[test]
    fn two_sided_share_respected() {
        let mut g = generator(9).two_sided_probability(1.0);
        for q in g.batch(50) {
            assert!(q.pct_max <= 1.0); // well-formed
        }
        let mut g = generator(9).two_sided_probability(0.0);
        for q in g.batch(50) {
            assert_eq!(q.pct_max, 1.0, "one-sided queries have pct_max = 1");
        }
    }

    #[test]
    fn custom_thresholds() {
        let mut g = generator(3).thresholds(0.2, 0.3).two_sided_probability(0.0);
        for q in g.batch(50) {
            assert!(q.pct_min >= 0.2 && q.pct_min <= 0.3);
        }
    }

    #[test]
    fn bins_cover_palette() {
        let g = generator(1);
        assert!(g.bins.len() >= 8);
    }

    #[test]
    #[should_panic(expected = "palette must not be empty")]
    fn empty_palette_rejected() {
        QueryGenerator::new(1, &[], &RgbQuantizer::default_64());
    }
}

//! Synthetic college-football-helmet generator.
//!
//! Mirrors the color structure of the paper's helmet data set (its reference \[14\]): a
//! uniform backdrop, a large shell in a team color, a contrasting center
//! stripe, a facemask, and a circular logo patch — "color-based features are
//! extremely important in recognizing both flags and logos" (§5).

use crate::palette::{HELMET_BACKDROP, TEAM_COLORS};
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic helmet generator.
pub struct HelmetGenerator {
    seed: u64,
    size: u32,
}

impl HelmetGenerator {
    /// Creates a generator producing `size`×`size` helmets.
    pub fn new(seed: u64, size: u32) -> Self {
        assert!(size >= 24, "helmets need at least a 24px canvas");
        HelmetGenerator { seed, size }
    }

    /// A generator with the default 80×80 canvas.
    pub fn with_seed(seed: u64) -> Self {
        HelmetGenerator::new(seed, 80)
    }

    /// Generates helmet `index`; deterministic per `(seed, index)`.
    pub fn generate(&self, index: u64) -> RasterImage {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ (index.wrapping_mul(0xD1B54A32D192ED03)));
        let s = self.size as i64;
        // Team colors: shell + accent, distinct, weighted by how common the
        // colors are across real college palettes.
        let shell = TEAM_COLORS
            [crate::palette::pick_weighted(&mut rng, &crate::palette::TEAM_COLOR_WEIGHTS)];
        let accent = loop {
            let c = TEAM_COLORS
                [crate::palette::pick_weighted(&mut rng, &crate::palette::TEAM_COLOR_WEIGHTS)];
            if c != shell {
                break c;
            }
        };
        let mask_gray = rng.gen_bool(0.5);
        let mask_color = if mask_gray {
            crate::palette::GRAY_MASK
        } else {
            accent
        };

        let mut img = RasterImage::filled(self.size, self.size, HELMET_BACKDROP).unwrap();
        // Shell: a big ellipse occupying the upper-left two thirds.
        let shell_rect = Rect::new(s / 12, s / 8, s * 10 / 12, s * 7 / 8);
        draw::fill_ellipse(&mut img, &shell_rect, shell);
        // Center stripe down the shell.
        if rng.gen_bool(0.7) {
            let sw = (s / 12).max(2);
            draw::fill_rect(
                &mut img,
                &Rect::new(
                    (shell_rect.x0 + shell_rect.x1) / 2 - sw / 2,
                    shell_rect.y0,
                    (shell_rect.x0 + shell_rect.x1) / 2 + sw / 2,
                    shell_rect.y1,
                ),
                accent,
            );
        }
        // Facemask: horizontal bars at the lower right of the shell.
        let bar = (s / 24).max(1);
        for i in 0..3 {
            let y = s * 5 / 8 + i * 3 * bar;
            draw::fill_rect(
                &mut img,
                &Rect::new(s * 7 / 12, y, s * 11 / 12, y + bar),
                mask_color,
            );
        }
        draw::fill_rect(
            &mut img,
            &Rect::new(s * 8 / 12, s * 5 / 8, s * 8 / 12 + bar, s * 5 / 8 + 7 * bar),
            mask_color,
        );
        // Logo disc on the shell side.
        if rng.gen_bool(0.8) {
            let r = s / 10;
            draw::fill_circle(&mut img, s * 4 / 12, s / 2, r, accent);
            draw::fill_circle(&mut img, s * 4 / 12, s / 2, (r * 2) / 3, Rgb::WHITE);
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};

    #[test]
    fn deterministic() {
        let g = HelmetGenerator::with_seed(5);
        assert_eq!(g.generate(3), g.generate(3));
        assert_ne!(g.generate(3), g.generate(4));
    }

    #[test]
    fn shell_color_dominates_foreground() {
        let g = HelmetGenerator::with_seed(11);
        let q = RgbQuantizer::default_64();
        for i in 0..20 {
            let img = g.generate(i);
            let hist = ColorHistogram::extract(&img, &q);
            // Helmets are low-entropy too, though busier than flags.
            let nonzero = hist.nonzero().count();
            assert!(nonzero <= 8, "helmet {i} has {nonzero} populated bins");
        }
    }

    #[test]
    fn canvas_size() {
        let g = HelmetGenerator::new(2, 40);
        let img = g.generate(0);
        assert_eq!((img.width(), img.height()), (40, 40));
    }

    #[test]
    #[should_panic(expected = "24px")]
    fn tiny_canvas_rejected() {
        HelmetGenerator::new(1, 10);
    }
}

//! Color palettes for the synthetic collections.

use mmdb_imaging::Rgb;

/// Pan-world flag colors (sampled from real vexillological conventions —
/// Pantone-ish reds, royal blues, Islamic green, gold, etc.). Flags draw
/// from this fixed palette so that color histograms over the collection are
/// realistic: heavy, saturated, low-entropy.
pub const FLAG_COLORS: [Rgb; 10] = [
    Rgb::new(0xCE, 0x11, 0x26), // red (pan-Slavic / pan-Arab red)
    Rgb::new(0x00, 0x28, 0x68), // navy blue
    Rgb::new(0x00, 0x7A, 0x3D), // green
    Rgb::new(0xFC, 0xD1, 0x16), // golden yellow
    Rgb::new(0xFF, 0xFF, 0xFF), // white
    Rgb::new(0x00, 0x00, 0x00), // black
    Rgb::new(0xFF, 0x79, 0x00), // orange
    Rgb::new(0x00, 0x9B, 0x9E), // teal
    Rgb::new(0x6D, 0x2E, 0x8A), // purple
    Rgb::new(0x87, 0xCE, 0xEB), // sky blue
];

/// College-team shell/accent colors for the helmet collection.
pub const TEAM_COLORS: [Rgb; 12] = [
    Rgb::new(0x9E, 0x1B, 0x32), // crimson
    Rgb::new(0x00, 0x21, 0x4D), // midnight blue
    Rgb::new(0xF5, 0x6E, 0x00), // burnt orange
    Rgb::new(0x18, 0x45, 0x3B), // forest green
    Rgb::new(0x4B, 0x11, 0x6F), // royal purple
    Rgb::new(0xFF, 0xD7, 0x00), // gold
    Rgb::new(0xC0, 0xC0, 0xC0), // silver
    Rgb::new(0xFF, 0xFF, 0xFF), // white
    Rgb::new(0x33, 0x00, 0x66), // deep violet
    Rgb::new(0x99, 0x00, 0x00), // dark red
    Rgb::new(0x00, 0x66, 0x33), // kelly green
    Rgb::new(0x1C, 0x1C, 0x1C), // near-black
];

/// Real-world frequency weights for [`FLAG_COLORS`] (red and white appear in
/// the large majority of national flags, purple in almost none). Used for
/// weighted color picks so the synthetic collection's color-population
/// statistics match the skew of the paper's flag data set.
pub const FLAG_COLOR_WEIGHTS: [u32; 10] = [30, 20, 12, 9, 25, 6, 3, 2, 1, 2];

/// Frequency weights for [`TEAM_COLORS`] (crimson/navy/gold/white dominate
/// college palettes).
pub const TEAM_COLOR_WEIGHTS: [u32; 12] = [16, 16, 9, 7, 5, 12, 8, 12, 2, 7, 5, 5];

/// Picks an index into `weights` proportionally to the weights.
///
/// # Panics
/// Panics when the weights sum to zero.
pub fn pick_weighted(rng: &mut impl rand::Rng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "weights must not all be zero");
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    unreachable!("roll is bounded by the weight sum")
}

/// Neutral colors used for facemasks, outlines and backgrounds.
pub const GRAY_MASK: Rgb = Rgb::new(0x80, 0x80, 0x80);

/// Background behind helmets (studio gray).
pub const HELMET_BACKDROP: Rgb = Rgb::new(0xD9, 0xD9, 0xD9);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn palettes_have_distinct_colors() {
        let flags: HashSet<Rgb> = FLAG_COLORS.iter().copied().collect();
        assert_eq!(flags.len(), FLAG_COLORS.len());
        let teams: HashSet<Rgb> = TEAM_COLORS.iter().copied().collect();
        assert_eq!(teams.len(), TEAM_COLORS.len());
    }

    #[test]
    fn palettes_span_distinct_64bins() {
        use mmdb_histogram::{Quantizer, RgbQuantizer};
        let q = RgbQuantizer::default_64();
        let bins: HashSet<usize> = FLAG_COLORS.iter().map(|&c| q.bin_of(c)).collect();
        // The flag palette must populate many distinct histogram bins for
        // queries to be discriminative.
        assert!(bins.len() >= 8, "only {} distinct bins", bins.len());
    }
}

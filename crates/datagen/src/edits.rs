//! Random edit-sequence variants — the database augmentation step.
//!
//! §2: "when an image x is inserted into such a CBIR system, several edited
//! versions of image x should be added to the underlying database as well."
//! This generator produces those variants with a controllable operation mix;
//! the share of variants containing a non-bound-widening operation (`Merge`
//! with a target) is the key knob for the Figure 3/4 experiments, since only
//! bound-widening-only variants enter the BWM Main Component.

use mmdb_editops::{EditOp, EditSequence, ImageId, Matrix3};
use mmdb_imaging::{RasterImage, Rect, Rgb};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs for variant generation.
#[derive(Clone, Copy, Debug)]
pub struct VariantConfig {
    /// Minimum operations per variant (≥1).
    pub min_ops: usize,
    /// Maximum operations per variant.
    pub max_ops: usize,
    /// Probability that a variant contains at least one `Merge` with a
    /// target — i.e. lands in the BWM Unclassified Component.
    pub p_merge_target: f64,
}

impl Default for VariantConfig {
    fn default() -> Self {
        // Table 2 reports the "average number of operations within an edited
        // image"; the scrape lost the value, so we center on 5.
        VariantConfig {
            min_ops: 3,
            max_ops: 7,
            p_merge_target: 0.25,
        }
    }
}

/// A potential merge target: id plus raster dimensions (needed to pick paste
/// coordinates).
#[derive(Clone, Copy, Debug)]
pub struct TargetInfo {
    /// Target image id (must be a stored binary image).
    pub id: ImageId,
    /// Target width.
    pub width: u32,
    /// Target height.
    pub height: u32,
}

/// Seeded generator of edit-sequence variants.
pub struct VariantGenerator {
    rng: SmallRng,
    config: VariantConfig,
    palette: Vec<Rgb>,
}

impl VariantGenerator {
    /// Creates a generator. `palette` supplies the `to` colors of `Modify`
    /// operations (typically the collection's own palette).
    ///
    /// # Panics
    /// Panics on an empty palette or `min_ops == 0` / inverted op range.
    pub fn new(seed: u64, config: VariantConfig, palette: Vec<Rgb>) -> Self {
        assert!(!palette.is_empty(), "palette must not be empty");
        assert!(
            config.min_ops >= 1 && config.min_ops <= config.max_ops,
            "invalid op-count range"
        );
        VariantGenerator {
            rng: SmallRng::seed_from_u64(seed),
            config,
            palette,
        }
    }

    /// Generates one variant of `base`. `base_img` supplies realistic
    /// `Modify` source colors; `targets` the candidate merge targets (when
    /// empty, no non-bound-widening op can be generated).
    pub fn generate(
        &mut self,
        base: ImageId,
        base_img: &RasterImage,
        targets: &[TargetInfo],
    ) -> EditSequence {
        let n_ops = self
            .rng
            .gen_range(self.config.min_ops..=self.config.max_ops);
        let wants_merge_target =
            !targets.is_empty() && self.rng.gen_bool(self.config.p_merge_target);
        // Position of the merge-target op within the sequence (never first,
        // so a Define precedes it).
        let merge_pos = if wants_merge_target {
            Some(self.rng.gen_range(1..=n_ops.max(1)))
        } else {
            None
        };

        let mut ops: Vec<EditOp> = Vec::with_capacity(n_ops + 1);
        // Symbolic canvas tracking so generated regions stay meaningful.
        let mut w = base_img.width() as i64;
        let mut h = base_img.height() as i64;
        let mut have_region = false;

        let mut emitted = 0usize;
        while emitted < n_ops {
            if merge_pos == Some(emitted) {
                let t = targets[self.rng.gen_range(0..targets.len())];
                if !have_region {
                    let r = self.random_region(w, h);
                    ops.push(EditOp::Define { region: r });
                    have_region = true;
                }
                let xp = self.rng.gen_range(-2..t.width as i64);
                let yp = self.rng.gen_range(-2..t.height as i64);
                ops.push(EditOp::Merge {
                    target: Some(t.id),
                    xp,
                    yp,
                });
                // Canvas is now (at least) the target.
                w = t.width as i64;
                h = t.height as i64;
                emitted += 1;
                continue;
            }
            match self.rng.gen_range(0..100) {
                // Define a fresh sub-region.
                0..=24 => {
                    let r = self.random_region(w, h);
                    ops.push(EditOp::Define { region: r });
                    have_region = true;
                }
                // Modify: a color actually present in the base → palette.
                25..=49 => {
                    let from = self.sample_color(base_img);
                    let to = self.palette[self.rng.gen_range(0..self.palette.len())];
                    ops.push(EditOp::Modify { from, to });
                }
                // Blur.
                50..=64 => ops.push(EditOp::box_blur()),
                // Translate (rigid).
                65..=79 => {
                    let dx = self.rng.gen_range(-(w / 4).max(1)..=(w / 4).max(1)) as f64;
                    let dy = self.rng.gen_range(-(h / 4).max(1)..=(h / 4).max(1)) as f64;
                    ops.push(EditOp::Mutate {
                        matrix: Matrix3::translation(dx, dy),
                    });
                }
                // Rotate about the canvas center (rigid).
                80..=89 => {
                    let angle = self.rng.gen_range(1..8) as f64 * std::f64::consts::FRAC_PI_4;
                    ops.push(EditOp::Mutate {
                        matrix: Matrix3::rotation_about(angle, w as f64 / 2.0, h as f64 / 2.0),
                    });
                }
                // Whole-image scale (kept small; define-all first).
                90..=94 => {
                    let s = [0.5, 2.0][self.rng.gen_range(0..2)];
                    if (w as f64 * s) >= 8.0 && (h as f64 * s) >= 8.0 && (w as f64 * s) <= 512.0 {
                        ops.push(EditOp::define_all());
                        ops.push(EditOp::Mutate {
                            matrix: Matrix3::scale(s, s),
                        });
                        w = (w as f64 * s).round() as i64;
                        h = (h as f64 * s).round() as i64;
                        have_region = true;
                    } else {
                        ops.push(EditOp::box_blur());
                    }
                }
                // Crop to a fresh region.
                _ => {
                    let r = self.random_region(w, h);
                    ops.push(EditOp::Define { region: r });
                    ops.push(EditOp::Merge {
                        target: None,
                        xp: 0,
                        yp: 0,
                    });
                    w = r.width();
                    h = r.height();
                    have_region = true;
                }
            }
            emitted += 1;
        }
        // A merge position past the last emitted op: append it.
        if let Some(pos) = merge_pos {
            if pos >= n_ops {
                let t = targets[self.rng.gen_range(0..targets.len())];
                if !have_region {
                    ops.push(EditOp::Define {
                        region: self.random_region(w, h),
                    });
                }
                ops.push(EditOp::Merge {
                    target: Some(t.id),
                    xp: self.rng.gen_range(0..t.width as i64),
                    yp: self.rng.gen_range(0..t.height as i64),
                });
            }
        }
        EditSequence::new(base, ops)
    }

    /// A non-empty region strictly inside a `w`×`h` canvas.
    fn random_region(&mut self, w: i64, h: i64) -> Rect {
        let rw = self.rng.gen_range((w / 4).max(1)..=(w * 3 / 4).max(1));
        let rh = self.rng.gen_range((h / 4).max(1)..=(h * 3 / 4).max(1));
        let x = self.rng.gen_range(0..(w - rw).max(1));
        let y = self.rng.gen_range(0..(h - rh).max(1));
        Rect::from_origin_size(x, y, rw, rh)
    }

    /// Samples the color of a random pixel.
    fn sample_color(&mut self, img: &RasterImage) -> Rgb {
        let x = self.rng.gen_range(0..img.width());
        let y = self.rng.gen_range(0..img.height());
        img.get(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::FlagGenerator;
    use crate::palette::FLAG_COLORS;

    fn gen_with(p_merge: f64, seed: u64) -> VariantGenerator {
        VariantGenerator::new(
            seed,
            VariantConfig {
                min_ops: 3,
                max_ops: 7,
                p_merge_target: p_merge,
            },
            FLAG_COLORS.to_vec(),
        )
    }

    fn targets() -> Vec<TargetInfo> {
        vec![
            TargetInfo {
                id: ImageId::new(50),
                width: 90,
                height: 60,
            },
            TargetInfo {
                id: ImageId::new(51),
                width: 90,
                height: 60,
            },
        ]
    }

    #[test]
    fn op_counts_in_range() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(0);
        let mut g = gen_with(0.0, 3);
        for _ in 0..50 {
            let seq = g.generate(ImageId::new(1), &img, &targets());
            assert!(seq.len() >= 3, "too few ops: {}", seq.len());
            // Compound emissions (crop = define+merge) can exceed max_ops by
            // a small constant.
            assert!(seq.len() <= 7 * 2, "too many ops: {}", seq.len());
            assert_eq!(seq.base, ImageId::new(1));
        }
    }

    #[test]
    fn merge_probability_zero_yields_all_bound_widening() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(2);
        let mut g = gen_with(0.0, 9);
        for _ in 0..100 {
            let seq = g.generate(ImageId::new(1), &img, &targets());
            assert!(seq.all_bound_widening());
        }
    }

    #[test]
    fn merge_probability_one_yields_all_unclassified() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(2);
        let mut g = gen_with(1.0, 9);
        for _ in 0..100 {
            let seq = g.generate(ImageId::new(1), &img, &targets());
            assert!(!seq.all_bound_widening(), "{seq:?}");
        }
    }

    #[test]
    fn merge_probability_without_targets_is_ignored() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(2);
        let mut g = gen_with(1.0, 9);
        let seq = g.generate(ImageId::new(1), &img, &[]);
        assert!(seq.all_bound_widening());
    }

    #[test]
    fn intermediate_probability_mixes() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(4);
        let mut g = gen_with(0.3, 123);
        let n = 300;
        let nbw = (0..n)
            .filter(|_| {
                !g.generate(ImageId::new(1), &img, &targets())
                    .all_bound_widening()
            })
            .count();
        let frac = nbw as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.1, "observed NBW fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let flags = FlagGenerator::with_seed(1);
        let img = flags.generate(0);
        let mut a = gen_with(0.5, 77);
        let mut b = gen_with(0.5, 77);
        for _ in 0..10 {
            assert_eq!(
                a.generate(ImageId::new(1), &img, &targets()),
                b.generate(ImageId::new(1), &img, &targets())
            );
        }
    }

    #[test]
    #[should_panic(expected = "palette must not be empty")]
    fn empty_palette_rejected() {
        VariantGenerator::new(1, VariantConfig::default(), vec![]);
    }
}

//! Augmented-database assembly and Table 2-style parameter reporting.

use crate::edits::{TargetInfo, VariantConfig, VariantGenerator};
use crate::flags::FlagGenerator;
use crate::helmets::HelmetGenerator;
use crate::palette::{FLAG_COLORS, TEAM_COLORS};
use mmdb_editops::ImageId;
use mmdb_histogram::RgbQuantizer;
use mmdb_storage::StorageEngine;

/// Which synthetic collection to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collection {
    /// World-flag-like images (the paper's first data set).
    Flags,
    /// College-football-helmet-like images (the paper's second data set).
    Helmets,
}

impl std::fmt::Display for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Collection::Flags => f.write_str("flag"),
            Collection::Helmets => f.write_str("helmet"),
        }
    }
}

/// The generated database's actual parameters — our analog of the paper's
/// Table 2 ("Default values of parameters used in performance evaluation").
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetInfo {
    /// The collection generated.
    pub collection: Collection,
    /// Number of images in the database (Table 2 row 1).
    pub total_images: usize,
    /// Number of binary images (row 2).
    pub binary_images: usize,
    /// Number of edited images (row 3).
    pub edited_images: usize,
    /// Average number of operations within an edited image (row 4).
    pub avg_ops_per_edited: f64,
    /// Edited images containing only bound-widening operations (row 5).
    pub bound_widening_only: usize,
    /// Edited images with at least one non-bound-widening operation (row 6).
    pub non_bound_widening: usize,
    /// Seed the dataset was generated from.
    pub seed: u64,
    /// Binary image ids, insertion order.
    pub binary_ids: Vec<ImageId>,
    /// Edited image ids, insertion order.
    pub edited_ids: Vec<ImageId>,
}

impl DatasetInfo {
    /// Renders the Table 2 analog as `(description, value)` rows.
    pub fn table2_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Number of images in database".into(),
                self.total_images.to_string(),
            ),
            (
                "Number of binary images in database".into(),
                self.binary_images.to_string(),
            ),
            (
                "Number of edited images in database".into(),
                self.edited_images.to_string(),
            ),
            (
                "Average number of operations within an edited image".into(),
                format!("{:.2}", self.avg_ops_per_edited),
            ),
            (
                "Number of edited images that contain only operations with bound-widening rules"
                    .into(),
                self.bound_widening_only.to_string(),
            ),
            (
                "Number of edited images that have an operation whose rule is not bound-widening"
                    .into(),
                self.non_bound_widening.to_string(),
            ),
        ]
    }
}

/// Builds an augmented in-memory database for one collection.
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    collection: Collection,
    total_images: usize,
    pct_edited: f64,
    seed: u64,
    variant_config: VariantConfig,
    quantizer_divisions: u32,
}

impl DatasetBuilder {
    /// Default setup: 600 images, 80% stored as editing operations (the
    /// paper augments each base with several variants), seed 42, 64-bin RGB
    /// quantizer, default variant mix.
    pub fn new(collection: Collection) -> Self {
        DatasetBuilder {
            collection,
            total_images: 600,
            pct_edited: 0.8,
            seed: 42,
            variant_config: VariantConfig::default(),
            quantizer_divisions: 4,
        }
    }

    /// Sets the total image count (binary + edited).
    pub fn total_images(mut self, n: usize) -> Self {
        self.total_images = n;
        self
    }

    /// Sets the fraction of the database stored as editing operations — the
    /// x-axis of Figures 3 and 4.
    ///
    /// # Panics
    /// Panics outside `[0, 1)` (at 1.0 there would be no base to derive
    /// from).
    pub fn pct_edited(mut self, pct: f64) -> Self {
        assert!((0.0..1.0).contains(&pct), "pct_edited must be in [0, 1)");
        self.pct_edited = pct;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the variant-generation knobs (op counts, merge-target
    /// probability).
    pub fn variant_config(mut self, config: VariantConfig) -> Self {
        self.variant_config = config;
        self
    }

    /// Sets the RGB quantizer's per-channel division count (default 4 → 64
    /// bins).
    pub fn quantizer_divisions(mut self, d: u32) -> Self {
        self.quantizer_divisions = d;
        self
    }

    /// Generates the database and its parameter report.
    pub fn build(&self) -> (StorageEngine, DatasetInfo) {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::new(self.quantizer_divisions)));
        let edited_count = (self.total_images as f64 * self.pct_edited).round() as usize;
        let binary_count = self.total_images - edited_count;
        assert!(
            binary_count >= 1,
            "at least one binary image is required as a base"
        );

        // 1. Binary images.
        let mut binary_ids = Vec::with_capacity(binary_count);
        let mut rasters = Vec::with_capacity(binary_count);
        match self.collection {
            Collection::Flags => {
                let g = FlagGenerator::with_seed(self.seed);
                for i in 0..binary_count {
                    let img = g.generate(i as u64);
                    binary_ids.push(db.insert_binary(&img).expect("insert binary"));
                    rasters.push(img);
                }
            }
            Collection::Helmets => {
                let g = HelmetGenerator::with_seed(self.seed);
                for i in 0..binary_count {
                    let img = g.generate(i as u64);
                    binary_ids.push(db.insert_binary(&img).expect("insert binary"));
                    rasters.push(img);
                }
            }
        }

        // 2. Edited variants, derived round-robin from the bases.
        let palette = match self.collection {
            Collection::Flags => FLAG_COLORS.to_vec(),
            Collection::Helmets => TEAM_COLORS.to_vec(),
        };
        let mut variants = VariantGenerator::new(self.seed ^ 0xA5A5, self.variant_config, palette);
        let targets: Vec<TargetInfo> = binary_ids
            .iter()
            .zip(&rasters)
            .map(|(&id, img)| TargetInfo {
                id,
                width: img.width(),
                height: img.height(),
            })
            .collect();

        let mut edited_ids = Vec::with_capacity(edited_count);
        let mut total_ops = 0usize;
        let mut bw_only = 0usize;
        for i in 0..edited_count {
            let base_idx = i % binary_count;
            // Exclude the base itself from the merge-target pool so merges
            // always cross images (and so a single-base dataset never
            // produces self-references).
            let other_targets: Vec<TargetInfo> = targets
                .iter()
                .copied()
                .filter(|t| t.id != binary_ids[base_idx])
                .collect();
            let seq = variants.generate(binary_ids[base_idx], &rasters[base_idx], &other_targets);
            total_ops += seq.len();
            if seq.all_bound_widening() {
                bw_only += 1;
            }
            edited_ids.push(db.insert_edited(seq).expect("insert edited"));
        }

        let info = DatasetInfo {
            collection: self.collection,
            total_images: self.total_images,
            binary_images: binary_count,
            edited_images: edited_count,
            avg_ops_per_edited: if edited_count == 0 {
                0.0
            } else {
                total_ops as f64 / edited_count as f64
            },
            bound_widening_only: bw_only,
            non_bound_widening: edited_count - bw_only,
            seed: self.seed,
            binary_ids,
            edited_ids,
        };
        (db, info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::StoredKind;

    #[test]
    fn build_respects_counts() {
        let (db, info) = DatasetBuilder::new(Collection::Flags)
            .total_images(50)
            .pct_edited(0.6)
            .seed(7)
            .build();
        assert_eq!(info.total_images, 50);
        assert_eq!(info.edited_images, 30);
        assert_eq!(info.binary_images, 20);
        assert_eq!(db.binary_ids().len(), 20);
        assert_eq!(db.edited_ids().len(), 30);
        assert_eq!(info.bound_widening_only + info.non_bound_widening, 30);
        assert!(info.avg_ops_per_edited >= 3.0);
        for id in &info.edited_ids {
            assert_eq!(db.kind(*id).unwrap(), StoredKind::Edited);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = DatasetBuilder::new(Collection::Helmets)
            .total_images(40)
            .pct_edited(0.5)
            .seed(99)
            .build();
        let (_, b) = DatasetBuilder::new(Collection::Helmets)
            .total_images(40)
            .pct_edited(0.5)
            .seed(99)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn all_edited_images_instantiate() {
        // The variants must be executable (ground-truth experiments
        // instantiate them all).
        let (db, info) = DatasetBuilder::new(Collection::Flags)
            .total_images(40)
            .pct_edited(0.7)
            .seed(3)
            .build();
        for id in &info.edited_ids {
            let raster = db.raster(*id);
            assert!(raster.is_ok(), "{id}: {:?}", raster.err());
        }
    }

    #[test]
    fn table2_rows_render() {
        let (_, info) = DatasetBuilder::new(Collection::Flags)
            .total_images(30)
            .pct_edited(0.5)
            .build();
        let rows = info.table2_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].1, "30");
        assert_eq!(rows[1].1, "15");
        assert_eq!(rows[2].1, "15");
    }

    #[test]
    fn zero_pct_edited_is_binary_only() {
        let (db, info) = DatasetBuilder::new(Collection::Helmets)
            .total_images(10)
            .pct_edited(0.0)
            .build();
        assert_eq!(info.edited_images, 0);
        assert_eq!(db.edited_ids().len(), 0);
        assert_eq!(info.avg_ops_per_edited, 0.0);
    }

    #[test]
    fn merge_probability_controls_unclassified_share() {
        let cfg = VariantConfig {
            p_merge_target: 0.0,
            ..VariantConfig::default()
        };
        let (_, info) = DatasetBuilder::new(Collection::Flags)
            .total_images(40)
            .pct_edited(0.5)
            .variant_config(cfg)
            .build();
        assert_eq!(info.non_bound_widening, 0);
    }

    #[test]
    #[should_panic(expected = "pct_edited")]
    fn pct_one_rejected() {
        DatasetBuilder::new(Collection::Flags).pct_edited(1.0);
    }
}

//! Synthetic world-flag generator.
//!
//! Deterministic: flag `i` of a seeded generator is always the same image.
//! Layouts mirror the dominant real-world flag families so the collection's
//! color-histogram statistics resemble the paper's flag data set (its reference \[9\]).

use crate::palette::FLAG_COLORS;
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The layout families flags are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagLayout {
    /// Three horizontal bands (France rotated, Germany, …).
    HorizontalTricolor,
    /// Three vertical bands (France, Italy, …).
    VerticalTricolor,
    /// Two horizontal bands (Poland, Ukraine, …).
    Bicolor,
    /// Many thin horizontal stripes (US stripes, Greece, …).
    Stripes,
    /// A Scandinavian cross.
    NordicCross,
    /// A canton (corner rectangle) over horizontal stripes.
    Canton,
    /// A centered disc (Japan, Bangladesh, …).
    CenterDisc,
    /// A field with a contrasting border (Maldives-like frame).
    Border,
    /// A diagonal band between two triangles (DR Congo, Tanzania, …).
    Diagonal,
}

const LAYOUTS: [FlagLayout; 9] = [
    FlagLayout::HorizontalTricolor,
    FlagLayout::VerticalTricolor,
    FlagLayout::Bicolor,
    FlagLayout::Stripes,
    FlagLayout::NordicCross,
    FlagLayout::Canton,
    FlagLayout::CenterDisc,
    FlagLayout::Border,
    FlagLayout::Diagonal,
];

/// Deterministic flag generator.
pub struct FlagGenerator {
    seed: u64,
    width: u32,
    height: u32,
}

impl FlagGenerator {
    /// Creates a generator for `width`×`height` flags.
    pub fn new(seed: u64, width: u32, height: u32) -> Self {
        assert!(width >= 12 && height >= 9, "flags need a minimal canvas");
        FlagGenerator {
            seed,
            width,
            height,
        }
    }

    /// A generator with the default 90×60 canvas.
    pub fn with_seed(seed: u64) -> Self {
        FlagGenerator::new(seed, 90, 60)
    }

    /// The layout family flag `index` uses.
    pub fn layout_of(&self, index: u64) -> FlagLayout {
        LAYOUTS[(index as usize) % LAYOUTS.len()]
    }

    /// Generates flag `index`. The same `(seed, index)` always produces the
    /// same image.
    pub fn generate(&self, index: u64) -> RasterImage {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ (index.wrapping_mul(0x9E3779B97F4A7C15)));
        let layout = self.layout_of(index);
        let w = self.width as i64;
        let h = self.height as i64;
        // Pick three distinct palette colors, weighted by real-world flag
        // color frequency (red/white/blue-heavy).
        let mut picks: Vec<Rgb> = Vec::with_capacity(3);
        while picks.len() < 3 {
            let c = FLAG_COLORS
                [crate::palette::pick_weighted(&mut rng, &crate::palette::FLAG_COLOR_WEIGHTS)];
            if !picks.contains(&c) {
                picks.push(c);
            }
        }
        let (c1, c2, c3) = (picks[0], picks[1], picks[2]);
        let mut img = RasterImage::filled(self.width, self.height, c1).unwrap();
        match layout {
            FlagLayout::HorizontalTricolor => {
                draw::fill_rect(&mut img, &Rect::new(0, h / 3, w, 2 * h / 3), c2);
                draw::fill_rect(&mut img, &Rect::new(0, 2 * h / 3, w, h), c3);
            }
            FlagLayout::VerticalTricolor => {
                draw::fill_rect(&mut img, &Rect::new(w / 3, 0, 2 * w / 3, h), c2);
                draw::fill_rect(&mut img, &Rect::new(2 * w / 3, 0, w, h), c3);
            }
            FlagLayout::Bicolor => {
                draw::fill_rect(&mut img, &Rect::new(0, h / 2, w, h), c2);
            }
            FlagLayout::Stripes => {
                let n = rng.gen_range(5..=9);
                let band = h / n;
                for i in (1..n).step_by(2) {
                    draw::fill_rect(&mut img, &Rect::new(0, i * band, w, (i + 1) * band), c2);
                }
            }
            FlagLayout::NordicCross => {
                let bar = (h / 6).max(2);
                let cx = w / 3;
                draw::fill_rect(
                    &mut img,
                    &Rect::new(0, h / 2 - bar / 2, w, h / 2 + bar / 2),
                    c2,
                );
                draw::fill_rect(&mut img, &Rect::new(cx - bar / 2, 0, cx + bar / 2, h), c2);
            }
            FlagLayout::Canton => {
                let n = 7;
                let band = h / n;
                for i in (1..n).step_by(2) {
                    draw::fill_rect(&mut img, &Rect::new(0, i * band, w, (i + 1) * band), c2);
                }
                draw::fill_rect(&mut img, &Rect::new(0, 0, 2 * w / 5, h / 2), c3);
            }
            FlagLayout::CenterDisc => {
                let r = h / 4;
                draw::fill_circle(&mut img, w / 2, h / 2, r, c2);
            }
            FlagLayout::Border => {
                let t = (h / 8).max(2);
                draw::fill_rect(&mut img, &Rect::new(t, t, w - t, h - t), c2);
            }
            FlagLayout::Diagonal => {
                draw::fill_triangle(&mut img, (0, 0), (w - 1, 0), (0, h - 1), c2);
                let t = (h / 6).max(2);
                for off in -t..=t {
                    draw::draw_line(&mut img, (0, h - 1 + off), (w - 1, off), c3);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};

    #[test]
    fn deterministic_per_seed_and_index() {
        let g1 = FlagGenerator::with_seed(7);
        let g2 = FlagGenerator::with_seed(7);
        assert_eq!(g1.generate(12), g2.generate(12));
        // Different index → (almost always) a different flag.
        assert_ne!(g1.generate(12), g1.generate(13));
        // Different seed → different colors for the same index.
        let g3 = FlagGenerator::with_seed(8);
        assert_ne!(g1.generate(12), g3.generate(12));
    }

    #[test]
    fn layouts_cycle() {
        let g = FlagGenerator::with_seed(1);
        assert_eq!(g.layout_of(0), FlagLayout::HorizontalTricolor);
        assert_eq!(g.layout_of(9), FlagLayout::HorizontalTricolor);
        assert_eq!(g.layout_of(4), FlagLayout::NordicCross);
    }

    #[test]
    fn flags_are_low_entropy_color_images() {
        // Every flag must be dominated by at most a handful of colors — the
        // statistic that makes flags amenable to color-based retrieval.
        let g = FlagGenerator::with_seed(42);
        let q = RgbQuantizer::default_64();
        for i in 0..30 {
            let img = g.generate(i);
            let hist = ColorHistogram::extract(&img, &q);
            let nonzero = hist.nonzero().count();
            assert!(nonzero <= 6, "flag {i} has {nonzero} populated bins");
            let dominant = hist.dominant_bin().unwrap();
            assert!(
                hist.fraction(dominant) >= 0.2,
                "flag {i} dominant bin only {}",
                hist.fraction(dominant)
            );
        }
    }

    #[test]
    fn custom_canvas_respected() {
        let g = FlagGenerator::new(3, 30, 20);
        let img = g.generate(0);
        assert_eq!((img.width(), img.height()), (30, 20));
    }

    #[test]
    #[should_panic(expected = "minimal canvas")]
    fn tiny_canvas_rejected() {
        FlagGenerator::new(1, 4, 4);
    }
}

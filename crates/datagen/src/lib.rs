#![warn(missing_docs)]

//! # mmdb-datagen
//!
//! Synthetic datasets and workloads for the performance evaluation.
//!
//! The paper evaluated on two collections scraped from 2006-era web sites —
//! "images of flags around the world" and "college football helmets" — both
//! long gone. Color-based retrieval only depends on the color statistics of
//! the collection (flags and logos: few saturated colors, large uniform
//! regions), so this crate synthesizes equivalent collections
//! deterministically from a seed:
//!
//! * [`flags`] — world-flag-like images over a real flag-color palette
//!   (tricolors, stripes, nordic crosses, cantons, discs, borders);
//! * [`helmets`] — college-helmet-like images (shell, center stripe,
//!   facemask, logo disc) over team-color pairs;
//! * [`edits`] — random edit-sequence variants of a base image with a
//!   controllable probability of containing a non-bound-widening operation
//!   (`Merge` with a target);
//! * [`dataset`] — assembles a full augmented database at a given
//!   "percentage of images stored as editing operations" (the x-axis of
//!   Figures 3 and 4) and reports its Table 2-style parameters;
//! * [`workload`] — random color range queries of the paper's
//!   "at least X% of color C" shape.

pub mod dataset;
pub mod edits;
pub mod flags;
pub mod helmets;
pub mod palette;
pub mod workload;

pub use dataset::{Collection, DatasetBuilder, DatasetInfo};
pub use edits::{VariantConfig, VariantGenerator};
pub use workload::QueryGenerator;

//! Property tests for the bound-interval index: on random databases, the
//! `Indexed` plan must return exactly the result set of the RBM and BWM
//! plans, under both rule profiles, and it must keep doing so *immediately*
//! after inserts and deletes (the epoch discipline: a mutation can never
//! leave the served index stale).

use mmdbms::prelude::*;
use mmdbms::MultimediaDatabase;
use proptest::prelude::*;

const W: i64 = 24;
const H: i64 = 16;

const PALETTE: [Rgb; 5] = [
    Rgb::RED,
    Rgb::GREEN,
    Rgb::BLUE,
    Rgb::WHITE,
    Rgb::new(0xCE, 0x11, 0x26),
];

/// One operation of a randomly generated variant sequence.
#[derive(Clone, Debug)]
enum Op {
    /// Define a region, then recolor `from` to `to` inside it.
    Recolor {
        x0: i64,
        y0: i64,
        w: i64,
        h: i64,
        from: usize,
        to: usize,
    },
    /// Whole-image blur (a bound-widening Combine).
    Blur,
    /// Merge another image into this one (non-bound-widening; exercises the
    /// reference graph and with it transitive invalidation).
    Merge,
}

/// A base image: horizontal stripes of two palette colors.
#[derive(Clone, Debug)]
struct BaseSpec {
    top: usize,
    bottom: usize,
    split: i64,
}

#[derive(Clone, Debug)]
struct QuerySpec {
    color: usize,
    lo: f64,
    width: f64,
}

fn arb_base() -> impl Strategy<Value = BaseSpec> {
    (0usize..PALETTE.len(), 0usize..PALETTE.len(), 1i64..H)
        .prop_map(|(top, bottom, split)| BaseSpec { top, bottom, split })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0i64..W - 1,
            0i64..H - 1,
            1i64..W,
            1i64..H,
            0usize..PALETTE.len(),
            0usize..PALETTE.len(),
        )
            .prop_map(|(x0, y0, w, h, from, to)| Op::Recolor {
                x0,
                y0,
                w,
                h,
                from,
                to
            }),
        Just(Op::Blur),
        Just(Op::Merge),
    ]
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (0usize..PALETTE.len(), 0.0f64..0.6, 0.05f64..1.0).prop_map(|(color, lo, width)| QuerySpec {
        color,
        lo,
        width,
    })
}

fn raster_of(spec: &BaseSpec) -> RasterImage {
    let mut img = RasterImage::filled(W as u32, H as u32, PALETTE[spec.bottom]).unwrap();
    mmdb_imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, W, spec.split), PALETTE[spec.top]);
    img
}

fn sequence_of(base: ImageId, ops: &[Op], merge_target: ImageId) -> EditSequence {
    let mut b = EditSequence::builder(base);
    for op in ops {
        b = match *op {
            Op::Recolor {
                x0,
                y0,
                w,
                h,
                from,
                to,
            } => b
                .define(Rect::new(x0, y0, (x0 + w).min(W), (y0 + h).min(H)))
                .modify(PALETTE[from], PALETTE[to]),
            Op::Blur => b.blur(),
            Op::Merge => b.merge_into(merge_target, 0, 0),
        };
    }
    b.build()
}

/// All three scan-equivalent plans agree on every query, under a profile.
fn assert_plans_agree(db: &MultimediaDatabase, queries: &[QuerySpec], profile: RuleProfile) {
    for spec in queries {
        let query = ColorRangeQuery::new(
            db.bin_of(PALETTE[spec.color]),
            spec.lo,
            (spec.lo + spec.width).min(1.0),
        );
        let rbm = db
            .query_range_with(&query, QueryPlan::Rbm, profile)
            .unwrap()
            .sorted_results();
        let bwm = db
            .query_range_with(&query, QueryPlan::Bwm, profile)
            .unwrap()
            .sorted_results();
        let indexed = db
            .query_range_with(&query, QueryPlan::Indexed, profile)
            .unwrap()
            .sorted_results();
        assert_eq!(rbm, bwm, "RBM vs BWM under {profile:?} on {query:?}");
        assert_eq!(
            rbm, indexed,
            "RBM vs Indexed under {profile:?} on {query:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_plan_matches_scans_through_mutations(
        bases in proptest::collection::vec(arb_base(), 2..4),
        variants in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..5), 2..6),
        late_variant in proptest::collection::vec(arb_op(), 1..5),
        queries in proptest::collection::vec(arb_query(), 1..5),
    ) {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base_ids: Vec<ImageId> = bases
            .iter()
            .map(|b| db.insert_image(&raster_of(b)).unwrap())
            .collect();
        let mut edited_ids = Vec::new();
        for (i, ops) in variants.iter().enumerate() {
            let base = base_ids[i % base_ids.len()];
            // Merges target a *different* base, so deleting that base's
            // subtree exercises transitive invalidation through refs.
            let target = base_ids[(i + 1) % base_ids.len()];
            edited_ids.push(db.insert_edited(sequence_of(base, ops, target)).unwrap());
        }

        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            assert_plans_agree(&db, &queries, profile);
        }

        // Immediately after an insert the index must re-sync, never serve
        // the pre-insert view.
        let late = db
            .insert_edited(sequence_of(base_ids[0], &late_variant, base_ids[1 % base_ids.len()]))
            .unwrap();
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            assert_plans_agree(&db, &queries, profile);
        }

        // ...and immediately after deletes (which also reclassify BWM
        // clusters and trigger transitive invalidation).
        db.delete(late).unwrap();
        if let Some(&victim) = edited_ids.first() {
            db.delete(victim).unwrap();
        }
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            assert_plans_agree(&db, &queries, profile);
        }
    }
}

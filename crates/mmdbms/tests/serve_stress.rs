//! Concurrent mixed-workload stress test for the query server: several
//! client threads issue range queries over the wire while another thread
//! mutates the database (inserts and deletes) through the same shared
//! handle. Pass criteria: no lost responses, no reply carrying the wrong
//! request id (the client verifies ids on every call), and stats() results
//! that stay monotonically consistent while the workload runs.

use mmdbms::datagen::helmets::HelmetGenerator;
use mmdbms::prelude::*;
use mmdbms::server::protocol::{PlanKind, ProfileKind};
use mmdbms::server::{Client, ClientError, QueryServer, RangeRequest, ServerConfig};
use mmdbms::MultimediaDatabase;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 60;

#[test]
fn concurrent_queries_survive_inserts_and_deletes() {
    let db = Arc::new(MultimediaDatabase::in_memory(Box::new(
        RgbQuantizer::default_64(),
    )));
    let generator = HelmetGenerator::with_seed(7);
    for i in 0..10 {
        db.insert_image(&generator.generate(i)).unwrap();
    }

    let server = QueryServer::bind(
        "127.0.0.1:0",
        Arc::<MultimediaDatabase>::clone(&db) as Arc<dyn mmdbms::server::QueryBackend>,
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    // Mutator: churn inserts and deletes through the same shared handle the
    // server's workers are querying. Each round also stores and deletes an
    // *edited* image, so the bound-interval index sees the full invalidation
    // surface (epoch bumps, entry removal, reference-graph links) mid-query.
    let mutator = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let generator = HelmetGenerator::with_seed(99);
            let mut churned = 0u64;
            let mut i = 100;
            while !done.load(Ordering::SeqCst) {
                let id = db.insert_image(&generator.generate(i)).unwrap();
                let edited = db
                    .insert_edited(EditSequence::builder(id).blur().build())
                    .unwrap();
                db.delete(edited).unwrap();
                db.delete(id).unwrap();
                churned += 1;
                i += 1;
            }
            churned
        })
    };

    // Stats poller: the cache counters are cumulative, so from one thread's
    // point of view successive reads must never go backwards, and the
    // catalog counts must stay plausible under the churn above.
    let poller = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut last_hits = 0u64;
            let mut last_misses = 0u64;
            let mut polls = 0u64;
            while !done.load(Ordering::SeqCst) {
                let stats = client.stats().unwrap();
                assert!(
                    stats.cache_hits >= last_hits && stats.cache_misses >= last_misses,
                    "cumulative cache counters went backwards: \
                     {}/{} after {last_hits}/{last_misses}",
                    stats.cache_hits,
                    stats.cache_misses,
                );
                assert!(stats.binary_count >= 10, "base images disappeared");
                assert!(stats.binary_count <= 11, "churned image leaked");
                last_hits = stats.cache_hits;
                last_misses = stats.cache_misses;
                polls += 1;
            }
            polls
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut answered = 0usize;
                for q in 0..QUERIES_PER_CLIENT {
                    let request = RangeRequest {
                        plan: match q % 3 {
                            0 => PlanKind::Bwm,
                            1 => PlanKind::Rbm,
                            _ => PlanKind::Indexed,
                        },
                        profile: ProfileKind::Conservative,
                        bin: ((c * QUERIES_PER_CLIENT + q) % 64) as u32,
                        pct_min: 0.05,
                        pct_max: 1.0,
                    };
                    // The client itself asserts the response id matches the
                    // request id; a structured OVERLOADED is acceptable
                    // under stress, anything else is a failure.
                    match client.range(request) {
                        Ok(_) => answered += 1,
                        Err(ClientError::Server {
                            status: mmdbms::server::Status::Overloaded,
                            ..
                        }) => answered += 1,
                        Err(other) => panic!("client {c} query {q}: {other}"),
                    }
                }
                answered
            })
        })
        .collect();

    let mut total_answered = 0;
    for handle in clients {
        total_answered += handle.join().unwrap();
    }
    done.store(true, Ordering::SeqCst);
    let churned = mutator.join().unwrap();
    let polls = poller.join().unwrap();

    assert_eq!(
        total_answered,
        CLIENTS * QUERIES_PER_CLIENT,
        "every request must receive exactly one response"
    );
    assert!(churned > 0, "mutator never ran");
    assert!(polls > 0, "stats poller never ran");

    // Post-churn consistency: with the database quiescent again, the indexed
    // plan must agree bin-for-bin with a fresh RBM scan over the wire — the
    // epoch discipline may serve an index built mid-churn only after
    // re-syncing it, so a surviving stale bound would show up here as a
    // false negative (or phantom) against the scan.
    let mut verifier = Client::connect(addr).unwrap();
    for bin in 0..64u32 {
        let request = |plan| RangeRequest {
            plan,
            profile: ProfileKind::Conservative,
            bin,
            pct_min: 0.02,
            pct_max: 1.0,
        };
        let mut scan = verifier.range(request(PlanKind::Rbm)).unwrap().ids;
        let mut indexed = verifier.range(request(PlanKind::Indexed)).unwrap().ids;
        scan.sort_unstable();
        indexed.sort_unstable();
        assert_eq!(
            scan, indexed,
            "indexed plan diverged from the post-churn scan at bin {bin}"
        );
    }

    let drained = server.shutdown();
    // Everything was answered before shutdown began.
    assert_eq!(drained.queued_at_stop, 0);
}

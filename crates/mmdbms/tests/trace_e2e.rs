//! End-to-end tests for cross-layer request tracing: wire-propagated trace
//! ids, tail-sampled retroactive keeps, and queue-wait attribution visible
//! through the `/traces/<id>` exposition endpoint.
//!
//! The trace store and keep threshold are process-global, so every test
//! takes the same lock — otherwise one test's `clear()` or threshold change
//! would race another's assertions.

use mmdbms::datagen::helmets::HelmetGenerator;
use mmdbms::prelude::*;
use mmdbms::server::protocol::{PlanKind, ProfileKind};
use mmdbms::server::{
    BackendError, Client, LookupReply, QueryBackend, QueryServer, RangeReply, RangeRequest,
    ServerConfig, StatsReply, TraceContext, TraceMode,
};
use mmdbms::telemetry::{
    next_trace_id, serve_with, set_trace_keep_threshold, trace_store, KeepReason, ServeOptions,
    DEFAULT_TRACE_KEEP_THRESHOLD,
};
use mmdbms::MultimediaDatabase;
use std::io::{Read as _, Write as _};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that touch the process-global trace store/threshold.
fn global_trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panic in another test must not wedge the rest of the suite.
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn seeded_db() -> Arc<MultimediaDatabase> {
    let db = Arc::new(MultimediaDatabase::in_memory(Box::new(
        RgbQuantizer::default_64(),
    )));
    let generator = HelmetGenerator::with_seed(11);
    for i in 0..6 {
        db.insert_image(&generator.generate(i)).unwrap();
    }
    db
}

fn range_request() -> RangeRequest {
    RangeRequest {
        plan: PlanKind::Bwm,
        profile: ProfileKind::Conservative,
        bin: 3,
        pct_min: 0.0,
        pct_max: 1.0,
    }
}

#[test]
fn trace_ids_round_trip_under_concurrency() {
    let _guard = global_trace_lock();
    trace_store().clear();
    let db = seeded_db();
    let server = QueryServer::bind(
        "127.0.0.1:0",
        db as Arc<dyn QueryBackend>,
        ServerConfig {
            workers: 4,
            trace_mode: TraceMode::Tail,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                assert_eq!(client.protocol_version(), 2);
                let mut sent = Vec::new();
                for _ in 0..25 {
                    let ctx = TraceContext::generate(true);
                    let (_reply, echoed) = client.range_traced(range_request(), 0, ctx).unwrap();
                    assert_eq!(
                        echoed,
                        Some(ctx.trace_id),
                        "server must echo the exact trace id it was sent"
                    );
                    sent.push(ctx.trace_id);
                }
                sent
            })
        })
        .collect();
    let mut all_ids = Vec::new();
    for h in handles {
        all_ids.extend(h.join().unwrap());
    }
    server.shutdown();

    // 100 distinct ids, none mixed up between pipelined connections.
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), 100, "trace ids must be distinct");
    // Sampled contexts are kept unconditionally by the tail sampler, and
    // 100 fits within the store's bounded capacity, so all must survive.
    let kept = trace_store().len();
    assert!(kept >= 100, "sampled traces must be kept, got {kept}");
}

#[test]
fn slow_query_is_kept_retroactively_without_sampling() {
    let _guard = global_trace_lock();
    trace_store().clear();
    // Any real query runs longer than 1µs, so an *unsampled* trace must be
    // kept retroactively with reason "slow".
    set_trace_keep_threshold(Duration::from_micros(1));
    let db = seeded_db();
    let server = QueryServer::bind(
        "127.0.0.1:0",
        db as Arc<dyn QueryBackend>,
        ServerConfig {
            trace_mode: TraceMode::Tail,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let ctx = TraceContext {
        trace_id: next_trace_id(),
        sampled: false,
    };
    let (_, echoed) = client.range_traced(range_request(), 0, ctx).unwrap();
    assert_eq!(echoed, Some(ctx.trace_id));
    let stored = trace_store()
        .get(ctx.trace_id)
        .expect("slow unsampled trace must be kept retroactively");
    assert_eq!(stored.keep_reason, KeepReason::Slow);
    assert_eq!(stored.opcode, "range");
    assert_eq!(stored.status, "OK");
    assert!(stored.total >= stored.queue_wait);
    assert!(stored.trace.span("queue_wait").is_some());
    assert!(stored.trace.span("execute").is_some());

    // With the threshold back at its default, the same fast query is
    // dropped: that asymmetry is the whole point of tail sampling.
    set_trace_keep_threshold(DEFAULT_TRACE_KEEP_THRESHOLD);
    let ctx2 = TraceContext {
        trace_id: next_trace_id(),
        sampled: false,
    };
    client.range_traced(range_request(), 0, ctx2).unwrap();
    assert!(
        trace_store().get(ctx2.trace_id).is_none(),
        "fast unsampled trace must be dropped"
    );
    server.shutdown();
}

/// A backend whose range queries take a fixed time, so a second request
/// demonstrably waits in the admission queue behind the single worker.
struct SlowBackend(Duration);

impl QueryBackend for SlowBackend {
    fn range(&self, req: &RangeRequest) -> Result<RangeReply, BackendError> {
        std::thread::sleep(self.0);
        Ok(RangeReply {
            ids: vec![u64::from(req.bin)],
            bounds_computed: 0,
            shortcut_emissions: 0,
        })
    }

    fn knn(&self, _probe_id: u64, _k: u32) -> Result<Vec<(u64, f64)>, BackendError> {
        Ok(Vec::new())
    }

    fn lookup(&self, id: u64) -> Result<LookupReply, BackendError> {
        Err(BackendError::NotFound(id))
    }

    fn stats(&self) -> StatsReply {
        StatsReply {
            binary_count: 0,
            edited_count: 0,
            binary_bytes: 0,
            edited_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    let status = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, body.to_string())
}

#[test]
fn queued_request_reports_nonzero_queue_wait_via_http() {
    let _guard = global_trace_lock();
    trace_store().clear();
    let server = QueryServer::bind(
        "127.0.0.1:0",
        Arc::new(SlowBackend(Duration::from_millis(80))) as Arc<dyn QueryBackend>,
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            trace_mode: TraceMode::Tail,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let exposition = serve_with("127.0.0.1:0", ServeOptions::default()).unwrap();

    // Occupy the only worker, then queue a sampled request behind it.
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.range(range_request()).unwrap();
    });
    std::thread::sleep(Duration::from_millis(20));
    let mut client = Client::connect(addr).unwrap();
    let ctx = TraceContext::generate(true);
    let (_, echoed) = client.range_traced(range_request(), 0, ctx).unwrap();
    holder.join().unwrap();
    assert_eq!(echoed, Some(ctx.trace_id));

    // The summary list knows the id…
    let (status, list) = http_get(exposition.local_addr(), "/traces");
    assert_eq!(status, 200);
    let hex_id = format!("{:016x}", ctx.trace_id);
    assert!(
        list.contains(&hex_id),
        "summary list must contain {hex_id}: {list}"
    );

    // …and the full tree attributes a nonzero queue wait (the request sat
    // behind the 80ms holder for ~60ms).
    let (status, body) = http_get(exposition.local_addr(), &format!("/traces/{hex_id}"));
    assert_eq!(status, 200);
    assert!(
        body.contains("\"queue_wait\""),
        "missing queue_wait span: {body}"
    );
    let wait_nanos: u64 = body
        .split("\"queue_wait_nanos\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("queue_wait_nanos field");
    assert!(
        wait_nanos > 10_000_000,
        "queued request must report substantial queue wait, got {wait_nanos}ns"
    );

    // Unknown ids are a clean 404, not a panic or empty 200.
    let (status, _) = http_get(exposition.local_addr(), "/traces/ffffffffffffffff");
    assert_eq!(status, 404);

    exposition.shutdown();
    server.shutdown();
}

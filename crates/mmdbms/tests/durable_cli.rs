//! End-to-end durability tests of the `mmdbctl` binary: SIGKILL a churning
//! process and recover its directory; SIGINT a server and verify the drain
//! left zero WAL tail.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn mmdbctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(args: &[&str]) -> String {
    let out = mmdbctl(args);
    assert!(
        out.status.success(),
        "mmdbctl {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdbctl_dur_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Spawns a long-running `mmdbctl` subcommand with piped stdio.
fn spawn(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns")
}

/// Reads lines from the child's stdout until `pred` matches one (returning
/// it) or EOF.
fn wait_for_line(child: &mut Child, pred: impl Fn(&str) -> bool) -> Option<String> {
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let reader = std::io::BufReader::new(stdout);
    for line in reader.lines() {
        let line = line.ok()?;
        if pred(&line) {
            return Some(line);
        }
    }
    None
}

/// SIGKILL mid-churn, then recover: the directory must pass fsck (a torn
/// tail is acceptable crash residue, not corruption), reopen, and keep the
/// plan equivalence RBM ≡ Indexed on the recovered catalog.
#[test]
fn sigkill_mid_churn_recovers_consistent_database() {
    let db = temp_db("kill");
    let db_s = db.to_str().unwrap();
    ok(&["create", "--db", db_s, "--fsync", "always"]);

    // `--ops 0` churns forever; progress lines are flushed every 4 ops so
    // we know real work was acknowledged before the kill.
    let mut child = spawn(&[
        "churn",
        "--db",
        db_s,
        "--ops",
        "0",
        "--report-every",
        "4",
        "--fsync",
        "always",
    ]);
    let progress = wait_for_line(&mut child, |l| l.starts_with("churn: "))
        .expect("churn reported progress before dying");
    assert!(
        progress.contains("op(s)"),
        "unexpected progress line {progress:?}"
    );
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("child reaped");

    // Offline check first: errors mean recovery would lose acknowledged
    // data; a torn final record only shows up as a note.
    let fsck = ok(&["fsck", db_s]);
    assert!(
        !fsck.contains("error ["),
        "fsck found errors after SIGKILL:\n{fsck}"
    );

    // The recovered catalog serves queries, and the recovered index path
    // agrees with the scan path.
    let ls = ok(&["ls", "--db", db_s]);
    assert!(ls.contains("binary"), "no images survived the kill:\n{ls}");
    ok(&["verify", "--db", db_s]);
    let rbm = ok(&[
        "query", "--db", db_s, "--color", "#ff0000", "--min", "0.05", "--plan", "rbm",
    ]);
    let indexed = ok(&[
        "query", "--db", db_s, "--color", "#ff0000", "--min", "0.05", "--plan", "indexed",
    ]);
    let ids = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.trim_start().starts_with("img#"))
            .map(|l| l.trim().to_string())
            .collect()
    };
    assert_eq!(
        ids(&rbm),
        ids(&indexed),
        "plans disagree after crash recovery"
    );

    std::fs::remove_dir_all(&db).ok();
}

/// SIGINT on `serve` must drain to disk — final snapshot plus WAL fsync —
/// so the next open replays zero records (verified via fsck's replayable
/// count, which is exactly what recovery would replay).
#[test]
fn serve_sigint_drain_leaves_zero_replay() {
    let db = temp_db("drain");
    let db_s = db.to_str().unwrap();
    ok(&["create", "--db", db_s]);
    ok(&[
        "gen",
        "--db",
        db_s,
        "--collection",
        "flags",
        "--count",
        "3",
        "--augment",
        "2",
    ]);

    // Before the server runs, the directory has an un-snapshotted WAL tail
    // from `gen` — the drain, not `gen`, must be what cleans it up. (`gen`
    // flushes too, so force a tail by checking only after the serve cycle.)
    let mut child = spawn(&[
        "serve",
        "--db",
        db_s,
        "--listen",
        "127.0.0.1:0",
        "--warmup",
        "2",
    ]);
    wait_for_line(&mut child, |l| l.contains("serving /metrics")).expect("server came up");
    let pid = child.id().to_string();
    let kill = Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "kill -INT failed");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve exited nonzero after SIGINT");
    let stderr = {
        let mut s = String::new();
        use std::io::Read as _;
        child.stderr.take().unwrap().read_to_string(&mut s).ok();
        s
    };
    assert!(
        stderr.contains("flushed database to disk"),
        "drain did not run:\n{stderr}"
    );

    let fsck = ok(&["fsck", db_s]);
    assert!(
        fsck.contains("(0 replayable"),
        "drained shutdown left a WAL tail:\n{fsck}"
    );
    assert!(
        !fsck.contains("error ["),
        "fsck errors after clean shutdown:\n{fsck}"
    );

    // And the reopened database is immediately whole.
    let ls = ok(&["ls", "--db", db_s]);
    assert!(
        ls.contains("edited"),
        "catalog incomplete after drain:\n{ls}"
    );

    std::fs::remove_dir_all(&db).ok();
}

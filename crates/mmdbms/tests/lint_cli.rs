//! End-to-end test of `mmdbctl lint` against a database seeded with the
//! three canonical catalog defects: a dangling merge target (`E002`), a
//! reference cycle (`E004`), and a dead `Define` (`W101`).
//!
//! The first two cannot be created through the validated insert path, so the
//! test rewrites the catalog file directly — exactly the kind of corruption
//! (crash, bit rot, an older buggy writer) the lint exists to catch.

use mmdbms::editops::EditSequence;
use mmdbms::prelude::*;
use mmdbms::storage::{Catalog, CatalogEntry};
use mmdbms::MultimediaDatabase;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

fn mmdbctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdbctl_lint_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a database with one healthy warning (dead Define) through the
/// front door, then splices a dangling merge target and a two-node
/// reference cycle into the catalog file behind the engine's back.
fn seed_bad_database(dir: &Path) {
    {
        let db = MultimediaDatabase::create(dir, Box::new(RgbQuantizer::default_64())).unwrap();
        let mut img = RasterImage::filled(16, 16, Rgb::WHITE).unwrap();
        mmdbms::imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, 16, 8), Rgb::RED);
        let base = db.insert_image(&img).unwrap();
        // W101: the first Define is shadowed before any op reads it. Warn
        // level, so the validated insert path accepts it.
        db.insert_edited(
            EditSequence::builder(base)
                .define(Rect::new(0, 0, 2, 2))
                .define(Rect::new(0, 0, 8, 8))
                .blur()
                .build(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    // Splice in the error-level defects. The catalog now lives inside the
    // latest snapshot; rewrite it in place (same covered seqno, so the
    // spliced snapshot simply replaces the healthy one).
    let snaps = mmdbms::durable::SnapshotStore::open(&dir.join("snapshots")).unwrap();
    let snap = snaps.load_latest().unwrap().unwrap();
    let (mut catalog, free_list) = Catalog::decode(&snap.payload).unwrap();
    let base = ImageId::new(1);
    // E002: merge target that does not exist.
    let dangling = catalog.allocate_id();
    catalog.insert(
        dangling,
        CatalogEntry::Edited {
            sequence: Arc::new(
                EditSequence::builder(base)
                    .define(Rect::new(0, 0, 4, 4))
                    .merge_into(ImageId::new(9999), 0, 0)
                    .build(),
            ),
        },
    );
    // E004: two edited images whose bases reference each other.
    let a = catalog.allocate_id();
    let b = catalog.allocate_id();
    catalog.insert(
        a,
        CatalogEntry::Edited {
            sequence: Arc::new(EditSequence::builder(b).blur().build()),
        },
    );
    catalog.insert(
        b,
        CatalogEntry::Edited {
            sequence: Arc::new(EditSequence::builder(a).blur().build()),
        },
    );
    snaps
        .write(
            snap.covered_seqno,
            snap.blob_gen,
            &catalog.encode(&free_list),
        )
        .unwrap();
}

#[test]
fn lint_reports_seeded_defects_and_exits_nonzero() {
    let dir = temp_db("seeded");
    seed_bad_database(&dir);
    let db_s = dir.to_str().unwrap();

    let out = mmdbctl(&["lint", "--db", db_s]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "lint must exit nonzero on errors:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("E002"), "dangling merge target:\n{stdout}");
    assert!(stdout.contains("E004"), "reference cycle:\n{stdout}");
    assert!(stdout.contains("W101"), "dead define:\n{stdout}");
    assert!(stderr.contains("error-level diagnostic"), "{stderr}");

    // JSON form carries the same codes, machine-readable.
    let out = mmdbctl(&["lint", "--db", db_s, "--format", "json"]);
    assert!(!out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    for code in ["E002", "E004", "W101"] {
        assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
    }

    // `verify` (fsck) now reports the same error-level findings.
    let out = mmdbctl(&["verify", "--db", db_s]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("E002"), "{stdout}");
    assert!(stdout.contains("E004"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_clean_database_exits_zero_and_feeds_metrics() {
    let dir = temp_db("clean");
    {
        let db = MultimediaDatabase::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
        let mut img = RasterImage::filled(16, 16, Rgb::WHITE).unwrap();
        mmdbms::imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, 16, 8), Rgb::BLUE);
        let base = db.insert_image(&img).unwrap();
        db.insert_edited(
            EditSequence::builder(base)
                .define(Rect::new(0, 0, 8, 8))
                .modify(Rgb::BLUE, Rgb::GREEN)
                .build(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    let db_s = dir.to_str().unwrap();
    let out = mmdbctl(&["lint", "--db", db_s]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 sequence(s) analyzed"), "{stdout}");
    assert!(stdout.contains("1 audited (1 clean)"), "{stdout}");

    // In-process: a lint run surfaces through `metrics()` — run counter,
    // latency histogram, and per-lint series.
    let db = MultimediaDatabase::open(&dir).unwrap();
    mmdbms::register_all_metrics();
    let report = db.lint();
    assert!(!report.has_errors());
    let text = db.metrics().render_prometheus();
    assert!(text.contains("mmdb_analysis_runs_total"), "{text}");
    assert!(text.contains("mmdb_analysis_latency_seconds"), "{text}");
    assert!(text.contains("mmdb_analysis_diagnostics_total"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_prints_per_sequence_detail() {
    let dir = temp_db("analyze");
    {
        let db = MultimediaDatabase::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
        let img = RasterImage::filled(12, 12, Rgb::RED).unwrap();
        let base = db.insert_image(&img).unwrap();
        // One dead op (self-modify) in an otherwise healthy sequence.
        db.insert_edited(
            EditSequence::builder(base)
                .define(Rect::new(0, 0, 6, 6))
                .modify(Rgb::RED, Rgb::RED)
                .blur()
                .build(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    let db_s = dir.to_str().unwrap();
    let out = mmdbctl(&["analyze", "--db", db_s, "--id", "2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("soundness audit: clean"), "{stdout}");
    assert!(stdout.contains("dead ops: 1 removable"), "{stdout}");
    assert!(stdout.contains("W102"), "{stdout}");
    assert!(stdout.contains("bound-widening"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

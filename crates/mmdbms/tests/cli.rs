//! End-to-end tests of the `mmdbctl` binary: a full admin session against a
//! real on-disk database.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mmdbctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(args: &[&str]) -> String {
    let out = mmdbctl(args);
    assert!(
        out.status.success(),
        "mmdbctl {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdbctl_it_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn full_admin_session() {
    let db = temp_db("session");
    let db_s = db.to_str().unwrap();

    // create + seed
    let out = ok(&["create", "--db", db_s]);
    assert!(out.contains("created database"));
    let out = ok(&[
        "gen",
        "--db",
        db_s,
        "--collection",
        "flags",
        "--count",
        "4",
        "--augment",
        "2",
    ]);
    assert!(out.contains("12 objects"));

    // ls + info
    let out = ok(&["ls", "--db", db_s]);
    assert!(out.contains("binary"));
    assert!(out.contains("edited"));
    let out = ok(&["info", "--db", db_s]);
    assert!(out.contains("BWM structure"));
    let out = ok(&["info", "--db", db_s, "--id", "1"]);
    assert!(out.contains("dominant colors"));

    // query under every plan returns the same ids
    let mut plans = Vec::new();
    for plan in ["bwm", "rbm"] {
        let out = ok(&[
            "query", "--db", db_s, "--color", "#ce1126", "--min", "0.1", "--plan", plan,
        ]);
        let ids: Vec<String> = out
            .lines()
            .filter(|l| l.trim_start().starts_with("img#"))
            .map(|l| l.trim().to_string())
            .collect();
        plans.push(ids);
    }
    assert_eq!(plans[0], plans[1], "BWM and RBM disagree through the CLI");

    // export an image, then use it as a k-NN probe
    let probe = db.join("probe.ppm");
    ok(&["export", "--db", db_s, "--id", "1", probe.to_str().unwrap()]);
    let out = ok(&["knn", "--db", db_s, probe.to_str().unwrap(), "--k", "2"]);
    assert!(out.contains("img#1"), "{out}");
    let out = ok(&[
        "knn",
        "--db",
        db_s,
        probe.to_str().unwrap(),
        "--k",
        "2",
        "--augmented",
        "true",
    ]);
    assert!(out.contains("L1 = 0.0000"), "{out}");

    // print an edited image's script, round-trip it back in
    let script_out = ok(&["script", "--db", db_s, "--id", "2"]);
    assert!(script_out.starts_with("base "));
    let script_path = db.join("variant.edit");
    std::fs::write(&script_path, &script_out).unwrap();
    let out = ok(&["insert-script", "--db", db_s, script_path.to_str().unwrap()]);
    assert!(out.contains("inserted edited image"));

    // delete an edited image
    let out = ok(&["delete", "--db", db_s, "--id", "2"]);
    assert!(out.contains("deleted"));

    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn insert_external_ppm() {
    let db = temp_db("insert");
    let db_s = db.to_str().unwrap();
    ok(&["create", "--db", db_s]);
    // Author a tiny P3 image by hand.
    let ppm = db.join("tiny.ppm");
    std::fs::write(&ppm, "P3\n2 2\n255\n255 0 0 255 0 0 0 0 255 0 0 255\n").unwrap();
    let out = ok(&["insert", "--db", db_s, ppm.to_str().unwrap()]);
    assert!(out.contains("inserted img#1 (2x2)"), "{out}");
    let out = ok(&["query", "--db", db_s, "--color", "#ff0000", "--min", "0.4"]);
    assert!(out.contains("img#1"));
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn errors_are_reported_not_panicked() {
    let db = temp_db("errs");
    let db_s = db.to_str().unwrap();
    // Open of a missing database fails cleanly.
    let out = mmdbctl(&["ls", "--db", db_s]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    // Unknown subcommand.
    let out = mmdbctl(&["frobnicate"]);
    assert!(!out.status.success());
    // Bad color.
    ok(&["create", "--db", db_s]);
    let out = mmdbctl(&["query", "--db", db_s, "--color", "red", "--min", "0.1"]);
    assert!(!out.status.success());
    // Deleting a base that still has variants is refused.
    ok(&["gen", "--db", db_s, "--count", "1", "--augment", "1"]);
    let out = mmdbctl(&["delete", "--db", db_s, "--id", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("referenced"));
    std::fs::remove_dir_all(&db).ok();
}

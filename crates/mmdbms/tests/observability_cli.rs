//! End-to-end tests of the observability surface of `mmdbctl`: the
//! exposition server, the flight-recorder dump, the latency leaderboard,
//! and the JSON trace output.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn mmdbctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(args: &[&str]) -> String {
    let out = mmdbctl(args);
    assert!(
        out.status.success(),
        "mmdbctl {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdbctl_obs_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn seed_db(tag: &str) -> PathBuf {
    let db = temp_db(tag);
    let db_s = db.to_str().unwrap();
    ok(&["create", "--db", db_s]);
    ok(&[
        "gen",
        "--db",
        db_s,
        "--collection",
        "flags",
        "--count",
        "4",
        "--augment",
        "2",
    ]);
    db
}

/// Kills the child even when an assertion unwinds mid-test.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn serve_exposes_metrics_events_and_healthz() {
    let db = seed_db("serve");
    let db_s = db.to_str().unwrap();

    // Port 0: the kernel picks a free port; the server prints the bound
    // address on its first stdout line.
    let mut child = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_mmdbctl"))
            .args([
                "serve",
                "--db",
                db_s,
                "--listen",
                "127.0.0.1:0",
                "--warmup",
                "3",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("serve spawns"),
    );
    let stdout = child.0.stdout.take().expect("stdout piped");
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("server announces its address");
    assert!(
        first_line
            .contains("serving /metrics /events /healthz /readyz /traces /heat /alerts on http://"),
        "unexpected announce line: {first_line:?}"
    );
    let addr = first_line
        .rsplit("http://")
        .next()
        .unwrap()
        .trim()
        .to_string();

    assert!(http_get(&addr, "/healthz").contains("ok"));

    let metrics = http_get(&addr, "/metrics");
    for series in [
        r#"mmdb_query_range_latency_seconds_bucket{plan="rbm",le="+Inf"}"#,
        r#"mmdb_query_range_latency_seconds_bucket{plan="bwm",le="+Inf"}"#,
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
    // The warmup queries must have landed in both plans' histograms.
    for plan in ["rbm", "bwm"] {
        let count_line = format!(r#"mmdb_query_range_latency_seconds_count{{plan="{plan}"}} "#);
        let value = metrics
            .lines()
            .find_map(|l| l.strip_prefix(count_line.as_str()))
            .unwrap_or_else(|| panic!("no {count_line} line"));
        assert!(
            value.trim().parse::<u64>().unwrap() > 0,
            "{plan} histogram is empty"
        );
    }

    let events = http_get(&addr, "/events");
    assert!(events.contains(r#""kind": "query_end""#), "{events}");

    // Non-GET is rejected; unknown paths 404.
    assert!(http_get(&addr, "/nope").contains("404"));

    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn events_dumps_flight_recorder_json() {
    let db = seed_db("events");
    let db_s = db.to_str().unwrap();
    let out = ok(&["events", "--db", db_s, "--warmup", "2", "--limit", "6"]);
    assert!(out.contains(r#""events""#), "{out}");
    assert!(out.contains(r#""kind": "query_start""#), "{out}");
    assert!(out.contains(r#""kind": "query_end""#), "{out}");
    // --limit caps the dump.
    let entries = out.matches(r#""seq""#).count();
    assert!(entries <= 6, "expected at most 6 events, saw {entries}");
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn top_prints_percentile_leaderboard() {
    let db = seed_db("top");
    let db_s = db.to_str().unwrap();
    let out = ok(&["top", "--db", db_s, "--queries", "5"]);
    assert!(out.contains("p50") && out.contains("p99"), "{out}");
    assert!(
        out.contains(r#"mmdb_query_range_latency_seconds{plan="rbm"}"#),
        "{out}"
    );
    assert!(
        out.contains(r#"mmdb_query_range_latency_seconds{plan="bwm"}"#),
        "{out}"
    );
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn explain_emits_json_trace() {
    let db = seed_db("explain");
    let db_s = db.to_str().unwrap();
    let out = ok(&[
        "explain", "--db", db_s, "--color", "#ce1126", "--min", "0.1", "--json", "true",
    ]);
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains(r#""root""#), "{out}");
    assert!(out.contains(r#""duration_nanos""#), "{out}");
    // Durations render through the human formatter in the JSON too.
    assert!(out.contains(r#""duration""#), "{out}");
    std::fs::remove_dir_all(&db).ok();
}

//! Crash-recovery property tests: an on-disk database killed at *any*
//! record boundary — or mid-record, with a torn final frame — must recover
//! to exactly the state an in-memory oracle reaches by replaying the same
//! mutation prefix, and the recovered database must still satisfy the plan
//! equivalence RBM ≡ BWM ≡ Indexed under both rule profiles.
//!
//! Crash simulation: the WAL appends with plain unbuffered `write_all`, so
//! after each acknowledged mutation the data directory *is* the crash image
//! for "power loss right after this record" — we copy it aside. Torn writes
//! are simulated by truncating the active segment to a byte offset strictly
//! inside the final frame. Snapshot interleaving is exercised by flushing
//! (snapshot + index persist) at a random point in the history; crash
//! images taken after it recover via snapshot-plus-tail instead of full
//! replay.

use mmdbms::prelude::*;
use mmdbms::storage::DurabilityOptions;
use mmdbms::MultimediaDatabase;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const W: i64 = 24;
const H: i64 = 16;

const PALETTE: [Rgb; 4] = [Rgb::RED, Rgb::GREEN, Rgb::BLUE, Rgb::new(0xCE, 0x11, 0x26)];

/// One step of a random mutation history. Indices are taken modulo the
/// respective pools so every history is valid regardless of order.
#[derive(Clone, Debug)]
enum Mutation {
    InsertBase {
        top: usize,
        bottom: usize,
        split: i64,
    },
    InsertVariant {
        base_ix: usize,
        from: usize,
        to: usize,
        blur: bool,
    },
    Delete {
        victim_ix: usize,
    },
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    let n = PALETTE.len();
    prop_oneof![
        2 => (0..n, 0..n, 1i64..H)
            .prop_map(|(top, bottom, split)| Mutation::InsertBase { top, bottom, split }),
        3 => (0..8usize, 0..n, 0..n, 0..2usize)
            .prop_map(|(base_ix, from, to, blur)| Mutation::InsertVariant { base_ix, from, to, blur: blur == 1 }),
        1 => (0..8usize).prop_map(|victim_ix| Mutation::Delete { victim_ix }),
    ]
}

/// Tracks the id pools so disk and oracle replays stay in lockstep.
#[derive(Default)]
struct Pools {
    bases: Vec<ImageId>,
    edited: Vec<ImageId>,
}

/// Applies one mutation; both the on-disk run and every oracle replay go
/// through this single function, so any divergence is recovery's fault.
fn apply(db: &MultimediaDatabase, pools: &mut Pools, m: &Mutation) {
    match *m {
        Mutation::InsertBase { top, bottom, split } => {
            let mut img = RasterImage::filled(W as u32, H as u32, PALETTE[bottom]).unwrap();
            mmdb_imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, W, split), PALETTE[top]);
            pools.bases.push(db.insert_image(&img).unwrap());
        }
        Mutation::InsertVariant {
            base_ix,
            from,
            to,
            blur,
        } => {
            if pools.bases.is_empty() {
                // Degenerate prefix: promote to a base insert so histories
                // never depend on generation order.
                apply(
                    db,
                    pools,
                    &Mutation::InsertBase {
                        top: from,
                        bottom: to,
                        split: H / 2,
                    },
                );
                return;
            }
            let base = pools.bases[base_ix % pools.bases.len()];
            let mut b = EditSequence::builder(base)
                .define(Rect::new(0, 0, W / 2, H))
                .modify(PALETTE[from], PALETTE[to]);
            if blur {
                b = b.blur();
            }
            pools.edited.push(db.insert_edited(b.build()).unwrap());
        }
        Mutation::Delete { victim_ix } => {
            if pools.edited.is_empty() {
                return; // no-op on both sides
            }
            let victim = pools.edited.swap_remove(victim_ix % pools.edited.len());
            db.delete(victim).unwrap();
        }
    }
}

/// Recursive directory copy — the "crash image" of the data dir at a record
/// boundary.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mmdb_crash_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn quantizer() -> Box<dyn Quantizer> {
    Box::new(RgbQuantizer::default_64())
}

/// Durability tuned for the tests: no acknowledgment fsyncs (irrelevant to
/// logical recovery, and slow), tiny segments so histories cross rotation
/// boundaries, and no *background* snapshots — the facade's maintenance
/// thread must not mutate the directory while we copy it, so snapshots
/// happen only through explicit `flush()` on this thread.
fn test_opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: mmdbms::durable::FsyncPolicy::Never,
        segment_bytes: 2048,
        snapshot_every: u64::MAX,
    }
}

/// The oracle: an in-memory database after the first `upto` mutations.
fn oracle_after(history: &[Mutation], upto: usize) -> MultimediaDatabase {
    let db = MultimediaDatabase::in_memory(quantizer());
    let mut pools = Pools::default();
    for m in &history[..upto] {
        apply(&db, &mut pools, m);
    }
    db
}

/// Recovered state must be *observably identical* to the oracle: same ids,
/// same answers to range queries, and internal plan equivalence must hold.
fn assert_state_equiv(recovered: &MultimediaDatabase, oracle: &MultimediaDatabase, ctx: &str) {
    let mut rec_ids = recovered.storage().ids();
    let mut ora_ids = oracle.storage().ids();
    rec_ids.sort_unstable();
    ora_ids.sort_unstable();
    assert_eq!(rec_ids, ora_ids, "catalog ids diverge: {ctx}");
    for (color, lo) in [(Rgb::RED, 0.05), (Rgb::new(0xCE, 0x11, 0x26), 0.20)] {
        let query = ColorRangeQuery::new(oracle.bin_of(color), lo, 1.0);
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            let want = oracle
                .query_range_with(&query, QueryPlan::Rbm, profile)
                .unwrap()
                .sorted_results();
            for plan in [QueryPlan::Rbm, QueryPlan::Bwm, QueryPlan::Indexed] {
                let got = recovered
                    .query_range_with(&query, plan, profile)
                    .unwrap()
                    .sorted_results();
                assert_eq!(
                    got, want,
                    "{plan:?}/{profile:?} diverges from oracle RBM: {ctx}"
                );
            }
        }
    }
}

/// The active (highest-numbered) WAL segment and its current length.
fn active_segment(dir: &Path) -> (PathBuf, u64) {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let last = segs.pop().expect("wal has at least one segment");
    let len = std::fs::metadata(&last).unwrap().len();
    (last, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash at **every** record boundary of a random history (with a
    /// snapshot flushed at a random point): each crash image recovers to
    /// the oracle state of exactly that prefix.
    #[test]
    fn crash_at_every_record_boundary_recovers_oracle_state(
        history in proptest::collection::vec(arb_mutation(), 3..9),
        flush_frac in 0.0f64..1.0,
    ) {
        let tmp = TempDir::new("boundary");
        let data = tmp.0.join("db");
        let db = MultimediaDatabase::create_with(&data, quantizer(), test_opts()).unwrap();
        let flush_at = (flush_frac * history.len() as f64) as usize;
        let mut pools = Pools::default();
        for (i, m) in history.iter().enumerate() {
            apply(&db, &mut pools, m);
            if i == flush_at {
                db.flush().unwrap();
            }
            copy_dir(&data, &tmp.0.join(format!("crash_{i}")));
        }
        drop(db);
        for i in 0..history.len() {
            let recovered =
                MultimediaDatabase::open_with(&tmp.0.join(format!("crash_{i}")), test_opts())
                    .unwrap();
            let oracle = oracle_after(&history, i + 1);
            assert_state_equiv(&recovered, &oracle, &format!("crash after record {i}"));
        }
    }

    /// A torn final record — crash mid-write — must be truncated on open,
    /// recovering the previous boundary's state exactly.
    #[test]
    fn torn_final_record_recovers_previous_boundary(
        history in proptest::collection::vec(arb_mutation(), 2..7),
        cut_frac in 0.01f64..0.99,
    ) {
        let tmp = TempDir::new("torn");
        let data = tmp.0.join("db");
        let db = MultimediaDatabase::create_with(&data, quantizer(), test_opts()).unwrap();
        let mut pools = Pools::default();
        let mut boundaries = Vec::new(); // (active segment path, len) after op i
        for m in &history {
            apply(&db, &mut pools, m);
            boundaries.push(active_segment(&data));
        }
        drop(db);
        let n = history.len();
        let (ref last_seg, last_len) = boundaries[n - 1];
        let (ref prev_seg, prev_len) = boundaries[n - 2];
        // Start of the final record within its segment: the previous
        // boundary when no rotation happened in between, else just past the
        // fresh segment's header.
        let record_start = if last_seg == prev_seg {
            prev_len
        } else {
            mmdbms::durable::wal::SEGMENT_HEADER_BYTES
        };
        // Every record carries a nonempty frame, so there is always a byte
        // to tear off unless the final op was a pool-empty no-op delete —
        // skip those degenerate histories.
        if last_len > record_start + 1 {
            let cut = record_start + 1 + ((cut_frac * (last_len - record_start - 2) as f64) as u64);
            let crash = tmp.0.join("crash");
            copy_dir(&data, &crash);
            let torn_seg = crash.join("wal").join(last_seg.file_name().unwrap());
            let f = std::fs::OpenOptions::new().write(true).open(&torn_seg).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let recovered = MultimediaDatabase::open_with(&crash, test_opts()).unwrap();
            let info = recovered.recovery_info().expect("on-disk open reports recovery");
            prop_assert!(info.torn_bytes > 0, "expected a torn tail, got {info:?}");
            let oracle = oracle_after(&history, n - 1);
            assert_state_equiv(
                &recovered,
                &oracle,
                &format!("torn write at byte {cut} of final record"),
            );
        }
    }
}

/// A drained (clean) shutdown — final snapshot plus WAL fsync, as the
/// `serve` commands do on SIGINT — must leave nothing for the next open to
/// replay.
#[test]
fn clean_shutdown_needs_zero_replay() {
    let tmp = TempDir::new("clean");
    let data = tmp.0.join("db");
    let db = MultimediaDatabase::create_with(&data, quantizer(), test_opts()).unwrap();
    let mut pools = Pools::default();
    for i in 0..6 {
        apply(
            &db,
            &mut pools,
            &Mutation::InsertBase {
                top: i % PALETTE.len(),
                bottom: (i + 1) % PALETTE.len(),
                split: H / 2,
            },
        );
    }
    // The drain sequence from mmdbctl's serve paths.
    db.flush().unwrap();
    db.storage().wal_sync().unwrap();
    drop(db);
    let reopened = MultimediaDatabase::open_with(&data, test_opts()).unwrap();
    let info = reopened
        .recovery_info()
        .expect("on-disk open reports recovery");
    assert_eq!(
        info.replayed_records, 0,
        "clean shutdown left WAL tail: {info:?}"
    );
    assert_eq!(
        info.torn_bytes, 0,
        "clean shutdown left torn bytes: {info:?}"
    );
    assert_eq!(reopened.storage().ids().len(), 6);
}

/// The on-disk format version is tied to the wire-protocol version: bumping
/// one without the other is a release mistake this test turns into a
/// compile-adjacent failure.
#[test]
fn durable_format_version_tracks_wire_protocol() {
    assert_eq!(
        mmdbms::durable::DURABLE_FORMAT_VERSION,
        u32::from(mmdbms::server::protocol::PROTOCOL_VERSION),
        "DURABLE_FORMAT_VERSION and PROTOCOL_VERSION must move together \
         (see DESIGN.md, version-compat rules)"
    );
}

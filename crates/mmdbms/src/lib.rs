#![warn(missing_docs)]

//! # mmdbms — color-based retrieval over images stored as edit sequences
//!
//! A production-style reproduction of *"Speeding up Color-Based Retrieval in
//! Multimedia Database Management Systems that Store Images as Sequences of
//! Editing Operations"* (Brown & Gruenwald, ICDE 2006).
//!
//! [`MultimediaDatabase`] is the top-level handle: a storage engine for
//! binary and edit-sequence images, an incrementally maintained BWM
//! structure (Figure 1 of the paper), and query entry points for the three
//! execution strategies (instantiate / RBM / BWM) plus histogram k-NN over
//! an R-tree.
//!
//! ```
//! use mmdbms::prelude::*;
//!
//! // An in-memory database with the classic 64-bin RGB histogram space.
//! let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
//!
//! // Store an image conventionally...
//! let flag = RasterImage::filled(60, 40, Rgb::new(0xCE, 0x11, 0x26)).unwrap();
//! let base = db.insert_image(&flag).unwrap();
//!
//! // ...and a derived version as a sequence of editing operations.
//! let night = EditSequence::builder(base)
//!     .define(Rect::new(0, 0, 60, 20))
//!     .modify(Rgb::new(0xCE, 0x11, 0x26), Rgb::new(0x40, 0x05, 0x09))
//!     .build();
//! let edited = db.insert_edited(night).unwrap();
//!
//! // "Retrieve all images that are at least 25% red" — answered without
//! // instantiating the edited image.
//! let red_bin = db.bin_of(Rgb::new(0xCE, 0x11, 0x26));
//! let outcome = db.query_range(&ColorRangeQuery::at_least(red_bin, 0.25)).unwrap();
//! assert!(outcome.results.contains(&base));
//! assert!(outcome.results.contains(&edited));
//! ```

use mmdb_boundidx::{
    profile_slot, BoundIndex, EpochSlot, StalenessReport, SyncStats, PROFILE_SLOTS,
};
use mmdb_bwm::{BoundsCache, BwmStructure};
use mmdb_conc::sync::atomic::{AtomicBool, Ordering};
use mmdb_conc::sync::RwLock;
use mmdb_datagen::edits::TargetInfo;
use mmdb_datagen::{VariantConfig, VariantGenerator};
use mmdb_editops::{EditSequence, ImageId};
use mmdb_histogram::{ColorHistogram, Quantizer};
use mmdb_imaging::{ppm, RasterImage, Rgb};
use mmdb_query::executor::{QueryError, QueryProcessor};
use mmdb_query::{QueryPlan, SignatureIndex};
use mmdb_rules::{ColorRangeQuery, RuleProfile};
use mmdb_storage::{DurabilityOptions, RecoveryInfo, StorageEngine, StorageStats};
use mmdb_telemetry::QueryTrace;
use std::path::Path;
use std::sync::Arc;

// Re-export the component crates under stable names.
pub use mmdb_analysis as analysis;
pub use mmdb_boundidx as boundidx;
pub use mmdb_bwm as bwm;
pub use mmdb_datagen as datagen;
pub use mmdb_durable as durable;
pub use mmdb_editops as editops;
pub use mmdb_histogram as histogram;
pub use mmdb_imaging as imaging;
pub use mmdb_index as index;
pub use mmdb_query as query;
pub use mmdb_rules as rules;
pub use mmdb_server as server;
pub use mmdb_storage as storage;
pub use mmdb_telemetry as telemetry;

mod serve;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use crate::MultimediaDatabase;
    pub use mmdb_bwm::{BwmStructure, QueryOutcome};
    pub use mmdb_editops::{EditOp, EditSequence, ImageId, Matrix3, SequenceBuilder};
    pub use mmdb_histogram::{
        ColorHistogram, GrayQuantizer, HsvQuantizer, Quantizer, RgbQuantizer,
    };
    pub use mmdb_imaging::{Point, RasterImage, Rect, Rgb};
    pub use mmdb_query::QueryPlan;
    pub use mmdb_rules::{BoundRange, ColorRangeQuery, RuleProfile};
    pub use mmdb_telemetry::QueryTrace;
}

/// Result alias of the facade (query-layer error covers rules + storage).
pub type Result<T> = std::result::Result<T, QueryError>;

/// Eagerly registers every layer's metric series in the global registry so
/// `mmdbctl metrics` (and any exporter) shows the full schema — zero-valued
/// series included — from process start.
pub fn register_all_metrics() {
    mmdb_durable::register_metrics();
    mmdb_storage::register_metrics();
    mmdb_rules::register_metrics();
    mmdb_bwm::register_metrics();
    mmdb_boundidx::register_metrics();
    mmdb_query::register_metrics();
    mmdb_analysis::register_metrics();
    mmdb_server::register_metrics();
}

/// Tuning knobs for the always-on observability pipeline. Both settings are
/// process-wide: the flight recorder and the slow-query threshold are shared
/// by every database handle in the process (they instrument the global
/// telemetry layer, not one catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservabilityConfig {
    /// Queries at or above this duration emit a `slow_query` flight-recorder
    /// event and bump `mmdb_query_slow_total`. Default 250ms.
    pub slow_query_threshold: std::time::Duration,
    /// How many recent events the flight recorder retains. Default 1024.
    pub recorder_capacity: usize,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            slow_query_threshold: mmdb_telemetry::DEFAULT_SLOW_QUERY_THRESHOLD,
            recorder_capacity: mmdb_telemetry::DEFAULT_RECORDER_CAPACITY,
        }
    }
}

/// Applies an [`ObservabilityConfig`] to the process-wide telemetry layer.
pub fn configure_observability(config: &ObservabilityConfig) {
    mmdb_telemetry::set_slow_query_threshold(config.slow_query_threshold);
    mmdb_telemetry::recorder().set_capacity(config.recorder_capacity);
}

/// The top-level multimedia database handle.
///
/// Thread-safe. The BWM structure is maintained incrementally on every
/// insert/delete (the paper's Figure 1: "the proposed data structure can be
/// constructed as images are inserted into the database"), and the histogram
/// R-tree is built lazily and invalidated on mutation.
pub struct MultimediaDatabase {
    storage: Arc<StorageEngine>,
    bwm: RwLock<BwmStructure>,
    signature_index: RwLock<Option<Arc<SignatureIndex>>>,
    /// One lazily built [`BoundIndex`] per rule profile, each in an
    /// epoch-guarded slot. The serving invariant is
    /// `index.synced_epoch() == storage.current_epoch()`: a slot whose epoch
    /// trails the storage engine is never consulted — it is re-synced (or
    /// built) under the slot's write lock first. [`EpochSlot`] enforces the
    /// invariant structurally; the protocol is model-checked in
    /// `crates/conc/tests/model_boundidx.rs`.
    bound_index: [EpochSlot<BoundIndex>; PROFILE_SLOTS],
    profile: RuleProfile,
    /// Background snapshot / group-commit driver for on-disk databases
    /// (`None` in memory). Stopped and joined on drop.
    _maintenance: Option<MaintenanceThread>,
}

/// The facade's background maintenance loop: periodically ticks the storage
/// engine so interval-policy fsyncs and threshold-triggered snapshots (plus
/// the WAL segment GC that rides along) happen off the request path.
struct MaintenanceThread {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceThread {
    /// How often the loop wakes to check the engine's deadlines. The tick
    /// itself is two atomic reads when there is nothing to do.
    const TICK: std::time::Duration = std::time::Duration::from_millis(50);

    fn spawn(storage: Arc<StorageEngine>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mmdb-maintenance".into())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    std::thread::sleep(Self::TICK);
                    if flag.load(Ordering::Acquire) {
                        break;
                    }
                    // Maintenance is best-effort: an I/O error here surfaces
                    // on the next acknowledged mutation or explicit flush.
                    let _ = storage.maintenance_tick();
                }
            })
            .expect("spawn maintenance thread");
        MaintenanceThread {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for MaintenanceThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

impl MultimediaDatabase {
    fn wrap(storage: StorageEngine) -> Self {
        let storage = Arc::new(storage);
        let bwm = BwmStructure::build(storage.binary_ids(), storage.edited_ids(), &*storage);
        let maintenance = storage
            .data_dir()
            .is_some()
            .then(|| MaintenanceThread::spawn(Arc::clone(&storage)));
        MultimediaDatabase {
            storage,
            bwm: RwLock::new(bwm),
            signature_index: RwLock::new(None),
            bound_index: std::array::from_fn(|_| EpochSlot::new()),
            profile: RuleProfile::Conservative,
            _maintenance: maintenance,
        }
    }

    /// Creates a new on-disk database under `dir` with default durability
    /// settings (`fsync = always`).
    pub fn create(dir: &Path, quantizer: Box<dyn Quantizer>) -> Result<Self> {
        Self::create_with(dir, quantizer, DurabilityOptions::default())
    }

    /// Creates a new on-disk database under `dir` with explicit durability
    /// settings (fsync policy, WAL segment size, snapshot cadence).
    pub fn create_with(
        dir: &Path,
        quantizer: Box<dyn Quantizer>,
        opts: DurabilityOptions,
    ) -> Result<Self> {
        Ok(Self::wrap(StorageEngine::create_with(
            dir, quantizer, opts,
        )?))
    }

    /// Opens an existing on-disk database: recovers the catalog (latest
    /// snapshot + WAL replay), rebuilds the BWM structure, and warm-loads
    /// any persisted bound indexes so `QueryPlan::Indexed` serves without a
    /// cold build.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`MultimediaDatabase::open`] with explicit durability settings.
    pub fn open_with(dir: &Path, opts: DurabilityOptions) -> Result<Self> {
        let db = Self::wrap(StorageEngine::open_with(dir, opts)?);
        db.warm_load_indexes();
        Ok(db)
    }

    /// Creates an ephemeral in-memory database.
    pub fn in_memory(quantizer: Box<dyn Quantizer>) -> Self {
        Self::wrap(StorageEngine::in_memory(quantizer))
    }

    /// Sets the rule profile used by RBM/BWM queries (default:
    /// [`RuleProfile::Conservative`]).
    pub fn set_rule_profile(&mut self, profile: RuleProfile) {
        self.profile = profile;
    }

    /// The underlying storage engine, for advanced use (benchmarks attach
    /// their own query processors).
    pub fn storage(&self) -> &StorageEngine {
        &self.storage
    }

    /// The database's quantizer.
    pub fn quantizer(&self) -> &dyn Quantizer {
        self.storage.quantizer()
    }

    /// The histogram bin a color falls into.
    pub fn bin_of(&self, color: Rgb) -> usize {
        self.storage.quantizer().bin_of(color)
    }

    // ── Inserts ────────────────────────────────────────────────────────

    /// Stores an image conventionally (feature extraction happens now).
    pub fn insert_image(&self, image: &RasterImage) -> Result<ImageId> {
        let id = self.storage.insert_binary(image)?;
        self.bwm.write().insert_binary(id);
        self.signature_index.write().take();
        Ok(id)
    }

    /// Stores an image as a sequence of editing operations; it is
    /// immediately classified into the BWM structure (Figure 1).
    pub fn insert_edited(&self, sequence: EditSequence) -> Result<ImageId> {
        let seq_copy = sequence.clone();
        let id = self.storage.insert_edited(sequence)?;
        self.bwm.write().insert_edited(id, &seq_copy);
        Ok(id)
    }

    /// The §2 augmentation pipeline: stores `image` conventionally, then
    /// derives `variants` edited versions (seeded by `seed`) and stores them
    /// as operation sequences. Returns the base id and the variant ids.
    pub fn insert_image_with_augmentation(
        &self,
        image: &RasterImage,
        variants: usize,
        config: VariantConfig,
        seed: u64,
    ) -> Result<(ImageId, Vec<ImageId>)> {
        let base = self.insert_image(image)?;
        // Other binary images are candidate merge targets.
        let targets: Vec<TargetInfo> = self
            .storage
            .binary_ids()
            .into_iter()
            .filter(|&id| id != base)
            .filter_map(|id| {
                use mmdb_rules::InfoResolver;
                let info = self.storage.info(id)?;
                Some(TargetInfo {
                    id,
                    width: info.width,
                    height: info.height,
                })
            })
            .collect();
        let palette: Vec<Rgb> = mmdb_datagen::palette::FLAG_COLORS.to_vec();
        let mut generator = VariantGenerator::new(seed, config, palette);
        let mut ids = Vec::with_capacity(variants);
        for _ in 0..variants {
            let seq = generator.generate(base, image, &targets);
            ids.push(self.insert_edited(seq)?);
        }
        Ok((base, ids))
    }

    /// Deletes an image (binary images with derived children are refused by
    /// the storage layer).
    pub fn delete(&self, id: ImageId) -> Result<()> {
        self.storage.delete(id)?;
        let orphans = self.bwm.write().remove(id);
        self.signature_index.write().take();
        // Eager index invalidation: the deleted image plus any edited images
        // the BWM reclassified (their bounds are unchanged — sequences are
        // immutable — but dropping them keeps both layers' views aligned;
        // the epoch bump re-admits survivors on the next indexed query).
        let mut victims = vec![id];
        victims.extend(orphans);
        self.invalidate_indexes(&victims);
        Ok(())
    }

    // ── Retrieval ──────────────────────────────────────────────────────

    /// Runs a color range query under the BWM plan (the paper's proposal).
    pub fn query_range(&self, query: &ColorRangeQuery) -> Result<mmdb_bwm::QueryOutcome> {
        self.query_range_with_plan(query, QueryPlan::Bwm)
    }

    /// Runs a color range query under an explicit plan.
    pub fn query_range_with_plan(
        &self,
        query: &ColorRangeQuery,
        plan: QueryPlan,
    ) -> Result<mmdb_bwm::QueryOutcome> {
        self.query_range_with(query, plan, self.profile)
    }

    /// Runs a color range query under an explicit plan *and* rule profile,
    /// overriding the handle-level default for this one query. This is the
    /// entry point the network server uses: the wire protocol selects plan
    /// and profile per request.
    pub fn query_range_with(
        &self,
        query: &ColorRangeQuery,
        plan: QueryPlan,
        profile: RuleProfile,
    ) -> Result<mmdb_bwm::QueryOutcome> {
        let qp = QueryProcessor::with_profile(&self.storage, profile);
        match plan {
            QueryPlan::Bwm => {
                // Fast path: when a fresh index exists for this profile, BWM
                // probes it for memoized bounds instead of walking operation
                // lists. A stale (or absent) index is simply skipped — the
                // BWM plan never pays a sync.
                let epoch = self.storage.current_epoch();
                self.bound_index[profile_slot(profile)].with_fresh(epoch, |idx| {
                    let cache = idx.map(|idx| idx as &dyn BoundsCache);
                    qp.range_bwm_with_cache(&self.bwm.read(), query, cache)
                })
            }
            QueryPlan::Rbm => qp.range_rbm(query),
            QueryPlan::Instantiate => qp.range_instantiate(query),
            QueryPlan::Indexed => {
                self.with_bound_index(profile, |idx, _sync| qp.range_indexed_with(idx, query))?
            }
        }
    }

    /// Runs `f` against a bound index for `profile` that satisfies the
    /// serving invariant (`synced_epoch == storage.current_epoch()`),
    /// building or incrementally re-syncing the slot first when needed.
    ///
    /// The epoch is captured *before* the id lists are read: a mutation that
    /// races the snapshot leaves the stamp behind the real epoch, so the next
    /// query re-syncs — stale entries are never served.
    fn with_bound_index<T>(
        &self,
        profile: RuleProfile,
        f: impl FnOnce(&BoundIndex, SyncStats) -> T,
    ) -> Result<T> {
        let slot = &self.bound_index[profile_slot(profile)];
        // `f` is FnOnce, so shuttle it through an Option: consumed on the
        // fast path, recovered for the slow path when the slot was stale.
        let mut f = Some(f);
        let served = slot.serve_fresh(self.storage.current_epoch(), |idx| {
            (f.take().expect("fast-path closure runs once"))(idx, SyncStats::default())
        });
        if let Some(out) = served {
            return Ok(out);
        }
        let f = f.take().expect("closure unconsumed on slow path");
        // Slow path: build or re-sync under the write lock, then serve under
        // it (this lock has no downgrade; the next query takes the read fast
        // path above). The epoch is captured before `binary_ids`/`edited_ids`
        // so a racing mutation leaves the stamp behind, never ahead.
        let mut guard = slot.write();
        let epoch = self.storage.current_epoch();
        let binary = self.storage.binary_ids();
        let edited = self.storage.edited_ids();
        let stats = match guard.as_mut() {
            Some(idx) if idx.synced_epoch() == epoch => SyncStats::default(),
            Some(idx) => idx.sync(
                epoch,
                &binary,
                &edited,
                self.storage.quantizer(),
                self.storage.background(),
                &*self.storage,
                &*self.storage,
            )?,
            None => {
                let threads =
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
                let built = BoundIndex::build(
                    profile,
                    self.storage.quantizer(),
                    self.storage.background(),
                    &binary,
                    &edited,
                    &*self.storage,
                    &*self.storage,
                    epoch,
                    threads,
                )?;
                *guard = Some(built);
                SyncStats::default()
            }
        };
        let idx = guard.as_ref().expect("slot populated above");
        // The slot just reconciled to `epoch`; republish its staleness
        // gauges (lag and backlog drop to zero) without waiting for the
        // next exposition-driven refresh.
        StalenessReport::compute(Some(idx), epoch, &binary, &edited).publish(profile);
        Ok(f(idx, stats))
    }

    /// Recomputes and publishes the per-profile bound-index staleness and
    /// residency gauges (`mmdb_boundidx_epoch_lag{profile=...}` and
    /// friends) against the current catalog state. Called by the metrics
    /// exposition prerender hook so every scrape sees a fresh reading;
    /// harmless to call at any time.
    pub fn refresh_staleness_gauges(&self) {
        let epoch = self.storage.current_epoch();
        let binary = self.storage.binary_ids();
        let edited = self.storage.edited_ids();
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            self.bound_index[profile_slot(profile)].peek(|idx| {
                StalenessReport::compute(idx, epoch, &binary, &edited).publish(profile);
            });
        }
    }

    /// Eagerly drops `ids` (and, transitively, every indexed image whose
    /// sequence references them) from both profile slots. Correctness does
    /// not depend on this — the storage epoch already forces a re-sync — but
    /// eager removal frees deleted entries immediately instead of at the
    /// next indexed query.
    fn invalidate_indexes(&self, ids: &[ImageId]) {
        if ids.is_empty() {
            return;
        }
        for slot in &self.bound_index {
            let mut guard = slot.write();
            if let Some(idx) = guard.as_mut() {
                for &id in ids {
                    idx.invalidate(id);
                }
            }
        }
    }

    /// Runs a color range query under an explicit plan with tracing: the
    /// returned [`QueryTrace`] records the plan and query parameters, each
    /// scan phase as a timed stage, and the work the stage performed (base
    /// shortcuts, bounds computed vs. widened, …). Render it with
    /// [`QueryTrace::render`].
    pub fn query_range_traced(
        &self,
        query: &ColorRangeQuery,
        plan: QueryPlan,
    ) -> Result<(mmdb_bwm::QueryOutcome, QueryTrace)> {
        self.query_range_traced_with(query, plan, self.profile)
    }

    /// Traced variant of [`MultimediaDatabase::query_range_with`]: explicit
    /// plan *and* rule profile, plus the per-stage [`QueryTrace`]. This is
    /// what the network backend runs for wire-traced requests, so the span
    /// tree stored by the tail sampler reflects the profile the request
    /// actually selected.
    pub fn query_range_traced_with(
        &self,
        query: &ColorRangeQuery,
        plan: QueryPlan,
        profile: RuleProfile,
    ) -> Result<(mmdb_bwm::QueryOutcome, QueryTrace)> {
        let qp = QueryProcessor::with_profile(&self.storage, profile);
        match plan {
            QueryPlan::Bwm => qp.range_bwm_with_traced(&self.bwm.read(), query),
            QueryPlan::Indexed => self.with_bound_index(profile, |idx, sync| {
                qp.range_indexed_with_traced(idx, query, sync)
            })?,
            _ => qp.range_with_plan_traced(plan, query),
        }
    }

    /// The process-global telemetry registry: every layer of the stack
    /// (storage, rules, BWM, query) publishes its counters and latency
    /// histograms here. Render with
    /// [`Registry::render_prometheus`](mmdb_telemetry::Registry::render_prometheus)
    /// or [`Registry::render_json`](mmdb_telemetry::Registry::render_json),
    /// or diff [`Registry::snapshot`](mmdb_telemetry::Registry::snapshot)s
    /// around a workload.
    ///
    /// Drains the calling thread's staged rule-engine counts first, so
    /// totals are exact for single-threaded callers (worker threads drain
    /// automatically every few hundred BOUNDS calls).
    pub fn metrics(&self) -> &'static mmdb_telemetry::Registry {
        mmdb_rules::flush_metrics();
        mmdb_telemetry::global()
    }

    /// The process-global flight recorder: the ring buffer of recent
    /// structured events (query start/end, slow queries, BWM
    /// reclassifications, ingest accept/reject, cache evictions). Drain
    /// with [`FlightRecorder::events`](mmdb_telemetry::FlightRecorder::events)
    /// or serialize with
    /// [`FlightRecorder::render_json`](mmdb_telemetry::FlightRecorder::render_json);
    /// size it with [`configure_observability`].
    pub fn flight_recorder(&self) -> &'static mmdb_telemetry::FlightRecorder {
        mmdb_telemetry::recorder()
    }

    /// Convenience form of the paper's example query: "retrieve all images
    /// that are at least `pct` `color`", with §2 provenance expansion (a
    /// matching edited image also returns its base).
    pub fn find_at_least(&self, color: Rgb, pct: f64) -> Result<Vec<ImageId>> {
        let query = ColorRangeQuery::at_least(self.bin_of(color), pct);
        let outcome = self.query_range(&query)?;
        let qp = QueryProcessor::with_profile(&self.storage, self.profile);
        Ok(qp.expand_with_bases(&outcome.results))
    }

    /// The `k` binary images most similar to `example` by histogram-
    /// signature distance (R-tree k-NN). The index is built lazily and
    /// cached until the next mutation.
    pub fn similar_to(&self, example: &RasterImage, k: usize) -> Vec<(f64, ImageId)> {
        let hist = ColorHistogram::extract(example, self.storage.quantizer());
        let index = self.ensure_index();
        index.nearest(&hist, k)
    }

    /// The `k` images most similar to `example` over the **whole** augmented
    /// database — binary *and* edited images — by L1 histogram distance.
    /// Edited images are pruned with Table 1 bound-derived distance lower
    /// bounds and only instantiated when they might enter the top-k (the
    /// paper's §6 nearest-neighbour future work). Exact: identical to brute
    /// force.
    pub fn similar_to_augmented(
        &self,
        example: &RasterImage,
        k: usize,
    ) -> Result<mmdb_query::KnnOutcome> {
        let hist = ColorHistogram::extract(example, self.storage.quantizer());
        mmdb_query::knn_augmented(&self.storage, &hist, k, self.profile)
    }

    fn ensure_index(&self) -> Arc<SignatureIndex> {
        if let Some(index) = self.signature_index.read().as_ref() {
            return Arc::clone(index);
        }
        let built = Arc::new(SignatureIndex::build(&self.storage));
        *self.signature_index.write() = Some(Arc::clone(&built));
        built
    }

    /// The instantiated raster of any image.
    pub fn image(&self, id: ImageId) -> Result<Arc<RasterImage>> {
        Ok(self.storage.raster(id)?)
    }

    /// Exports an image (instantiating if needed) as a binary PPM file.
    pub fn export_ppm(&self, id: ImageId, path: &Path) -> Result<()> {
        let raster = self.storage.raster(id)?;
        ppm::write_file(&raster, path, ppm::PnmFormat::RawRgb)
            .map_err(mmdb_storage::StorageError::from)?;
        Ok(())
    }

    /// Runs the static analyzer over the whole catalog: reference-graph
    /// checks (dangling ids, cycles), per-sequence well-formedness, dead-op
    /// detection, and the bound-soundness audit. This is the library entry
    /// point behind `mmdbctl lint`; run counts, latency, and per-lint
    /// counters land in [`MultimediaDatabase::metrics`].
    pub fn lint(&self) -> mmdb_analysis::AnalysisReport {
        let analyzer = mmdb_analysis::Analyzer::with_resolver(
            self.storage.quantizer(),
            self.storage.background(),
            &*self.storage,
        );
        mmdb_analysis::analyze_catalog(&*self.storage, &analyzer)
    }

    /// Analyzes one stored edit sequence in detail: diagnostics, removable
    /// dead ops, the soundness audit, and the BWM widening verdict.
    pub fn analyze(&self, id: ImageId) -> Result<mmdb_analysis::SequenceAnalysis> {
        let sequence = self
            .storage
            .edit_sequence(id)
            .ok_or(mmdb_storage::StorageError::NotFound(id))?;
        let analyzer = mmdb_analysis::Analyzer::with_resolver(
            self.storage.quantizer(),
            self.storage.background(),
            &*self.storage,
        );
        Ok(analyzer.analyze_sequence(&sequence))
    }

    /// Enables or disables analyzer-backed ingest validation (on by
    /// default); see [`StorageEngine::set_ingest_validation`].
    pub fn set_ingest_validation(&self, enabled: bool) {
        self.storage.set_ingest_validation(enabled);
    }

    /// A read-only snapshot view of the BWM structure.
    pub fn bwm_snapshot(&self) -> BwmStructure {
        self.bwm.read().clone()
    }

    /// Storage statistics (space usage, cache behaviour).
    pub fn stats(&self) -> StorageStats {
        self.storage.stats()
    }

    /// Persists catalog + blobs (no-op in memory): forces a snapshot, syncs
    /// and garbage-collects the WAL, and writes any resident bound indexes
    /// to `<data-dir>/boundidx/` so the next open starts warm.
    pub fn flush(&self) -> Result<()> {
        self.storage.flush()?;
        self.persist_indexes();
        Ok(())
    }

    /// How the catalog was recovered at open: snapshot cover point, WAL
    /// records replayed, torn bytes discarded, and wall-clock cost. `None`
    /// for in-memory and freshly created databases.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.storage.recovery_info()
    }

    /// Installs persisted bound indexes from `<data-dir>/boundidx/` into
    /// the profile slots. A stamp *behind* the recovered epoch is fine (the
    /// next indexed query syncs incrementally); a stamp *ahead* of it means
    /// the catalog rolled back past the persisted state (lost WAL tail
    /// under `fsync = never`), so the file is discarded — as is anything
    /// torn, version-skewed, or built over a different quantizer.
    fn warm_load_indexes(&self) {
        let Some(dir) = self.storage.data_dir().map(|d| d.join("boundidx")) else {
            return;
        };
        let epoch = self.storage.current_epoch();
        let bins = self.storage.quantizer().bin_count();
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            match boundidx::persist::load(&dir, profile, bins) {
                Ok(Some(idx)) if idx.synced_epoch() <= epoch => {
                    *self.bound_index[profile_slot(profile)].write() = Some(idx);
                }
                Ok(None) => {}
                Ok(Some(_)) | Err(_) => {
                    let _ = boundidx::persist::discard(&dir, profile);
                }
            }
        }
    }

    /// Writes every resident bound index to `<data-dir>/boundidx/`
    /// (best-effort: a failed persist costs the next open a rebuild, never
    /// correctness).
    fn persist_indexes(&self) {
        let Some(dir) = self.storage.data_dir().map(|d| d.join("boundidx")) else {
            return;
        };
        for slot in &self.bound_index {
            slot.peek(|idx| {
                if let Some(idx) = idx {
                    let _ = boundidx::persist::save(idx, &dir);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn red_flag() -> RasterImage {
        let mut img = RasterImage::filled(30, 20, Rgb::WHITE).unwrap();
        mmdb_imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, 30, 10), Rgb::RED);
        img
    }

    #[test]
    fn end_to_end_insert_and_query() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base = db.insert_image(&red_flag()).unwrap();
        let edited = db
            .insert_edited(
                EditSequence::builder(base)
                    .define(Rect::new(0, 0, 30, 5))
                    .modify(Rgb::RED, Rgb::BLUE)
                    .build(),
            )
            .unwrap();
        let q = ColorRangeQuery::at_least(db.bin_of(Rgb::RED), 0.2);
        let out = db.query_range(&q).unwrap();
        assert!(out.results.contains(&base));
        assert!(out.results.contains(&edited));
        // All three plans agree on this database.
        for plan in [QueryPlan::Rbm, QueryPlan::Instantiate] {
            let alt = db.query_range_with_plan(&q, plan).unwrap();
            // Instantiate is ground truth (subset); RBM must equal BWM.
            if plan == QueryPlan::Rbm {
                assert_eq!(alt.sorted_results(), out.sorted_results());
            } else {
                for id in alt.sorted_results() {
                    assert!(out.results.contains(&id));
                }
            }
        }
    }

    #[test]
    fn augmentation_pipeline() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let (_b0, _) = db
            .insert_image_with_augmentation(&red_flag(), 0, VariantConfig::default(), 1)
            .unwrap();
        let (base, variants) = db
            .insert_image_with_augmentation(&red_flag(), 4, VariantConfig::default(), 2)
            .unwrap();
        assert_eq!(variants.len(), 4);
        assert_eq!(db.storage().children_of(base), variants);
        let snapshot = db.bwm_snapshot();
        assert_eq!(
            snapshot.classified_count() + snapshot.unclassified_count(),
            4
        );
    }

    #[test]
    fn find_at_least_expands_bases() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        // Base is 0% green; an edited version paints half green.
        let base = db.insert_image(&red_flag()).unwrap();
        let edited = db
            .insert_edited(
                EditSequence::builder(base)
                    .define(Rect::new(0, 0, 30, 10))
                    .modify(Rgb::RED, Rgb::GREEN)
                    .build(),
            )
            .unwrap();
        let hits = db.find_at_least(Rgb::GREEN, 0.3).unwrap();
        assert!(hits.contains(&edited));
        assert!(
            hits.contains(&base),
            "provenance expansion returns the base"
        );
    }

    #[test]
    fn similarity_search() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let mut ids = Vec::new();
        for rows in [2i64, 10, 18] {
            let mut img = RasterImage::filled(30, 20, Rgb::WHITE).unwrap();
            mmdb_imaging::draw::fill_rect(&mut img, &Rect::new(0, 0, 30, rows), Rgb::BLUE);
            ids.push(db.insert_image(&img).unwrap());
        }
        let mut probe = RasterImage::filled(30, 20, Rgb::WHITE).unwrap();
        mmdb_imaging::draw::fill_rect(&mut probe, &Rect::new(0, 0, 30, 11), Rgb::BLUE);
        let nn = db.similar_to(&probe, 1);
        assert_eq!(nn[0].1, ids[1]);
        // Index invalidation: a new closer image wins after insert.
        let mut closer = RasterImage::filled(30, 20, Rgb::WHITE).unwrap();
        mmdb_imaging::draw::fill_rect(&mut closer, &Rect::new(0, 0, 30, 11), Rgb::BLUE);
        let new_id = db.insert_image(&closer).unwrap();
        let nn = db.similar_to(&probe, 1);
        assert!(
            nn[0].1 == new_id || nn[0].1 == ids[1],
            "exact-signature match"
        );
        assert!(nn[0].0 < 1e-9);
    }

    #[test]
    fn augmented_knn_finds_edited_variant() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base = db.insert_image(&red_flag()).unwrap();
        // The variant recolors the red half green.
        let variant = db
            .insert_edited(
                EditSequence::builder(base)
                    .define(Rect::new(0, 0, 30, 10))
                    .modify(Rgb::RED, Rgb::GREEN)
                    .build(),
            )
            .unwrap();
        // A probe matching the *variant* exactly.
        let mut probe = RasterImage::filled(30, 20, Rgb::WHITE).unwrap();
        mmdb_imaging::draw::fill_rect(&mut probe, &Rect::new(0, 0, 30, 10), Rgb::GREEN);
        let out = db.similar_to_augmented(&probe, 1).unwrap();
        assert_eq!(out.neighbours[0].1, variant);
        assert!(out.neighbours[0].0 < 1e-12);
        // Plain binary-only k-NN cannot see the variant.
        let nn = db.similar_to(&probe, 1);
        assert_eq!(nn[0].1, base);
        assert!(nn[0].0 > 0.5);
    }

    #[test]
    fn delete_updates_bwm() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base = db.insert_image(&red_flag()).unwrap();
        let edited = db
            .insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        assert!(db.delete(base).is_err(), "base with children protected");
        db.delete(edited).unwrap();
        db.delete(base).unwrap();
        let snapshot = db.bwm_snapshot();
        assert_eq!(snapshot.cluster_count(), 0);
        assert_eq!(snapshot.classified_count(), 0);
    }

    /// A per-test unique temp directory, removed on drop (including on
    /// panic). Keyed by pid, wall clock and a process-wide sequence number so
    /// concurrent tests — and stale dirs from earlier runs that recycled the
    /// pid — can never collide.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64);
            let dir = std::env::temp_dir().join(format!(
                "mmdbms_{tag}_{}_{nanos}_{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed),
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn export_and_persistence() {
        let tmp = TempDir::new("facade");
        let dir = tmp.path();
        let base;
        {
            let db = MultimediaDatabase::create(dir, Box::new(RgbQuantizer::default_64())).unwrap();
            base = db.insert_image(&red_flag()).unwrap();
            db.insert_edited(EditSequence::builder(base).blur().build())
                .unwrap();
            db.flush().unwrap();
        }
        let db = MultimediaDatabase::open(dir).unwrap();
        assert!(db.image(base).is_ok());
        // BWM was rebuilt on open.
        assert_eq!(db.bwm_snapshot().classified_count(), 1);
        let out_path = dir.join("exported.ppm");
        db.export_ppm(base, &out_path).unwrap();
        let back = mmdb_imaging::ppm::read_file(&out_path).unwrap();
        assert_eq!(back, red_flag());
    }

    #[test]
    fn warm_start_restores_bound_index() {
        let tmp = TempDir::new("warm");
        let dir = tmp.path();
        let q = |db: &MultimediaDatabase| ColorRangeQuery::at_least(db.bin_of(Rgb::RED), 0.2);
        {
            let db = MultimediaDatabase::create(dir, Box::new(RgbQuantizer::default_64())).unwrap();
            let base = db.insert_image(&red_flag()).unwrap();
            db.insert_edited(EditSequence::builder(base).blur().build())
                .unwrap();
            // Build the index by serving an indexed query, then persist it.
            let out = db
                .query_range_with_plan(&q(&db), QueryPlan::Indexed)
                .unwrap();
            assert_eq!(out.results.len(), 2);
            db.flush().unwrap();
        }
        {
            let db = MultimediaDatabase::open(dir).unwrap();
            // The persisted index came back *fresh*: its stamp equals the
            // recovered epoch, so it serves without any build or sync.
            let epoch = db.storage().current_epoch();
            let served = db.bound_index[profile_slot(RuleProfile::Conservative)]
                .serve_fresh(epoch, mmdb_boundidx::BoundIndex::len);
            assert_eq!(served, Some(2), "warm index serves at the recovered epoch");
            let a = db
                .query_range_with_plan(&q(&db), QueryPlan::Indexed)
                .unwrap()
                .sorted_results();
            let b = db
                .query_range_with_plan(&q(&db), QueryPlan::Rbm)
                .unwrap()
                .sorted_results();
            assert_eq!(a, b, "indexed ≡ RBM after warm start");

            // Mutate *after* the index was persisted, then flush: the file
            // now trails the catalog by one epoch.
            db.insert_image(&red_flag()).unwrap();
            db.flush().unwrap();
        }
        let db = MultimediaDatabase::open(dir).unwrap();
        let epoch = db.storage().current_epoch();
        let slot = &db.bound_index[profile_slot(RuleProfile::Conservative)];
        assert_eq!(
            slot.serve_fresh(epoch, |_| ()),
            None,
            "stale warm index is not served as-is"
        );
        let resident = slot.peek(|idx| idx.as_ref().map(|i| i.len()));
        assert_eq!(resident, Some(2), "stale warm index is still installed");
        // The next indexed query catches up *incrementally* (two entries
        // stay resident; only the new image is computed) and then serves.
        let out = db
            .query_range_with_plan(&q(&db), QueryPlan::Indexed)
            .unwrap();
        assert_eq!(out.results.len(), 3);
        assert_eq!(slot.peek(|idx| idx.as_ref().map(|i| i.len())), Some(3));
    }

    #[test]
    fn observability_config_and_flight_recorder() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base = db.insert_image(&red_flag()).unwrap();
        db.insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        assert_eq!(ObservabilityConfig::default().recorder_capacity, 1024);
        // A zero threshold marks every query slow; capacity is applied to
        // the process-global recorder.
        configure_observability(&ObservabilityConfig {
            slow_query_threshold: std::time::Duration::ZERO,
            recorder_capacity: 512,
        });
        assert_eq!(db.flight_recorder().capacity(), 512);
        let q = ColorRangeQuery::at_least(db.bin_of(Rgb::RED), 0.2);
        db.query_range(&q).unwrap();
        let events = db.flight_recorder().events();
        let kind_count = |k: telemetry::EventKind| events.iter().filter(|e| e.kind == k).count();
        assert!(kind_count(telemetry::EventKind::IngestAccepted) >= 1);
        assert!(kind_count(telemetry::EventKind::QueryStart) >= 1);
        assert!(kind_count(telemetry::EventKind::QueryEnd) >= 1);
        assert!(kind_count(telemetry::EventKind::SlowQuery) >= 1);
        // Restore process-wide defaults for other tests.
        configure_observability(&ObservabilityConfig::default());
    }

    #[test]
    fn stats_accessible() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let base = db.insert_image(&red_flag()).unwrap();
        db.insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        let s = db.stats();
        assert_eq!(s.binary_count, 1);
        assert_eq!(s.edited_count, 1);
        assert!(s.binary_bytes > 100);
    }
}

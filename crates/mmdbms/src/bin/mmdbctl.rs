//! `mmdbctl` — command-line administration for an on-disk mmdbms database.
//!
//! ```text
//! mmdbctl create --db ./mydb [--quantizer rgb-uniform/4]
//! mmdbctl gen --db ./mydb --collection flags --count 20 --augment 3
//! mmdbctl insert --db ./mydb photo.ppm [--augment 4] [--seed 7]
//! mmdbctl insert-script --db ./mydb variant.edit
//! mmdbctl ls --db ./mydb
//! mmdbctl info --db ./mydb [--id 7]
//! mmdbctl query --db ./mydb --color '#ce1126' --min 0.25 [--max 1.0]
//!               [--plan bwm|rbm|instantiate|indexed] [--expand]
//! mmdbctl explain --db ./mydb --color '#ce1126' --min 0.25 [--plan bwm] [--json true]
//! mmdbctl metrics --db ./mydb [--format prometheus|json]
//! mmdbctl serve --db ./mydb [--listen 127.0.0.1:9184] [--warmup N]
//!               [--slow-ms MS] [--recorder-capacity N] [--slo SPEC]
//! mmdbctl traces --connect 127.0.0.1:9184 [--id HEX]
//! mmdbctl profile --connect 127.0.0.1:9184 [--seconds N]
//! mmdbctl heat --connect 127.0.0.1:9184 [--limit N]
//! mmdbctl slo --connect 127.0.0.1:9184
//! mmdbctl events --db ./mydb [--warmup N] [--limit N]
//! mmdbctl top --db ./mydb [--queries N] [--seed S] [--sort heat|total] [--limit N]
//! mmdbctl knn --db ./mydb probe.ppm --k 5 [--augmented]
//! mmdbctl export --db ./mydb --id 7 out.ppm
//! mmdbctl script --db ./mydb --id 9        # print an edited image's script
//! mmdbctl lint --db ./mydb [--format text|json]   # static analysis
//! mmdbctl analyze --db ./mydb --id 9       # per-sequence analysis detail
//! mmdbctl verify --db ./mydb               # logical consistency check
//! mmdbctl fsck ./mydb                      # offline on-disk durability check
//! mmdbctl churn --db ./mydb --ops 500      # deterministic mutation workload
//! mmdbctl delete --db ./mydb --id 7
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs plus positional
//! paths) to keep the dependency set at the workspace baseline.

use mmdbms::datagen::{flags::FlagGenerator, helmets::HelmetGenerator, VariantConfig};
use mmdbms::editops::codec;
use mmdbms::histogram::quantizer::from_description;
use mmdbms::prelude::*;
use mmdbms::MultimediaDatabase;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Parsed command line: subcommand, `--key value` options, positionals.
#[derive(Debug, Default)]
struct Args {
    command: String,
    options: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// Splits raw arguments into the [`Args`] shape. Every `--key` consumes the
/// following token as its value (flags that take no value are not used by
/// this tool).
fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter().peekable();
    args.command = it
        .next()
        .cloned()
        .ok_or_else(|| "missing subcommand".to_string())?;
    while let Some(tok) = it.next() {
        if let Some(key) = tok.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("option --{key} expects a value"))?;
            args.options.insert(key.to_string(), value.clone());
        } else {
            args.positional.push(tok.clone());
        }
    }
    Ok(args)
}

impl Args {
    fn db_path(&self) -> Result<PathBuf, String> {
        self.options
            .get("db")
            .or_else(|| self.options.get("data-dir"))
            .map(PathBuf::from)
            .ok_or_else(|| "--db <dir> (alias --data-dir) is required".to_string())
    }

    /// Durability knobs shared by every command that opens or creates a
    /// database: `--fsync always|interval[:ms]|never`, `--segment-bytes N`,
    /// `--snapshot-every N`.
    fn durability_opts(&self) -> Result<mmdbms::storage::DurabilityOptions, String> {
        let mut opts = mmdbms::storage::DurabilityOptions::default();
        if let Some(raw) = self.options.get("fsync") {
            opts.fsync = mmdbms::durable::FsyncPolicy::parse(raw)
                .map_err(|e| format!("bad --fsync: {e}"))?;
        }
        opts.segment_bytes = self.u64_opt("segment-bytes", opts.segment_bytes)?;
        opts.snapshot_every = self.u64_opt("snapshot-every", opts.snapshot_every)?;
        Ok(opts)
    }

    fn id(&self) -> Result<ImageId, String> {
        let raw = self
            .options
            .get("id")
            .ok_or_else(|| "--id <n> is required".to_string())?;
        raw.parse::<u64>()
            .map(ImageId::new)
            .map_err(|_| format!("bad id {raw:?}"))
    }

    fn u64_opt(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} {v:?}")),
        }
    }

    fn f64_opt(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} {v:?}")),
        }
    }
}

/// Clean-shutdown drain shared by `serve` and `serve-queries`: after the
/// network layer has stopped, push everything volatile to disk — final
/// snapshot, persisted bound indexes, fsynced active WAL segment — so the
/// next open replays zero records. In-memory databases are a no-op.
fn drain_to_disk(db: &MultimediaDatabase) {
    if db.storage().data_dir().is_none() {
        return;
    }
    let flushed = db
        .flush()
        .map_err(|e| e.to_string())
        .and_then(|()| db.storage().wal_sync().map_err(|e| e.to_string()));
    let detail = match flushed {
        Ok(()) => format!(
            "snapshot + wal fsync at epoch {}",
            db.storage().current_epoch()
        ),
        Err(e) => format!("flush failed: {e}"),
    };
    mmdbms::telemetry::recorder().record(
        mmdbms::telemetry::EventKind::ServerCleanShutdown,
        detail,
        &[("epoch", db.storage().current_epoch())],
    );
    eprintln!("flushed database to disk (clean shutdown)");
}

fn open_db(args: &Args) -> Result<MultimediaDatabase, String> {
    let dir = args.db_path()?;
    MultimediaDatabase::open_with(&dir, args.durability_opts()?)
        .map_err(|e| format!("open {}: {e}", dir.display()))
}

fn cmd_create(args: &Args) -> Result<(), String> {
    let dir = args.db_path()?;
    let desc = args
        .options
        .get("quantizer")
        .cloned()
        .unwrap_or_else(|| "rgb-uniform/4".to_string());
    let quantizer = from_description(&desc).ok_or_else(|| format!("unknown quantizer {desc:?}"))?;
    let opts = args.durability_opts()?;
    let db = MultimediaDatabase::create_with(&dir, quantizer, opts).map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!(
        "created database at {} (quantizer {desc}, fsync {})",
        dir.display(),
        opts.fsync.label()
    );
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let count = args.u64_opt("count", 12)?;
    let augment = args.u64_opt("augment", 3)? as usize;
    let seed = args.u64_opt("seed", 42)?;
    let collection = args
        .options
        .get("collection")
        .map_or("flags", String::as_str);
    let config = VariantConfig::default();
    let mut inserted = 0usize;
    for i in 0..count {
        let img = match collection {
            "flags" => FlagGenerator::with_seed(seed).generate(i),
            "helmets" => HelmetGenerator::with_seed(seed).generate(i),
            other => return Err(format!("unknown collection {other:?} (flags|helmets)")),
        };
        let (_base, variants) = db
            .insert_image_with_augmentation(&img, augment, config, seed ^ i)
            .map_err(|e| e.to_string())?;
        inserted += 1 + variants.len();
    }
    db.flush().map_err(|e| e.to_string())?;
    println!(
        "generated {count} {collection} images (+{augment} variants each): {inserted} objects"
    );
    Ok(())
}

fn cmd_insert(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let file = args
        .positional
        .first()
        .ok_or_else(|| "expected a PPM/PGM file argument".to_string())?;
    let image = mmdbms::imaging::ppm::read_file(Path::new(file)).map_err(|e| e.to_string())?;
    let augment = args.u64_opt("augment", 0)? as usize;
    let seed = args.u64_opt("seed", 1)?;
    let (base, variants) = db
        .insert_image_with_augmentation(&image, augment, VariantConfig::default(), seed)
        .map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!("inserted {base} ({}x{})", image.width(), image.height());
    if !variants.is_empty() {
        println!("augmented with {} variants: {variants:?}", variants.len());
    }
    Ok(())
}

fn cmd_insert_script(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let file = args
        .positional
        .first()
        .ok_or_else(|| "expected a script file argument".to_string())?;
    let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
    let sequence = codec::from_text(&text).map_err(|e| e.to_string())?;
    let id = db.insert_edited(sequence).map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!("inserted edited image {id}");
    Ok(())
}

fn cmd_ls(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let storage = db.storage();
    println!("{:>8}  {:<8}  {:<24}  derived", "id", "kind", "detail");
    for id in storage.ids() {
        match storage.kind(id).map_err(|e| e.to_string())? {
            mmdbms::storage::StoredKind::Binary => {
                let raster = storage.raster(id).map_err(|e| e.to_string())?;
                let children = storage.children_of(id);
                println!(
                    "{:>8}  binary    {:<24}  {} variant(s)",
                    id.raw(),
                    format!("{}x{} raster", raster.width(), raster.height()),
                    children.len()
                );
            }
            mmdbms::storage::StoredKind::Edited => {
                let seq = storage.edit_sequence(id).expect("edited has sequence");
                println!(
                    "{:>8}  edited    {:<24}  base img#{}",
                    id.raw(),
                    format!("{} op(s)", seq.len()),
                    seq.base.raw()
                );
            }
        }
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    if let Ok(id) = args.id() {
        let storage = db.storage();
        let hist = db.storage().histogram(id).map_err(|e| e.to_string())?;
        println!("{id}:");
        println!(
            "  kind:  {:?}",
            storage.kind(id).map_err(|e| e.to_string())?
        );
        if let Some(base) = storage.base_of(id) {
            println!("  base:  {base}");
        }
        println!("  pixels: {}", hist.total());
        println!("  dominant colors:");
        let mut bins: Vec<(usize, u64)> = hist.nonzero().collect();
        bins.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (bin, count) in bins.into_iter().take(5) {
            let rep = db.quantizer().representative(bin);
            println!(
                "    bin {bin:>3} ({rep:?})  {:>6.2}%",
                100.0 * count as f64 / hist.total() as f64
            );
        }
        return Ok(());
    }
    let stats = db.stats();
    let snapshot = db.bwm_snapshot();
    println!("database {}:", args.db_path()?.display());
    println!("  quantizer:       {}", db.quantizer().describe());
    println!(
        "  binary images:   {} ({} bytes)",
        stats.binary_count, stats.binary_bytes
    );
    println!(
        "  edited images:   {} ({} bytes)",
        stats.edited_count, stats.edited_bytes
    );
    if let Some(factor) = stats.space_saving_factor() {
        println!("  space saving:    {factor:.1}x per image");
    }
    println!(
        "  BWM structure:   {} clusters / {} classified / {} unclassified",
        snapshot.cluster_count(),
        snapshot.classified_count(),
        snapshot.unclassified_count()
    );
    println!(
        "  raster cache:    {} hits / {} misses",
        stats.cache_hits, stats.cache_misses
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    if args.options.contains_key("connect") {
        return cmd_query_remote(args);
    }
    let db = open_db(args)?;
    let (query, plan) = parse_query(args, &db)?;
    let start = std::time::Instant::now();
    let outcome = db
        .query_range_with_plan(&query, plan)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let results = if args.options.contains_key("expand") {
        let qp = mmdbms::query::QueryProcessor::new(db.storage());
        qp.expand_with_bases(&outcome.results)
    } else {
        outcome.sorted_results()
    };
    println!(
        "{} result(s) in {} under plan {plan} (bounds computed: {}, shortcut emissions: {})",
        results.len(),
        mmdbms::telemetry::format_duration(elapsed),
        outcome.stats.bounds_computed,
        outcome.stats.shortcut_emissions
    );
    for id in results {
        println!("  {id}");
    }
    Ok(())
}

/// Parses the shared query options (`--color`, `--min`, `--max`, `--plan`).
fn parse_query(
    args: &Args,
    db: &MultimediaDatabase,
) -> Result<(ColorRangeQuery, QueryPlan), String> {
    let color = args
        .options
        .get("color")
        .ok_or_else(|| "--color '#rrggbb' is required".to_string())?;
    let color = Rgb::from_hex(color).ok_or_else(|| format!("bad color {color:?}"))?;
    let min = args.f64_opt("min", 0.0)?;
    let max = args.f64_opt("max", 1.0)?;
    let plan = match args.options.get("plan").map(String::as_str) {
        None | Some("bwm") => QueryPlan::Bwm,
        Some("rbm") => QueryPlan::Rbm,
        Some("instantiate") => QueryPlan::Instantiate,
        Some("indexed") => QueryPlan::Indexed,
        Some(other) => return Err(format!("unknown plan {other:?}")),
    };
    Ok((ColorRangeQuery::new(db.bin_of(color), min, max), plan))
}

fn cmd_metrics(args: &Args) -> Result<(), String> {
    // Opening the database already exercises the storage and BWM layers
    // (catalog load + Figure 1 rebuild); eager registration fills in the
    // rest of the schema so every series is visible even at zero.
    let db = open_db(args)?;
    mmdbms::register_all_metrics();
    match args.options.get("format").map(String::as_str) {
        None | Some("prometheus") => print!("{}", db.metrics().render_prometheus()),
        Some("json") => println!("{}", db.metrics().render_json()),
        Some(other) => return Err(format!("unknown format {other:?} (prometheus|json)")),
    }
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let (query, plan) = parse_query(args, &db)?;
    mmdbms::telemetry::set_tracing(true);
    let (outcome, trace) = db
        .query_range_traced(&query, plan)
        .map_err(|e| e.to_string())?;
    if args.options.contains_key("json") {
        println!("{}", trace.render_json());
        return Ok(());
    }
    print!("{}", trace.render());
    println!(
        "{} result(s): {:?}",
        outcome.results.len(),
        outcome.sorted_results()
    );
    Ok(())
}

/// Runs `n` seeded range queries under the RBM, BWM, and indexed plans so
/// the histograms, counters, and flight recorder have data before exposition
/// (the indexed pass also builds the bound-interval index and populates its
/// hit counters).
/// Databases with no binary images (no palette mass to draw queries from)
/// are skipped with a notice.
fn run_warmup(db: &MultimediaDatabase, n: u64, seed: u64) -> Result<usize, String> {
    if n == 0 {
        return Ok(0);
    }
    if db.storage().binary_ids().is_empty() {
        eprintln!("warmup skipped: database has no binary images");
        return Ok(0);
    }
    let mut gen = mmdbms::datagen::QueryGenerator::weighted_from_db(seed, db.storage())
        .thresholds(0.02, 0.15);
    let mut ran = 0usize;
    for _ in 0..n {
        let query = gen.next_query();
        for plan in [QueryPlan::Rbm, QueryPlan::Bwm, QueryPlan::Indexed] {
            db.query_range_with_plan(&query, plan)
                .map_err(|e| e.to_string())?;
            ran += 1;
        }
    }
    mmdbms::rules::flush_metrics();
    Ok(ran)
}

/// The build profile this binary was compiled under, for `mmdb_build_info`.
fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// A shared readiness latch: `/readyz` answers 503 with the current detail
/// string until [`ReadyLatch::set_ready`] flips it to 200.
#[derive(Clone)]
struct ReadyLatch {
    ready: std::sync::Arc<std::sync::atomic::AtomicBool>,
    detail: std::sync::Arc<std::sync::Mutex<String>>,
}

impl ReadyLatch {
    fn new(initial_detail: &str) -> ReadyLatch {
        ReadyLatch {
            ready: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
            detail: std::sync::Arc::new(std::sync::Mutex::new(initial_detail.to_string())),
        }
    }

    fn set_detail(&self, detail: String) {
        *self.detail.lock().unwrap() = detail;
    }

    fn set_ready(&self, detail: String) {
        self.set_detail(detail);
        self.ready.store(true, std::sync::atomic::Ordering::Release);
    }

    fn probe(&self) -> mmdbms::telemetry::ReadinessProbe {
        let latch = self.clone();
        std::sync::Arc::new(move || {
            let detail = latch.detail.lock().unwrap().clone();
            if latch.ready.load(std::sync::atomic::Ordering::Acquire) {
                Ok(detail)
            } else {
                Err(detail)
            }
        })
    }
}

/// Ranked heat series the prerender hook exports as `mmdb_heat` gauges.
const HEAT_GAUGE_LIMIT: usize = 50;

/// Binds the metrics/exposition server with the standard prerender hook —
/// flush the rules layer's thread-local counters, refresh the bound-index
/// staleness gauges, publish the ranked `mmdb_heat` series, and run an SLO
/// evaluation (when one is configured) — plus a readiness probe. Every
/// scrape therefore sees a current observatory reading, and a scraper
/// polling `/metrics` is what drives the SLO state machine between
/// `/alerts` fetches.
fn bind_exposition(
    listen: &str,
    latch: &ReadyLatch,
    db: &std::sync::Arc<MultimediaDatabase>,
) -> Result<mmdbms::telemetry::MetricsServer, String> {
    let hook_db = std::sync::Arc::clone(db);
    let options = mmdbms::telemetry::ServeOptions {
        prerender: Some(std::sync::Arc::new(move || {
            // Scrapes must see exact counts: the rules layer batches its
            // metrics in thread-locals, so flush right before every render.
            mmdbms::rules::flush_metrics();
            hook_db.refresh_staleness_gauges();
            mmdbms::telemetry::publish_heat_gauges(HEAT_GAUGE_LIMIT);
            if let Some(engine) = mmdbms::telemetry::slo_engine() {
                engine.evaluate();
            }
        })),
        readiness: Some(latch.probe()),
    };
    mmdbms::telemetry::serve_with(listen, options).map_err(|e| format!("bind {listen}: {e}"))
}

/// Applies `--slo SPEC` when present (shared by `serve` and
/// `serve-queries`). The spec is parsed before any socket is bound so a
/// typo fails fast with the grammar in the error message.
fn configure_slo_from_args(args: &Args) -> Result<(), String> {
    let Some(spec) = args.options.get("slo") else {
        return Ok(());
    };
    let config =
        mmdbms::telemetry::SloConfig::parse(spec).map_err(|e| format!("bad --slo: {e}"))?;
    for objective in &config.objectives {
        eprintln!("slo: {}={}", objective.opcode, objective.describe());
    }
    if !mmdbms::telemetry::configure_slo(config) {
        eprintln!("slo: objectives already configured for this process; keeping the first set");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let db = std::sync::Arc::new(open_db(args)?);
    mmdbms::register_all_metrics();
    mmdbms::telemetry::register_build_info(env!("CARGO_PKG_VERSION"), build_profile());
    let config = mmdbms::ObservabilityConfig {
        slow_query_threshold: std::time::Duration::from_millis(args.u64_opt("slow-ms", 250)?),
        recorder_capacity: args.u64_opt(
            "recorder-capacity",
            mmdbms::telemetry::DEFAULT_RECORDER_CAPACITY as u64,
        )? as usize,
    };
    mmdbms::configure_observability(&config);
    configure_slo_from_args(args)?;
    let listen = args
        .options
        .get("listen")
        .map_or("127.0.0.1:9184", String::as_str);
    // Bind *before* the warmup so `/readyz` is observable (503) while the
    // catalog warms, then flips to 200 — orchestrators gate traffic on it.
    let latch = ReadyLatch::new("warming up");
    // Ctrl-C / SIGTERM: stop accepting scrapes, drain, exit 0. Installed
    // before the address is announced so a supervisor reacting to that line
    // can never catch the process with the default (killing) disposition.
    let signal = mmdbms::server::ShutdownSignal::install();
    let server = bind_exposition(listen, &latch, &db)?;
    let addr = server.local_addr();
    // Flush explicitly: when stdout is a pipe (the CI smoke test, scripts
    // reading the ephemeral port) the line would otherwise sit in the block
    // buffer until exit — which for `serve` is never.
    println!("serving /metrics /events /healthz /readyz /traces /heat /alerts on http://{addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let warmed = run_warmup(&db, args.u64_opt("warmup", 0)?, args.u64_opt("seed", 42)?)?;
    latch.set_ready(format!("catalog loaded, {warmed} warmup queries"));
    signal.wait(std::time::Duration::from_millis(100));
    eprintln!("signal received, draining metrics server");
    server.shutdown();
    drain_to_disk(&db);
    Ok(())
}

fn cmd_serve_queries(args: &Args) -> Result<(), String> {
    let db = std::sync::Arc::new(open_db(args)?);
    mmdbms::register_all_metrics();
    mmdbms::telemetry::register_build_info(env!("CARGO_PKG_VERSION"), build_profile());
    configure_slo_from_args(args)?;
    let mut config = mmdbms::server::ServerConfig::default();
    config.workers = args.u64_opt("workers", config.workers as u64)? as usize;
    config.queue_depth = args.u64_opt("queue-depth", config.queue_depth as u64)? as usize;
    config.trace_mode = match args.options.get("trace-mode") {
        None => mmdbms::server::TraceMode::default(),
        Some(s) => mmdbms::server::TraceMode::parse(s)
            .ok_or_else(|| format!("unknown trace mode {s:?} (off|tail|full)"))?,
    };
    if let Some(raw) = args.options.get("trace-keep-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| format!("bad --trace-keep-ms {raw:?}"))?;
        mmdbms::telemetry::set_trace_keep_threshold(std::time::Duration::from_millis(ms));
    }
    // An optional metrics endpoint rides along so operators can watch the
    // server counters (overloads, deadline misses, latency) live, fetch
    // kept traces from /traces, and gate traffic on /readyz. Bound *before*
    // the warmup so the unready window is observable.
    let latch = ReadyLatch::new("warming up");
    // Install before any address is announced (same reasoning as `serve`):
    // a SIGINT arriving during warmup must drain, not kill.
    let signal = mmdbms::server::ShutdownSignal::install();
    let metrics = match args.options.get("metrics") {
        Some(addr) => {
            let m = bind_exposition(addr, &latch, &db)?;
            eprintln!("metrics on http://{}", m.local_addr());
            Some(m)
        }
        None => None,
    };
    run_warmup(&db, args.u64_opt("warmup", 0)?, args.u64_opt("seed", 42)?)?;
    let listen = args
        .options
        .get("listen")
        .map_or("127.0.0.1:9190", String::as_str);
    let backend: std::sync::Arc<dyn mmdbms::server::QueryBackend> = std::sync::Arc::clone(&db) as _;
    let server = mmdbms::server::QueryServer::bind(listen, backend, config)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    latch.set_ready(format!(
        "catalog loaded, serving queries on {}",
        server.local_addr()
    ));
    println!(
        "serving queries on {} (workers {}, queue depth {}, tracing {})",
        server.local_addr(),
        config.workers,
        config.queue_depth,
        config.trace_mode.name()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    signal.wait(std::time::Duration::from_millis(100));
    eprintln!("signal received, draining in-flight requests");
    let drained = server.shutdown();
    if let Some(m) = metrics {
        m.shutdown();
    }
    drain_to_disk(&db);
    println!("drained ({} queued at stop)", drained.queued_at_stop);
    Ok(())
}

/// `query --connect HOST:PORT`: run the range query over the wire instead
/// of in-process. The histogram bin is selected with `--bin N` (the server
/// owns the quantizer; resolving a hex color needs a local `--db`).
fn cmd_query_remote(args: &Args) -> Result<(), String> {
    use mmdbms::server::protocol::{PlanKind, ProfileKind};
    let addr = args.options.get("connect").expect("checked by caller");
    let bin = match args.options.get("bin") {
        Some(v) => v.parse::<u32>().map_err(|_| format!("bad --bin {v:?}"))?,
        None => {
            if !args.options.contains_key("db") {
                return Err(
                    "--connect needs --bin N (or --db plus --color to resolve one locally)"
                        .to_string(),
                );
            }
            let db = open_db(args)?;
            let color = args
                .options
                .get("color")
                .ok_or_else(|| "--color '#rrggbb' is required".to_string())?;
            let color = Rgb::from_hex(color).ok_or_else(|| format!("bad color {color:?}"))?;
            db.bin_of(color) as u32
        }
    };
    let plan = match args.options.get("plan").map(String::as_str) {
        None | Some("bwm") => PlanKind::Bwm,
        Some("rbm") => PlanKind::Rbm,
        Some("instantiate") => PlanKind::Instantiate,
        Some("indexed") => PlanKind::Indexed,
        Some(other) => return Err(format!("unknown plan {other:?}")),
    };
    let profile = match args.options.get("profile").map(String::as_str) {
        None | Some("conservative") => ProfileKind::Conservative,
        Some("paper-table1") => ProfileKind::PaperTable1,
        Some(other) => return Err(format!("unknown profile {other:?}")),
    };
    let request = mmdbms::server::RangeRequest {
        plan,
        profile,
        bin,
        pct_min: args.f64_opt("min", 0.0)?,
        pct_max: args.f64_opt("max", 1.0)?,
    };
    let deadline_ms = args.u64_opt("deadline-ms", 0)? as u32;
    let mut client = mmdbms::server::Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let reply = client
        .range_with_deadline(request, deadline_ms)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    println!(
        "{} result(s) in {} from {addr} (bounds computed: {}, shortcut emissions: {})",
        reply.ids.len(),
        mmdbms::telemetry::format_duration(elapsed),
        reply.bounds_computed,
        reply.shortcut_emissions
    );
    let mut ids = reply.ids;
    ids.sort_unstable();
    for id in ids {
        println!("  img#{id}");
    }
    Ok(())
}

/// A minimal HTTP/1.1 GET against the exposition server (dependency-free on
/// purpose: it only needs to fetch from our own `MetricsServer`). Returns
/// the body; non-2xx statuses become errors carrying the body as detail.
fn http_get(addr: &str, path: &str, timeout: std::time::Duration) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send {addr}{path}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {addr}{path}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}{path}"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    if (200..300).contains(&status) {
        Ok(body.to_string())
    } else {
        Err(format!(
            "{addr}{path} answered {status}: {}",
            body.trim_end()
        ))
    }
}

/// `traces --connect HOST:PORT [--id HEX]`: fetch the tail-sampled trace
/// store from a serving process — summaries, or one full span tree by id.
fn cmd_traces(args: &Args) -> Result<(), String> {
    let addr = args
        .options
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT (the metrics address) is required".to_string())?;
    let path = match args.options.get("id") {
        Some(id) => format!("/traces/{id}"),
        None => "/traces".to_string(),
    };
    let body = http_get(addr, &path, std::time::Duration::from_secs(10))?;
    println!("{}", body.trim_end());
    Ok(())
}

/// `profile --connect HOST:PORT [--seconds N]`: capture a collapsed-stack
/// wall-clock profile from a serving process (feed to a flamegraph tool).
fn cmd_profile(args: &Args) -> Result<(), String> {
    let addr = args
        .options
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT (the metrics address) is required".to_string())?;
    let seconds = args.u64_opt("seconds", 5)?;
    let body = http_get(
        addr,
        &format!("/debug/profile?seconds={seconds}"),
        // The server blocks for the whole window; pad the read timeout.
        std::time::Duration::from_secs(seconds + 15),
    )?;
    print!("{body}");
    Ok(())
}

/// `heat --connect HOST:PORT [--limit N]`: fetch the ranked query-heat
/// table from a serving process (HOST:PORT = the metrics address).
fn cmd_heat(args: &Args) -> Result<(), String> {
    let addr = args
        .options
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT (the metrics address) is required".to_string())?;
    let limit = args.u64_opt("limit", HEAT_GAUGE_LIMIT as u64)?;
    let body = http_get(
        addr,
        &format!("/heat?limit={limit}"),
        std::time::Duration::from_secs(10),
    )?;
    println!("{}", body.trim_end());
    Ok(())
}

/// `slo --connect HOST:PORT`: fetch the SLO alert states (burn rates, state
/// machine, transition counts) from a serving process.
fn cmd_slo(args: &Args) -> Result<(), String> {
    let addr = args
        .options
        .get("connect")
        .ok_or_else(|| "--connect HOST:PORT (the metrics address) is required".to_string())?;
    let body = http_get(addr, "/alerts", std::time::Duration::from_secs(10))?;
    println!("{}", body.trim_end());
    Ok(())
}

fn cmd_events(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    mmdbms::register_all_metrics();
    run_warmup(&db, args.u64_opt("warmup", 0)?, args.u64_opt("seed", 42)?)?;
    let limit = args.u64_opt("limit", 100)? as usize;
    let events = mmdbms::telemetry::recorder().events();
    let tail = &events[events.len().saturating_sub(limit)..];
    println!("{}", mmdbms::telemetry::events_to_json(tail));
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    mmdbms::register_all_metrics();
    let queries = args.u64_opt("queries", 20)?;
    let ran = run_warmup(&db, queries, args.u64_opt("seed", 42)?)?;
    if ran > 0 {
        println!("warmed up with {ran} queries");
    }
    print_heat_and_staleness(args, &db)?;
    let fmt = mmdbms::telemetry::format_duration;
    let rows: Vec<(String, mmdbms::telemetry::HistogramSnapshot)> = mmdbms::telemetry::global()
        .histograms()
        .into_iter()
        .map(|(name, hist)| (name, hist.snapshot()))
        .filter(|(_, snap)| snap.count > 0)
        .collect();
    let width = rows
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0)
        .max("histogram".len());
    println!(
        "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "histogram", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (name, snap) in rows {
        println!(
            "{name:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            snap.count,
            fmt(snap.mean().unwrap_or_default()),
            fmt(snap.p50().unwrap_or_default()),
            fmt(snap.p90().unwrap_or_default()),
            fmt(snap.p99().unwrap_or_default()),
            fmt(snap.max())
        );
    }
    Ok(())
}

/// The query-heat and index-staleness sections of `mmdbctl top`:
/// per-(bin, plan, profile) heat rows — ranked by decayed heat (`--sort
/// heat`, the default) or lifetime count (`--sort total`) — each annotated
/// with its profile's epoch lag and resync backlog, then a per-profile
/// staleness summary.
fn print_heat_and_staleness(args: &Args, db: &MultimediaDatabase) -> Result<(), String> {
    let sort = args.options.get("sort").map_or("heat", String::as_str);
    let mut entries = mmdbms::telemetry::heat().snapshot();
    match sort {
        "heat" => {} // snapshot order: decayed heat, descending
        "total" => entries.sort_by(|a, b| b.total.cmp(&a.total).then(a.bin.cmp(&b.bin))),
        other => return Err(format!("unknown sort {other:?} (heat|total)")),
    }
    db.refresh_staleness_gauges();
    let g = mmdbms::telemetry::global();
    let staleness =
        |metric: &str, profile: &str| g.gauge(&format!("{metric}{{profile=\"{profile}\"}}")).get();
    if entries.is_empty() {
        println!("query heat: no queries recorded yet");
    } else {
        println!(
            "{:>4}  {:<12}  {:<14}  {:>10}  {:>8}  {:>6}  {:>8}",
            "bin", "plan", "profile", "heat", "total", "lag", "backlog"
        );
        let limit = args.u64_opt("limit", 20)? as usize;
        for e in entries.iter().take(limit.max(1)) {
            println!(
                "{:>4}  {:<12}  {:<14}  {:>10.3}  {:>8}  {:>6}  {:>8}",
                e.bin,
                e.plan,
                e.profile,
                e.heat,
                e.total,
                staleness("mmdb_boundidx_epoch_lag", e.profile),
                staleness("mmdb_boundidx_resync_backlog", e.profile),
            );
        }
    }
    println!(
        "{:<14}  {:>6}  {:>9}  {:>12}  {:>8}  {:>11}",
        "index profile", "lag", "resident", "invalidated", "backlog", "synced-ago"
    );
    for profile in ["conservative", "paper_table1"] {
        println!(
            "{profile:<14}  {:>6}  {:>9}  {:>12}  {:>8}  {:>10}s",
            staleness("mmdb_boundidx_epoch_lag", profile),
            staleness("mmdb_boundidx_entries_resident", profile),
            staleness("mmdb_boundidx_entries_invalidated", profile),
            staleness("mmdb_boundidx_resync_backlog", profile),
            staleness("mmdb_boundidx_seconds_since_sync", profile),
        );
    }
    Ok(())
}

fn cmd_knn(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let file = args
        .positional
        .first()
        .ok_or_else(|| "expected a probe PPM file".to_string())?;
    let probe = mmdbms::imaging::ppm::read_file(Path::new(file)).map_err(|e| e.to_string())?;
    let k = args.u64_opt("k", 5)? as usize;
    if args.options.contains_key("augmented") {
        let out = db
            .similar_to_augmented(&probe, k)
            .map_err(|e| e.to_string())?;
        println!(
            "augmented k-NN ({} pruned / {} instantiated of {} edited):",
            out.stats.edited_pruned,
            out.stats.edited_instantiated,
            out.stats.edited_pruned + out.stats.edited_instantiated
        );
        for (d, id) in out.neighbours {
            println!("  {id}  L1 = {d:.4}");
        }
    } else {
        println!("binary-image k-NN (R-tree):");
        for (d, id) in db.similar_to(&probe, k) {
            println!("  {id}  L2 = {d:.4}");
        }
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let id = args.id()?;
    let out = args
        .positional
        .first()
        .ok_or_else(|| "expected an output path".to_string())?;
    db.export_ppm(id, Path::new(out))
        .map_err(|e| e.to_string())?;
    println!("exported {id} to {out}");
    Ok(())
}

fn cmd_script(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let id = args.id()?;
    let seq = db
        .storage()
        .edit_sequence(id)
        .ok_or_else(|| format!("{id} is not an edited image"))?;
    print!("{}", codec::to_text(&seq));
    Ok(())
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    // Register the analyzer's series up front so `mmdbctl metrics` shows
    // run counts, latency, and per-lint counters even before the first
    // finding.
    mmdbms::register_all_metrics();
    let report = db.lint();
    match args.options.get("format").map(String::as_str) {
        None | Some("text") => print!("{}", report.render_text()),
        Some("json") => println!("{}", report.render_json()),
        Some(other) => return Err(format!("unknown format {other:?} (text|json)")),
    }
    if report.has_errors() {
        Err(format!(
            "{} error-level diagnostic(s)",
            report.error_count()
        ))
    } else {
        Ok(())
    }
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let id = args.id()?;
    let analysis = db.analyze(id).map_err(|e| e.to_string())?;
    let seq = db
        .storage()
        .edit_sequence(id)
        .ok_or_else(|| format!("{id} is not an edited image"))?;
    println!("{id}: {} op(s), base {}", seq.len(), seq.base);
    let verdict = mmdbms::analysis::widening_verdict(&seq);
    if verdict.all_widening {
        println!("  classification: all rules bound-widening (BWM Main)");
    } else {
        println!(
            "  classification: {} non-widening op(s), first at index {} (BWM Unclassified)",
            verdict.non_widening_count,
            verdict.first_non_widening.unwrap_or(0)
        );
    }
    match &analysis.audit {
        Some(audit) => println!(
            "  soundness audit: {} over {} op(s) (monotone: {}, Combine containment: {}, \
             final containment: {})",
            if audit.is_clean() { "clean" } else { "DIRTY" },
            audit.ops_audited,
            audit.monotonic,
            audit.combine_containment,
            audit.final_containment
        ),
        None => println!("  soundness audit: skipped (unresolved references or prior errors)"),
    }
    if analysis.dead_ops.is_empty() {
        println!("  dead ops: none");
    } else {
        let simplified = mmdbms::analysis::simplify(&seq);
        println!(
            "  dead ops: {} removable ({} -> {} op(s) after elimination)",
            analysis.dead_ops.len(),
            seq.len(),
            simplified.sequence.len()
        );
    }
    if analysis.diagnostics.is_empty() {
        println!("  diagnostics: none");
    } else {
        println!("  diagnostics:");
        for d in &analysis.diagnostics {
            println!("    {d}");
        }
    }
    if analysis.has_errors() {
        Err("sequence has error-level diagnostics".to_string())
    } else {
        Ok(())
    }
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let problems = db.storage().verify();
    if problems.is_empty() {
        println!("ok: database is consistent");
        Ok(())
    } else {
        for p in &problems {
            println!("PROBLEM: {p}");
        }
        Err(format!("{} problem(s) found", problems.len()))
    }
}

/// `fsck <data-dir>`: offline durability check — no lock is taken and
/// nothing is modified, so it is safe against a crashed (but not a live)
/// process's directory. The durable layer validates meta, snapshots, and
/// WAL framing; the storage-aware checks layered here decode the catalog
/// (`F011`), confirm the referenced blob generation exists (`F010`), and
/// validate any persisted bound-index segments (`F009`).
fn cmd_fsck(args: &Args) -> Result<(), String> {
    let dir = match args.positional.first() {
        Some(p) => PathBuf::from(p),
        None => args.db_path()?,
    };
    let mut report = mmdbms::durable::fsck_dir(&dir);
    storage_aware_fsck(&dir, &mut report);
    for finding in &report.findings {
        println!("{finding}");
    }
    let covered = report
        .latest_snapshot
        .as_ref()
        .map_or(0, |s| s.covered_seqno);
    println!(
        "fsck {}: {} WAL segment(s), {} record(s) ({} replayable past snapshot seqno {}), {} finding(s)",
        dir.display(),
        report.segments,
        report.wal_records,
        report.tail_records,
        covered,
        report.findings.len()
    );
    if report.has_errors() {
        Err(format!(
            "{} error-level finding(s)",
            report
                .findings
                .iter()
                .filter(|f| f.code.severity() == mmdbms::durable::Severity::Error)
                .count()
        ))
    } else {
        Ok(())
    }
}

/// The storage-level half of fsck: checks that need the catalog codec and
/// the bound-index format, pushed into the durable report under `F009`–
/// `F011`.
fn storage_aware_fsck(dir: &Path, report: &mut mmdbms::durable::FsckReport) {
    use mmdbms::durable::FsckCode;
    let Ok(snaps) = mmdbms::durable::SnapshotStore::open(&dir.join("snapshots")) else {
        return; // already reported as F004 by the durable layer
    };
    let Ok(Some(loaded)) = snaps.load_latest() else {
        return;
    };
    let catalog = match mmdbms::storage::Catalog::decode(&loaded.payload) {
        Ok((catalog, _free_list)) => catalog,
        Err(e) => {
            report.push(
                FsckCode::SnapshotUndecodable,
                format!("{}: {e}", loaded.path.display()),
            );
            return;
        }
    };
    let binary_count = catalog
        .iter()
        .filter(|(_, e)| e.kind() == mmdbms::storage::StoredKind::Binary)
        .count();
    let blob_path = dir.join(mmdbms::storage::blob_file_name(loaded.blob_gen));
    if binary_count > 0 && !blob_path.exists() {
        report.push(
            FsckCode::BlobGenerationMissing,
            format!(
                "{} ({} binary image(s) reference generation {})",
                blob_path.display(),
                binary_count,
                loaded.blob_gen
            ),
        );
    }
    // Persisted bound indexes: each must parse and must not be stamped
    // beyond the last catalog state reachable from disk.
    let Some(quantizer) = from_description(catalog.quantizer_desc()) else {
        report.push(
            FsckCode::SnapshotUndecodable,
            format!(
                "unknown quantizer description {:?}",
                catalog.quantizer_desc()
            ),
        );
        return;
    };
    let last_reachable = loaded.covered_seqno + report.tail_records;
    let idx_dir = dir.join("boundidx");
    for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
        match mmdbms::boundidx::persist::load(&idx_dir, profile, quantizer.bin_count()) {
            Ok(None) => {}
            Ok(Some(idx)) if idx.synced_epoch() > last_reachable => report.push(
                FsckCode::IndexSegmentCorrupt,
                format!(
                    "{}: stamped epoch {} beyond last reachable seqno {last_reachable}",
                    idx_dir
                        .join(mmdbms::boundidx::persist::index_file_name(profile))
                        .display(),
                    idx.synced_epoch()
                ),
            ),
            Ok(Some(_)) => {}
            Err(e) => report.push(
                FsckCode::IndexSegmentCorrupt,
                format!(
                    "{}: {e}",
                    idx_dir
                        .join(mmdbms::boundidx::persist::index_file_name(profile))
                        .display()
                ),
            ),
        }
    }
}

/// `churn --db DIR [--ops N] [--seed S]`: apply a deterministic mutation
/// workload (inserts, edited variants, deletes) until `--ops` is reached or
/// the process is killed. Progress lines are flushed so a harness can
/// SIGKILL mid-churn and know roughly how far it got; the crash-recovery
/// smoke test is the intended caller.
fn cmd_churn(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let db = open_db(args)?;
    let ops = args.u64_opt("ops", 0)?;
    let seed = args.u64_opt("seed", 1)?;
    let report_every = args.u64_opt("report-every", 32)?.max(1);
    let flags = FlagGenerator::with_seed(seed);
    let mut edited_pool: Vec<ImageId> = Vec::new();
    let mut done = 0u64;
    loop {
        if ops > 0 && done >= ops {
            break;
        }
        let step = done % 5;
        match step {
            // Two binary inserts, two edited variants, one delete per cycle.
            0 | 1 => {
                let img = flags.generate(seed ^ done);
                let base = db.insert_image(&img).map_err(|e| e.to_string())?;
                let variant = db
                    .insert_edited(
                        EditSequence::builder(base)
                            .define(Rect::new(0, 0, 8, 8))
                            .blur()
                            .build(),
                    )
                    .map_err(|e| e.to_string())?;
                edited_pool.push(variant);
            }
            2 | 3 => {
                if let Some(&base) = db.storage().binary_ids().first() {
                    let variant = db
                        .insert_edited(
                            EditSequence::builder(base)
                                .define(Rect::new(0, 0, 4, 4))
                                .modify(Rgb::WHITE, Rgb::RED)
                                .build(),
                        )
                        .map_err(|e| e.to_string())?;
                    edited_pool.push(variant);
                }
            }
            _ => {
                if edited_pool.len() > 4 {
                    let victim = edited_pool.swap_remove((done as usize) % edited_pool.len());
                    db.delete(victim).map_err(|e| e.to_string())?;
                }
            }
        }
        done += 1;
        if done.is_multiple_of(report_every) {
            println!(
                "churn: {done} op(s), epoch {}, {} image(s)",
                db.storage().current_epoch(),
                db.storage().ids().len()
            );
            let _ = std::io::stdout().flush();
        }
    }
    db.flush().map_err(|e| e.to_string())?;
    println!(
        "churn complete: {done} op(s), epoch {}, {} image(s)",
        db.storage().current_epoch(),
        db.storage().ids().len()
    );
    Ok(())
}

fn cmd_compact(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let reclaimed = db.storage().compact().map_err(|e| e.to_string())?;
    println!("compacted: {reclaimed} bytes reclaimed");
    Ok(())
}

fn cmd_delete(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let id = args.id()?;
    db.delete(id).map_err(|e| e.to_string())?;
    db.flush().map_err(|e| e.to_string())?;
    println!("deleted {id}");
    Ok(())
}

const USAGE: &str = "usage: mmdbctl <create|gen|insert|insert-script|ls|info|query|explain|metrics|serve|serve-queries|traces|profile|heat|slo|events|top|knn|export|script|lint|analyze|verify|fsck|churn|compact|delete> [options]
  every command taking --db DIR also accepts --data-dir DIR plus durability
  knobs [--fsync always|interval[:ms]|never] [--segment-bytes N] [--snapshot-every N]
  create        --db DIR [--quantizer rgb-uniform/4]
  gen           --db DIR [--collection flags|helmets] [--count N] [--augment N] [--seed S]
  insert        --db DIR FILE.ppm [--augment N] [--seed S]
  insert-script --db DIR SCRIPT.edit
  ls            --db DIR
  info          --db DIR [--id N]
  query         --db DIR --color '#rrggbb' [--min F] [--max F] [--plan bwm|rbm|instantiate|indexed] [--expand true]
                --connect HOST:PORT --bin N [--min F] [--max F] [--plan P] [--profile conservative|paper-table1] [--deadline-ms MS]
  explain       --db DIR --color '#rrggbb' [--min F] [--max F] [--plan bwm|rbm|instantiate|indexed] [--json true]
  metrics       --db DIR [--format prometheus|json]
  serve         --db DIR [--listen HOST:PORT] [--warmup N] [--slow-ms MS] [--recorder-capacity N] [--slo SPEC]
  serve-queries --db DIR [--listen HOST:PORT] [--workers N] [--queue-depth N] [--metrics HOST:PORT] [--warmup N]
                [--trace-mode off|tail|full] [--trace-keep-ms MS] [--slo SPEC]
                # SPEC: 'range=5ms@p99,err<0.1%;knn=20ms@p95' plus optional ';windows=5m/1h'
  traces        --connect HOST:PORT [--id HEX]       # HOST:PORT = metrics address
  profile       --connect HOST:PORT [--seconds N]    # collapsed stacks for flamegraphs
  heat          --connect HOST:PORT [--limit N]      # ranked query-heat table
  slo           --connect HOST:PORT                  # SLO alert states / burn rates
  events        --db DIR [--warmup N] [--limit N]
  top           --db DIR [--queries N] [--seed S] [--sort heat|total] [--limit N]
  knn           --db DIR PROBE.ppm [--k N] [--augmented true]
  export        --db DIR --id N OUT.ppm
  script        --db DIR --id N
  lint          --db DIR [--format text|json]
  analyze       --db DIR --id N
  verify        --db DIR
  fsck          DIR                # offline on-disk durability check (no lock)
  churn         --db DIR [--ops N] [--seed S] [--report-every N]
  compact       --db DIR
  delete        --db DIR --id N";

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`mmdbctl ls | head`), the
    // conventional Unix behaviour; std's default is a panic on the write.
    std::panic::set_hook(Box::new(|info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        eprintln!("{info}");
        std::process::exit(101);
    }));
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "create" => cmd_create(&args),
        "gen" => cmd_gen(&args),
        "insert" => cmd_insert(&args),
        "insert-script" => cmd_insert_script(&args),
        "ls" => cmd_ls(&args),
        "info" => cmd_info(&args),
        "query" => cmd_query(&args),
        "explain" => cmd_explain(&args),
        "metrics" => cmd_metrics(&args),
        "serve" => cmd_serve(&args),
        "serve-queries" => cmd_serve_queries(&args),
        "traces" => cmd_traces(&args),
        "profile" => cmd_profile(&args),
        "heat" => cmd_heat(&args),
        "slo" => cmd_slo(&args),
        "events" => cmd_events(&args),
        "top" => cmd_top(&args),
        "knn" => cmd_knn(&args),
        "export" => cmd_export(&args),
        "script" => cmd_script(&args),
        "lint" => cmd_lint(&args),
        "analyze" => cmd_analyze(&args),
        "verify" => cmd_verify(&args),
        "fsck" => cmd_fsck(&args),
        "churn" => cmd_churn(&args),
        "compact" => cmd_compact(&args),
        "delete" => cmd_delete(&args),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        parse_args(
            &tokens
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn parses_options_and_positionals() {
        let a = parse(&["query", "--db", "/tmp/x", "--color", "#ff0000", "probe.ppm"]).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.options.get("db").unwrap(), "/tmp/x");
        assert_eq!(a.options.get("color").unwrap(), "#ff0000");
        assert_eq!(a.positional, vec!["probe.ppm"]);
        assert_eq!(a.db_path().unwrap(), PathBuf::from("/tmp/x"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["ls", "--db"]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn typed_option_accessors() {
        let a = parse(&["x", "--id", "7", "--k", "3", "--min", "0.25"]).unwrap();
        assert_eq!(a.id().unwrap(), ImageId::new(7));
        assert_eq!(a.u64_opt("k", 1).unwrap(), 3);
        assert_eq!(a.u64_opt("absent", 9).unwrap(), 9);
        assert!((a.f64_opt("min", 0.0).unwrap() - 0.25).abs() < 1e-12);
        assert!(parse(&["x", "--id", "zebra"]).unwrap().id().is_err());
    }
}

//! Network backend: implements [`mmdb_server::QueryBackend`] for
//! [`MultimediaDatabase`], which is what `mmdbctl serve-queries` hands to
//! the [`mmdb_server::QueryServer`]. The trait requires `Send + Sync`, so
//! this impl is also a standing compile-time audit that the whole query
//! path works through `&self` from concurrent worker threads.

use crate::MultimediaDatabase;
use mmdb_editops::ImageId;
use mmdb_query::QueryPlan;
use mmdb_rules::{ColorRangeQuery, RuleProfile};
use mmdb_server::protocol::{PlanKind, ProfileKind};
use mmdb_server::{BackendError, LookupReply, QueryBackend, RangeReply, RangeRequest, StatsReply};
use mmdb_storage::StoredKind;
use mmdb_telemetry::{profile_frame, QueryTrace};

fn plan_of(kind: PlanKind) -> QueryPlan {
    match kind {
        PlanKind::Bwm => QueryPlan::Bwm,
        PlanKind::Rbm => QueryPlan::Rbm,
        PlanKind::Instantiate => QueryPlan::Instantiate,
        PlanKind::Indexed => QueryPlan::Indexed,
    }
}

fn profile_of(kind: ProfileKind) -> RuleProfile {
    match kind {
        ProfileKind::Conservative => RuleProfile::Conservative,
        ProfileKind::PaperTable1 => RuleProfile::PaperTable1,
    }
}

/// Shared wire-to-engine validation: the wire decoder validates the
/// percentage range but cannot know this database's quantizer, so the bin
/// bound is checked here — an out-of-range bin would otherwise panic deep
/// in the rule engine and histogram indexing.
fn checked_query(
    db: &MultimediaDatabase,
    req: &RangeRequest,
) -> Result<ColorRangeQuery, BackendError> {
    let bins = db.quantizer().bin_count();
    if req.bin as usize >= bins {
        return Err(BackendError::BadRequest(format!(
            "bin {} out of range for quantizer with {bins} bins",
            req.bin
        )));
    }
    Ok(ColorRangeQuery {
        bin: req.bin as usize,
        pct_min: req.pct_min,
        pct_max: req.pct_max,
    })
}

fn reply_of(outcome: &mmdb_bwm::QueryOutcome) -> RangeReply {
    RangeReply {
        ids: outcome.results.iter().map(|id| id.0).collect(),
        bounds_computed: outcome.stats.bounds_computed as u64,
        shortcut_emissions: outcome.stats.shortcut_emissions as u64,
    }
}

fn plan_frame_name(plan: PlanKind) -> &'static str {
    match plan {
        PlanKind::Bwm => "range/bwm",
        PlanKind::Rbm => "range/rbm",
        PlanKind::Instantiate => "range/instantiate",
        PlanKind::Indexed => "range/indexed",
    }
}

impl QueryBackend for MultimediaDatabase {
    fn range(&self, req: &RangeRequest) -> Result<RangeReply, BackendError> {
        let query = checked_query(self, req)?;
        let _frame = profile_frame(plan_frame_name(req.plan));
        let outcome = self
            .query_range_with(&query, plan_of(req.plan), profile_of(req.profile))
            .map_err(|e| BackendError::Internal(e.to_string()))?;
        Ok(reply_of(&outcome))
    }

    fn range_traced(
        &self,
        req: &RangeRequest,
    ) -> Result<(RangeReply, Option<QueryTrace>), BackendError> {
        let query = checked_query(self, req)?;
        let _frame = profile_frame(plan_frame_name(req.plan));
        let (outcome, trace) = self
            .query_range_traced_with(&query, plan_of(req.plan), profile_of(req.profile))
            .map_err(|e| BackendError::Internal(e.to_string()))?;
        Ok((reply_of(&outcome), Some(trace)))
    }

    fn knn(&self, probe_id: u64, k: u32) -> Result<Vec<(u64, f64)>, BackendError> {
        let id = ImageId(probe_id);
        if !self.storage().contains(id) {
            return Err(BackendError::NotFound(probe_id));
        }
        let probe = self
            .image(id)
            .map_err(|e| BackendError::Internal(e.to_string()))?;
        let outcome = self
            .similar_to_augmented(&probe, k as usize)
            .map_err(|e| BackendError::Internal(e.to_string()))?;
        Ok(outcome
            .neighbours
            .into_iter()
            .map(|(distance, id)| (id.0, distance))
            .collect())
    }

    fn lookup(&self, raw_id: u64) -> Result<LookupReply, BackendError> {
        let id = ImageId(raw_id);
        let kind = self
            .storage()
            .kind(id)
            .map_err(|_| BackendError::NotFound(raw_id))?;
        let raster = self
            .image(id)
            .map_err(|e| BackendError::Internal(e.to_string()))?;
        let (width, height) = (raster.width(), raster.height());
        Ok(LookupReply {
            kind: match kind {
                StoredKind::Binary => 0,
                StoredKind::Edited => 1,
            },
            width,
            height,
            pixels: u64::from(width) * u64::from(height),
            base: self.storage().base_of(id).map(|b| b.0),
        })
    }

    fn stats(&self) -> StatsReply {
        let s = MultimediaDatabase::stats(self);
        StatsReply {
            binary_count: s.binary_count as u64,
            edited_count: s.edited_count as u64,
            binary_bytes: s.binary_bytes,
            edited_bytes: s.edited_bytes,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::RgbQuantizer;

    /// Compile-time audit (satellite of the serving work): the database
    /// handle must be shareable across the server's worker threads with the
    /// whole query path running through `&self`.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MultimediaDatabase>();
        assert_send_sync::<std::sync::Arc<MultimediaDatabase>>();
        // And it must be usable as the server's backend trait object.
        fn assert_backend<T: QueryBackend>() {}
        assert_backend::<MultimediaDatabase>();
    }

    #[test]
    fn backend_maps_core_operations() {
        use mmdb_imaging::{RasterImage, Rgb};

        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let red = Rgb::new(255, 0, 0);
        let image = RasterImage::filled(8, 8, red).unwrap();
        let id = db.insert_image(&image).unwrap();

        let bin = db.bin_of(red) as u32;
        let reply = QueryBackend::range(
            &db,
            &RangeRequest {
                plan: PlanKind::Bwm,
                profile: ProfileKind::Conservative,
                bin,
                pct_min: 0.5,
                pct_max: 1.0,
            },
        )
        .unwrap();
        assert_eq!(reply.ids, vec![id.0]);

        let found = QueryBackend::lookup(&db, id.0).unwrap();
        assert_eq!((found.width, found.height), (8, 8));
        assert_eq!(found.kind, 0);
        assert_eq!(found.base, None);

        assert!(matches!(
            QueryBackend::lookup(&db, 9999),
            Err(BackendError::NotFound(9999))
        ));

        let neighbours = QueryBackend::knn(&db, id.0, 1).unwrap();
        assert_eq!(neighbours[0].0, id.0);

        let stats = QueryBackend::stats(&db);
        assert_eq!(stats.binary_count, 1);
    }

    /// A wire-supplied bin beyond the quantizer's range must come back as a
    /// structured BadRequest, never reach the (panicking) rule engine.
    #[test]
    fn out_of_range_bin_is_rejected_not_panicking() {
        let db = MultimediaDatabase::in_memory(Box::new(RgbQuantizer::default_64()));
        let bins = db.quantizer().bin_count() as u32;
        for bad_bin in [bins, bins + 1, u32::MAX] {
            let result = QueryBackend::range(
                &db,
                &RangeRequest {
                    plan: PlanKind::Rbm,
                    profile: ProfileKind::Conservative,
                    bin: bad_bin,
                    pct_min: 0.0,
                    pct_max: 1.0,
                },
            );
            match result {
                Err(BackendError::BadRequest(msg)) => {
                    assert!(msg.contains("out of range"), "unhelpful message: {msg}");
                }
                other => panic!("bin {bad_bin}: expected BadRequest, got {other:?}"),
            }
        }
    }
}

//! Property tests: the conservative rule profile is *sound* — for any edit
//! sequence the instantiation engine accepts, the rule-derived bounds admit
//! the true per-bin pixel counts of the instantiated image. This is the
//! "no false negatives" guarantee of §3.2 of the paper.

use mmdb_editops::{EditOp, EditSequence, ImageId, InstantiationEngine, MapResolver, Matrix3};
use mmdb_histogram::{ColorHistogram, Quantizer, RgbQuantizer};
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use mmdb_rules::{ImageInfo, MapInfoResolver, RuleEngine, RuleProfile};
use proptest::prelude::*;

/// A small saturated palette so bins have meaningful populations under the
/// 64-bin quantizer.
const PALETTE: [Rgb; 6] = [
    Rgb::new(255, 0, 0),
    Rgb::new(0, 255, 0),
    Rgb::new(0, 0, 255),
    Rgb::new(255, 255, 0),
    Rgb::new(255, 255, 255),
    Rgb::new(0, 0, 0),
];

fn arb_color() -> impl Strategy<Value = Rgb> {
    (0..PALETTE.len()).prop_map(|i| PALETTE[i])
}

/// Base images: solid background with up to three random palette rectangles.
fn arb_image(max_side: i64) -> impl Strategy<Value = RasterImage> {
    (
        6..max_side,
        6..max_side,
        arb_color(),
        proptest::collection::vec(
            (
                0..max_side,
                0..max_side,
                1..max_side,
                1..max_side,
                arb_color(),
            ),
            0..3,
        ),
    )
        .prop_map(|(w, h, bg, rects)| {
            let mut img = RasterImage::filled(w as u32, h as u32, bg).unwrap();
            for (x, y, rw, rh, c) in rects {
                draw::fill_rect(&mut img, &Rect::from_origin_size(x, y, rw, rh), c);
            }
            img
        })
}

fn arb_op(side: i64) -> impl Strategy<Value = EditOp> {
    prop_oneof![
        // Define — may exceed bounds (clipped) or be empty.
        (-4..side, -4..side, 0..side, 0..side).prop_map(|(x, y, w, h)| EditOp::Define {
            region: Rect::from_origin_size(x, y, w, h),
        }),
        // Modify between palette colors.
        (arb_color(), arb_color()).prop_map(|(from, to)| EditOp::Modify { from, to }),
        // Combine: box blur or a random non-negative kernel.
        Just(EditOp::box_blur()),
        proptest::collection::vec(0.0f32..3.0, 9).prop_map(|w| EditOp::Combine {
            weights: [w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], w[8]],
        }),
        // Mutate: integer translation.
        (-6i64..6, -6i64..6).prop_map(|(dx, dy)| EditOp::Mutate {
            matrix: Matrix3::translation(dx as f64, dy as f64),
        }),
        // Mutate: whole-image integer scale (exact under NN resampling).
        (1u32..3, 1u32..3).prop_map(|(sx, sy)| EditOp::Mutate {
            matrix: Matrix3::scale(sx as f64, sy as f64),
        }),
        // Mutate: fractional scale.
        (5u32..20, 5u32..20).prop_map(|(sx, sy)| EditOp::Mutate {
            matrix: Matrix3::scale(sx as f64 / 10.0, sy as f64 / 10.0),
        }),
        // Mutate: rotation about a point.
        (0u32..8, 0i64..16, 0i64..16).prop_map(|(octant, cx, cy)| EditOp::Mutate {
            matrix: Matrix3::rotation_about(
                octant as f64 * std::f64::consts::FRAC_PI_4,
                cx as f64,
                cy as f64,
            ),
        }),
        // Merge with NULL target (crop).
        Just(EditOp::Merge {
            target: None,
            xp: 0,
            yp: 0
        }),
        // Merge into the registered target image (id 2).
        (-5i64..30, -5i64..30).prop_map(|(xp, yp)| EditOp::Merge {
            target: Some(ImageId::new(2)),
            xp,
            yp,
        }),
    ]
}

fn arb_case() -> impl Strategy<Value = (RasterImage, RasterImage, EditSequence)> {
    (
        arb_image(24),
        arb_image(20),
        proptest::collection::vec(arb_op(24), 0..6),
    )
        .prop_map(|(base, target, ops)| (base, target, EditSequence::new(ImageId::new(1), ops)))
}

fn check_soundness(base: RasterImage, target: RasterImage, seq: EditSequence) {
    let quant = RgbQuantizer::default_64();

    let mut raster_resolver = MapResolver::new();
    raster_resolver.insert(ImageId::new(1), base.clone());
    raster_resolver.insert(ImageId::new(2), target.clone());

    let mut info_resolver = MapInfoResolver::new();
    info_resolver.insert(
        ImageId::new(1),
        ImageInfo::new(
            ColorHistogram::extract(&base, &quant),
            base.width(),
            base.height(),
        ),
    );
    info_resolver.insert(
        ImageId::new(2),
        ImageInfo::new(
            ColorHistogram::extract(&target, &quant),
            target.width(),
            target.height(),
        ),
    );

    let exec = InstantiationEngine::new(&raster_resolver);
    let rules = RuleEngine::new(&quant, RuleProfile::Conservative);

    match exec.instantiate(&seq) {
        Err(_) => {
            // If the executor rejects the sequence (e.g. crop of an empty
            // region), the rule engine must reject it too rather than emit
            // bogus bounds.
            assert!(
                rules.bounds(&seq, 0, &info_resolver).is_err(),
                "executor rejected the sequence but the rule engine bounded it"
            );
        }
        Ok(img) => {
            let truth = ColorHistogram::extract(&img, &quant);
            for bin in 0..quant.bin_count() {
                let b = rules
                    .bounds(&seq, bin, &info_resolver)
                    .expect("executor accepted the sequence; rules must too");
                assert_eq!(
                    b.total,
                    img.pixel_count(),
                    "total mismatch for bin {bin}: {b:?} vs image {}x{}",
                    img.width(),
                    img.height()
                );
                assert!(
                    b.admits(truth.count(bin)),
                    "bin {bin}: bounds {b:?} exclude true count {} (seq: {seq:?})",
                    truth.count(bin)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Conservative bounds admit the ground truth for arbitrary sequences.
    #[test]
    fn conservative_bounds_are_sound((base, target, seq) in arb_case()) {
        check_soundness(base, target, seq);
    }
}

/// Deterministic regression cases distilled from the strategy space.
#[test]
fn soundness_regression_crop_after_scale() {
    let base = RasterImage::filled(8, 8, Rgb::RED).unwrap();
    let target = RasterImage::filled(5, 5, Rgb::WHITE).unwrap();
    let seq = EditSequence::builder(ImageId::new(1))
        .scale(2.0, 2.0)
        .define(Rect::new(3, 3, 12, 12))
        .crop_to_region()
        .build();
    check_soundness(base, target, seq);
}

#[test]
fn soundness_regression_merge_then_blur() {
    let mut base = RasterImage::filled(10, 10, Rgb::GREEN).unwrap();
    draw::fill_rect(&mut base, &Rect::new(0, 0, 5, 5), Rgb::RED);
    let target = RasterImage::filled(6, 6, Rgb::BLUE).unwrap();
    let seq = EditSequence::builder(ImageId::new(1))
        .define(Rect::new(0, 0, 5, 5))
        .merge_into(ImageId::new(2), 3, 3)
        .blur()
        .build();
    check_soundness(base, target, seq);
}

#[test]
fn soundness_regression_rotation_of_subregion() {
    let mut base = RasterImage::filled(16, 16, Rgb::BLACK).unwrap();
    draw::fill_rect(&mut base, &Rect::new(2, 2, 8, 8), Rgb::new(255, 255, 0));
    let target = RasterImage::filled(4, 4, Rgb::WHITE).unwrap();
    let seq = EditSequence::builder(ImageId::new(1))
        .define(Rect::new(2, 2, 8, 8))
        .mutate(Matrix3::rotation_about(
            std::f64::consts::FRAC_PI_4,
            8.0,
            8.0,
        ))
        .build();
    check_soundness(base, target, seq);
}

/// The no-false-negative guarantee stated in query terms: if the instantiated
/// image satisfies a query, `may_satisfy` must return true.
#[test]
fn rbm_filter_has_no_false_negatives_on_a_grid_of_queries() {
    let quant = RgbQuantizer::default_64();
    let mut base = RasterImage::filled(12, 12, Rgb::WHITE).unwrap();
    draw::fill_rect(&mut base, &Rect::new(0, 0, 12, 4), Rgb::RED);
    let target = RasterImage::filled(8, 8, Rgb::BLUE).unwrap();

    let mut raster_resolver = MapResolver::new();
    raster_resolver.insert(ImageId::new(1), base.clone());
    raster_resolver.insert(ImageId::new(2), target.clone());
    let mut info_resolver = MapInfoResolver::new();
    info_resolver.insert(
        ImageId::new(1),
        ImageInfo::new(ColorHistogram::extract(&base, &quant), 12, 12),
    );
    info_resolver.insert(
        ImageId::new(2),
        ImageInfo::new(ColorHistogram::extract(&target, &quant), 8, 8),
    );

    let sequences = vec![
        EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 6, 6))
            .modify(Rgb::RED, Rgb::BLUE)
            .build(),
        EditSequence::builder(ImageId::new(1))
            .blur()
            .scale(2.0, 2.0)
            .build(),
        EditSequence::builder(ImageId::new(1))
            .define(Rect::new(2, 2, 10, 10))
            .crop_to_region()
            .build(),
        EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 5, 5))
            .merge_into(ImageId::new(2), 2, 2)
            .build(),
    ];

    let exec = InstantiationEngine::new(&raster_resolver);
    let rules = RuleEngine::new(&quant, RuleProfile::Conservative);
    for seq in &sequences {
        let img = exec.instantiate(seq).unwrap();
        let truth = ColorHistogram::extract(&img, &quant);
        for bin in [
            quant.bin_of(Rgb::RED),
            quant.bin_of(Rgb::BLUE),
            quant.bin_of(Rgb::WHITE),
        ] {
            let frac = truth.fraction(bin);
            for lo in [0.0, 0.1, 0.25, 0.5, 0.75] {
                for hi in [0.25, 0.5, 0.75, 1.0] {
                    if lo > hi {
                        continue;
                    }
                    let q = mmdb_rules::ColorRangeQuery::new(bin, lo, hi);
                    if q.matches_fraction(frac) {
                        assert!(
                            rules.may_satisfy(seq, &q, &info_resolver).unwrap(),
                            "false negative: bin {bin} frac {frac} query [{lo},{hi}]"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `bounds_vector` is exactly equivalent to per-bin `bounds` calls.
    #[test]
    fn bounds_vector_matches_per_bin((base, target, seq) in arb_case()) {
        let quant = RgbQuantizer::default_64();
        let mut info_resolver = MapInfoResolver::new();
        info_resolver.insert(
            ImageId::new(1),
            ImageInfo::new(
                ColorHistogram::extract(&base, &quant),
                base.width(),
                base.height(),
            ),
        );
        info_resolver.insert(
            ImageId::new(2),
            ImageInfo::new(
                ColorHistogram::extract(&target, &quant),
                target.width(),
                target.height(),
            ),
        );
        let rules = RuleEngine::new(&quant, RuleProfile::Conservative);
        match rules.bounds_vector(&seq, &info_resolver) {
            Ok(vector) => {
                prop_assert_eq!(vector.len(), quant.bin_count());
                for (bin, expected) in vector.iter().enumerate() {
                    let single = rules
                        .bounds(&seq, bin, &info_resolver)
                        .expect("vector succeeded, single-bin must too");
                    prop_assert_eq!(&single, expected, "bin {} diverges", bin);
                }
            }
            Err(_) => {
                prop_assert!(
                    rules.bounds(&seq, 0, &info_resolver).is_err(),
                    "vector failed but single-bin succeeded"
                );
            }
        }
    }
}

//! Catalog lookups the rule engine needs.
//!
//! The BOUNDS computation starts from "the value of the histogram bin for
//! the referenced base image" and, for `Merge`, needs the target's histogram
//! (`T_HB`, `T`) and dimensions (Table 1's total-pixels formula uses the
//! target's width and height). The storage engine implements this trait over
//! its catalog; tests use [`MapInfoResolver`].

use crate::{Result, RuleError};
use mmdb_editops::ImageId;
use mmdb_histogram::ColorHistogram;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the rule engine needs to know about a referenced *binary*
/// image: its exact histogram and raster dimensions.
#[derive(Clone, Debug)]
pub struct ImageInfo {
    /// Exact color histogram (extracted at insert time).
    pub histogram: Arc<ColorHistogram>,
    /// Raster width.
    pub width: u32,
    /// Raster height.
    pub height: u32,
}

impl ImageInfo {
    /// Creates an info record, checking histogram/dimension consistency.
    ///
    /// # Panics
    /// Panics when the histogram total differs from `width * height`.
    pub fn new(histogram: ColorHistogram, width: u32, height: u32) -> Self {
        assert_eq!(
            histogram.total(),
            width as u64 * height as u64,
            "histogram total must equal width*height"
        );
        ImageInfo {
            histogram: Arc::new(histogram),
            width,
            height,
        }
    }
}

/// Resolves image ids to their catalog info.
pub trait InfoResolver {
    /// Returns the info for `id`, or `None` when unknown.
    fn info(&self, id: ImageId) -> Option<ImageInfo>;

    /// Like [`InfoResolver::info`] but surfacing the standard error.
    fn require(&self, id: ImageId) -> Result<ImageInfo> {
        self.info(id).ok_or(RuleError::UnknownImage(id))
    }
}

/// A `HashMap`-backed resolver for tests and small tools.
#[derive(Default, Clone)]
pub struct MapInfoResolver {
    entries: HashMap<ImageId, ImageInfo>,
}

impl MapInfoResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `info` under `id`.
    pub fn insert(&mut self, id: ImageId, info: ImageInfo) {
        self.entries.insert(id, info);
    }
}

impl InfoResolver for MapInfoResolver {
    fn info(&self, id: ImageId) -> Option<ImageInfo> {
        self.entries.get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{RasterImage, Rgb};

    #[test]
    fn map_resolver_roundtrip() {
        let img = RasterImage::filled(4, 2, Rgb::RED).unwrap();
        let hist = ColorHistogram::extract(&img, &RgbQuantizer::default_64());
        let mut r = MapInfoResolver::new();
        r.insert(ImageId::new(1), ImageInfo::new(hist, 4, 2));
        let info = r.require(ImageId::new(1)).unwrap();
        assert_eq!(info.width, 4);
        assert_eq!(info.histogram.total(), 8);
        assert!(matches!(
            r.require(ImageId::new(2)),
            Err(RuleError::UnknownImage(_))
        ));
    }

    #[test]
    #[should_panic(expected = "histogram total")]
    fn inconsistent_info_panics() {
        let img = RasterImage::filled(4, 2, Rgb::RED).unwrap();
        let hist = ColorHistogram::extract(&img, &RgbQuantizer::default_64());
        ImageInfo::new(hist, 5, 5);
    }
}

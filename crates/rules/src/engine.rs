//! The BOUNDS computation: Table 1 of the paper, executed over an edit
//! sequence without instantiating the image.

use crate::bounds::BoundRange;
use crate::query::ColorRangeQuery;
use crate::resolver::InfoResolver;
use crate::{Result, RuleError};
use mmdb_editops::{EditOp, EditSequence, Matrix3, OpKind};
use mmdb_histogram::Quantizer;
use mmdb_imaging::{Rect, Rgb};
use mmdb_telemetry::counter;
use std::cell::Cell;

/// BOUNDS computations between drains of the thread-local accumulator. At
/// ~8 relaxed RMWs per drain this amortizes the global-registry cost to a
/// small fraction of an atomic per `bounds` call — a query scanning hundreds
/// of edited images pays a handful of drains, not hundreds of flushes.
const DRAIN_EVERY: u64 = 256;

/// Thread-local staging area for the rule engine's counters. Registry
/// exposition can lag by up to [`DRAIN_EVERY`] BOUNDS calls per thread;
/// call [`crate::flush_metrics`] on a thread before snapshotting to drain
/// its pending counts.
struct PendingRuleMetrics {
    kinds: [Cell<u64>; 6],
    /// Indexed like [`RuleProfile`]: 0 = PaperTable1, 1 = Conservative.
    widening: [Cell<u64>; 2],
    bounds: Cell<u64>,
}

thread_local! {
    static PENDING: PendingRuleMetrics = const {
        PendingRuleMetrics {
            kinds: [
                Cell::new(0),
                Cell::new(0),
                Cell::new(0),
                Cell::new(0),
                Cell::new(0),
                Cell::new(0),
            ],
            widening: [Cell::new(0), Cell::new(0)],
            bounds: Cell::new(0),
        }
    };
}

fn drain_pending(p: &PendingRuleMetrics) {
    let bounds = p.bounds.replace(0);
    if bounds > 0 {
        counter!("mmdb_rules_bounds_computed_total").add(bounds);
    }
    let series = [
        counter!(r#"mmdb_rules_applications_total{op="define"}"#),
        counter!(r#"mmdb_rules_applications_total{op="combine"}"#),
        counter!(r#"mmdb_rules_applications_total{op="modify"}"#),
        counter!(r#"mmdb_rules_applications_total{op="mutate"}"#),
        counter!(r#"mmdb_rules_applications_total{op="merge_null"}"#),
        counter!(r#"mmdb_rules_applications_total{op="merge_target"}"#),
    ];
    for (c, slot) in series.iter().zip(&p.kinds) {
        let n = slot.replace(0);
        if n > 0 {
            c.add(n);
        }
    }
    let widening = [
        counter!(r#"mmdb_rules_widening_ops_total{profile="paper_table1"}"#),
        counter!(r#"mmdb_rules_widening_ops_total{profile="conservative"}"#),
    ];
    for (c, slot) in widening.iter().zip(&p.widening) {
        let n = slot.replace(0);
        if n > 0 {
            c.add(n);
        }
    }
}

/// Drains this thread's pending rule-engine counts into the global registry.
pub(crate) fn flush_thread_metrics() {
    PENDING.with(drain_pending);
}

/// Stages one `bounds` call's telemetry into the thread-local accumulator,
/// draining to the global registry every [`DRAIN_EVERY`] calls. The walk
/// itself touches only locals; this path is plain (non-atomic) stores.
fn stage_rule_metrics(kinds: &[u64; 6], widening: u64, profile: RuleProfile) {
    PENDING.with(|p| {
        for (slot, &n) in p.kinds.iter().zip(kinds) {
            if n > 0 {
                slot.set(slot.get() + n);
            }
        }
        let wi = match profile {
            RuleProfile::PaperTable1 => 0,
            RuleProfile::Conservative => 1,
        };
        p.widening[wi].set(p.widening[wi].get() + widening);
        let bounds = p.bounds.get() + 1;
        p.bounds.set(bounds);
        if bounds >= DRAIN_EVERY {
            drain_pending(p);
        }
    });
}

fn kind_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::Define => 0,
        OpKind::Combine => 1,
        OpKind::Modify => 2,
        OpKind::Mutate => 3,
        OpKind::MergeNull => 4,
        OpKind::MergeTarget => 5,
    }
}

/// Which reading of Table 1 the engine applies. See the crate docs for the
/// full discussion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RuleProfile {
    /// The literal table from the paper: `Combine` leaves all three
    /// quantities unchanged; `Mutate` uses ±|DR| (rigid body) or ×M11·M22
    /// (whole image); `Merge` ignores paste overlap and background gap fill.
    PaperTable1,
    /// Provably sound bounds with respect to the `mmdb-editops`
    /// instantiation engine (the default).
    #[default]
    Conservative,
}

impl RuleProfile {
    /// Stable lowercase label used in telemetry series, matching the
    /// existing `mmdb_rules_widening_ops_total{profile="..."}` spellings.
    pub fn label(self) -> &'static str {
        match self {
            RuleProfile::PaperTable1 => "paper_table1",
            RuleProfile::Conservative => "conservative",
        }
    }
}

/// Walker state: the bound triple plus the geometry needed to evaluate |DR|
/// and canvas sizes symbolically.
#[derive(Clone, Copy, Debug)]
struct BoundState {
    range: BoundRange,
    /// Current canvas, always `(0, 0, w, h)`.
    image_rect: Rect,
    /// Current defined region, always clipped to `image_rect`.
    dr: Rect,
}

/// The RBM rule engine.
///
/// One engine instance is configured with the system's quantizer, a
/// [`RuleProfile`], and the instantiation background color (needed by the
/// conservative `Merge` rule to bound gap-fill pixels).
pub struct RuleEngine<'q> {
    quantizer: &'q dyn Quantizer,
    profile: RuleProfile,
    background: Rgb,
}

impl<'q> RuleEngine<'q> {
    /// Creates an engine with the default (black) background.
    pub fn new(quantizer: &'q dyn Quantizer, profile: RuleProfile) -> Self {
        RuleEngine {
            quantizer,
            profile,
            background: Rgb::BLACK,
        }
    }

    /// Creates an engine with an explicit instantiation background color.
    pub fn with_background(
        quantizer: &'q dyn Quantizer,
        profile: RuleProfile,
        background: Rgb,
    ) -> Self {
        RuleEngine {
            quantizer,
            profile,
            background,
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> RuleProfile {
        self.profile
    }

    /// The configured quantizer.
    pub fn quantizer(&self) -> &dyn Quantizer {
        self.quantizer
    }

    /// The BOUNDS algorithm of §3.2/§4: computes the `[BOUNDmin, BOUNDmax,
    /// imagesize]` triple for histogram bin `bin` of the edited image
    /// described by `seq`, accessing only catalog metadata (histograms and
    /// dimensions) — never pixel data.
    pub fn bounds(
        &self,
        seq: &EditSequence,
        bin: usize,
        resolver: &dyn InfoResolver,
    ) -> Result<BoundRange> {
        assert!(
            bin < self.quantizer.bin_count(),
            "bin {bin} out of range for quantizer with {} bins",
            self.quantizer.bin_count()
        );
        let base = resolver.require(seq.base)?;
        let image_rect = Rect::of_image(base.width, base.height);
        let mut state = BoundState {
            range: BoundRange::exact(base.histogram.count(bin), base.histogram.total()),
            image_rect,
            dr: image_rect,
        };
        let mut kinds = [0u64; 6];
        let mut widening = 0u64;
        for op in &seq.ops {
            self.apply(&mut state, op, bin, resolver)?;
            kinds[kind_slot(op.kind())] += 1;
            widening += u64::from(op.is_bound_widening());
        }
        stage_rule_metrics(&kinds, widening, self.profile);
        Ok(state.range)
    }

    /// Computes the bound triples of **every** histogram bin in one pass
    /// over the operation list, applying each op's rule to all bins before
    /// moving to the next op. Exactly equivalent to calling
    /// [`RuleEngine::bounds`] per bin (verified by property test). Used by
    /// the bounds-pruned k-NN over edited images (the paper's §6 future
    /// work).
    pub fn bounds_vector(
        &self,
        seq: &EditSequence,
        resolver: &dyn InfoResolver,
    ) -> Result<Vec<BoundRange>> {
        // One counter per call, never per bin — this path is hot in the
        // bounds-pruned k-NN.
        counter!("mmdb_rules_bounds_vector_total").inc();
        let base = resolver.require(seq.base)?;
        let image_rect = Rect::of_image(base.width, base.height);
        let bins = self.quantizer.bin_count();
        let mut states: Vec<BoundState> = (0..bins)
            .map(|bin| BoundState {
                range: BoundRange::exact(base.histogram.count(bin), base.histogram.total()),
                image_rect,
                dr: image_rect,
            })
            .collect();
        for op in &seq.ops {
            // The geometric trajectory is identical for every bin; the
            // per-bin part of each rule only touches (min, max). Applying
            // the scalar rule per bin keeps one source of truth for the
            // formulas (verified equivalent to `bounds` by property test).
            for (bin, state) in states.iter_mut().enumerate() {
                self.apply(state, op, bin, resolver)?;
            }
        }
        Ok(states.into_iter().map(|s| s.range).collect())
    }

    /// Like [`RuleEngine::bounds_vector`], but additionally snapshots the
    /// per-bin triples **after every operation**: element `0` is the base
    /// state, element `i + 1` the state after `seq.ops[i]`. The soundness
    /// audit in `mmdb-analysis` walks these snapshots to check widening
    /// monotonicity and per-op profile containment; the final element is
    /// exactly what `bounds_vector` returns.
    pub fn bounds_trace(
        &self,
        seq: &EditSequence,
        resolver: &dyn InfoResolver,
    ) -> Result<Vec<Vec<BoundRange>>> {
        let base = resolver.require(seq.base)?;
        let image_rect = Rect::of_image(base.width, base.height);
        let bins = self.quantizer.bin_count();
        let mut states: Vec<BoundState> = (0..bins)
            .map(|bin| BoundState {
                range: BoundRange::exact(base.histogram.count(bin), base.histogram.total()),
                image_rect,
                dr: image_rect,
            })
            .collect();
        let mut trace = Vec::with_capacity(seq.ops.len() + 1);
        trace.push(states.iter().map(|s| s.range).collect::<Vec<_>>());
        for op in &seq.ops {
            for (bin, state) in states.iter_mut().enumerate() {
                self.apply(state, op, bin, resolver)?;
            }
            trace.push(states.iter().map(|s| s.range).collect::<Vec<_>>());
        }
        Ok(trace)
    }

    /// Convenience: does the edited image *possibly* satisfy `query`? This
    /// is the §3 pruning test — `false` is definitive (no false negatives),
    /// `true` means the image must be kept as a candidate.
    pub fn may_satisfy(
        &self,
        seq: &EditSequence,
        query: &ColorRangeQuery,
        resolver: &dyn InfoResolver,
    ) -> Result<bool> {
        Ok(self
            .bounds(seq, query.bin, resolver)?
            .overlaps_fraction(query.pct_min, query.pct_max))
    }

    fn apply(
        &self,
        state: &mut BoundState,
        op: &EditOp,
        bin: usize,
        resolver: &dyn InfoResolver,
    ) -> Result<()> {
        match op {
            EditOp::Define { region } => {
                state.dr = region.intersect(&state.image_rect);
                Ok(())
            }
            EditOp::Combine { weights } => {
                self.rule_combine(state, weights);
                Ok(())
            }
            EditOp::Modify { from, to } => {
                self.rule_modify(state, *from, *to, bin);
                Ok(())
            }
            EditOp::Mutate { matrix } => self.rule_mutate(state, matrix),
            EditOp::Merge { target, xp, yp } => match target {
                None => self.rule_merge_null(state),
                Some(id) => {
                    let info = resolver.require(*id)?;
                    self.rule_merge_target(state, &info, *xp, *yp, bin)
                }
            },
        }
    }

    /// Table 1, `Combine` row. Literal profile: no change. Conservative
    /// profile: every DR pixel's color may change, so the bin may lose or
    /// gain up to |DR| pixels.
    fn rule_combine(&self, state: &mut BoundState, _weights: &[f32; 9]) {
        if self.profile == RuleProfile::PaperTable1 {
            return;
        }
        let d = state.dr.area();
        let r = &mut state.range;
        r.min = r.min.saturating_sub(d);
        r.max = r.max.saturating_add(d);
        *r = r.clamped();
    }

    /// Table 1, `Modify` row: "If RGBnew maps to HB: increase max by |DR|;
    /// else if RGBold maps to HB: decrease min by |DR|; else: no change."
    fn rule_modify(&self, state: &mut BoundState, from: Rgb, to: Rgb, bin: usize) {
        let bin_from = self.quantizer.bin_of(from);
        let bin_to = self.quantizer.bin_of(to);
        if self.profile == RuleProfile::Conservative && bin_from == bin_to {
            // Recoloring within one bin cannot change its population.
            return;
        }
        let d = state.dr.area();
        let r = &mut state.range;
        if bin_to == bin {
            r.max = r.max.saturating_add(d);
        } else if bin_from == bin {
            r.min = r.min.saturating_sub(d);
        }
        *r = r.clamped();
    }

    /// Table 1, `Mutate` row: whole-image axis scaling multiplies all three
    /// quantities by `M11 · M22`; everything else (the "rigid body" case and
    /// its generalizations) widens by the affected pixel count with the
    /// total unchanged.
    fn rule_mutate(&self, state: &mut BoundState, matrix: &Matrix3) -> Result<()> {
        if !matrix.is_affine() {
            return Err(RuleError::InvalidSequence(
                "mutate matrix must be affine".into(),
            ));
        }
        if state.dr.is_empty() {
            return Ok(());
        }
        let whole = state.dr == state.image_rect;
        if whole && matrix.is_axis_scale() {
            return self.rule_whole_image_scale(state, matrix);
        }
        // Transformed bounding box of the DR, exactly as the executor
        // computes it.
        let corners = [
            (state.dr.x0 as f64, state.dr.y0 as f64),
            (state.dr.x1 as f64, state.dr.y0 as f64),
            (state.dr.x0 as f64, state.dr.y1 as f64),
            (state.dr.x1 as f64, state.dr.y1 as f64),
        ];
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for (cx, cy) in corners {
            let (tx, ty) = matrix.apply(cx, cy);
            min_x = min_x.min(tx);
            min_y = min_y.min(ty);
            max_x = max_x.max(tx);
            max_y = max_y.max(ty);
        }
        if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
            return Err(RuleError::InvalidSequence(
                "mutate matrix produced a non-finite region".into(),
            ));
        }
        let bbox = Rect::new(
            min_x.floor() as i64,
            min_y.floor() as i64,
            max_x.ceil() as i64,
            max_y.ceil() as i64,
        );
        let dest = bbox.intersect(&state.image_rect);
        let delta = match self.profile {
            // Paper: ±|DR| for the rigid-body case.
            RuleProfile::PaperTable1 => state.dr.area(),
            // Sound w.r.t. stamp semantics: only destination pixels change.
            RuleProfile::Conservative => dest.area(),
        };
        let r = &mut state.range;
        r.min = r.min.saturating_sub(delta);
        r.max = r.max.saturating_add(delta);
        *r = r.clamped();
        state.dr = dest;
        Ok(())
    }

    fn rule_whole_image_scale(&self, state: &mut BoundState, matrix: &Matrix3) -> Result<()> {
        let sx = matrix.m[0][0];
        let sy = matrix.m[1][1];
        let old_w = state.image_rect.width();
        let old_h = state.image_rect.height();
        // Must mirror the executor's dimension computation exactly.
        let new_w = ((old_w as f64 * sx).round() as i64).max(1);
        let new_h = ((old_h as f64 * sy).round() as i64).max(1);
        let new_total = (new_w * new_h) as u64;
        if new_total > mmdb_editops::exec::MAX_CANVAS_PIXELS {
            // Matches the executor's canvas cap: such a sequence cannot be
            // instantiated, so it cannot be bounded either.
            return Err(RuleError::InvalidSequence(format!(
                "mutate would produce a {new_w}x{new_h} canvas, over the pixel cap"
            )));
        }
        let r = &mut state.range;
        match self.profile {
            RuleProfile::PaperTable1 => {
                // "Multiply by M11 · M22" — all three quantities.
                let factor = sx * sy;
                r.min = (r.min as f64 * factor).floor().max(0.0) as u64;
                r.max = (r.max as f64 * factor).ceil() as u64;
            }
            RuleProfile::Conservative => {
                // Nearest-neighbour resampling uses each source row between
                // floor(fy) and ceil(fy) times (and likewise per column), so
                // the per-bin count is bounded by count·⌊fx⌋⌊fy⌋ and
                // count·⌈fx⌉⌈fy⌉.
                let fx = new_w as f64 / old_w as f64;
                let fy = new_h as f64 / old_h as f64;
                r.min = r.min.saturating_mul(fx.floor() as u64 * fy.floor() as u64);
                r.max = r
                    .max
                    .saturating_mul((fx.ceil() as u64).max(1) * (fy.ceil() as u64).max(1));
            }
        }
        r.total = new_total;
        *r = r.clamped();
        state.image_rect = Rect::new(0, 0, new_w, new_h);
        state.dr = state.image_rect;
        Ok(())
    }

    /// Table 1, `Merge` with NULL target: the image becomes the DR, so
    /// `min' = |DR| − (E − HBmin)`, `max' = MIN(HBmax, |DR|)`, `total' =
    /// |DR|`.
    fn rule_merge_null(&self, state: &mut BoundState) -> Result<()> {
        let d = state.dr.area();
        if d == 0 {
            return Err(RuleError::InvalidSequence(
                "merge(NULL) with empty defined region".into(),
            ));
        }
        let r = &mut state.range;
        let outside_bin = r.total - r.min; // pixels possibly not in the bin
        r.min = d.saturating_sub(outside_bin);
        r.max = r.max.min(d);
        r.total = d;
        *r = r.clamped();
        state.image_rect = Rect::new(0, 0, state.dr.width(), state.dr.height());
        state.dr = state.image_rect;
        Ok(())
    }

    /// Table 1, `Merge` with a target: the pasted DR contributes
    /// `[|DR| − (E − HBmin), MIN(HBmax, |DR|)]`, the surviving target pixels
    /// contribute `[T_HB − covered, MIN(T_HB, T − covered)]`, and the canvas
    /// is the union of the target and the pasted rectangle. The conservative
    /// profile uses the exact paste overlap for `covered` and accounts for
    /// background gap fill; the literal profile uses `covered = |DR|` and
    /// ignores gaps.
    fn rule_merge_target(
        &self,
        state: &mut BoundState,
        target: &crate::resolver::ImageInfo,
        xp: i64,
        yp: i64,
        bin: usize,
    ) -> Result<()> {
        let t_total = target.histogram.total();
        let t_hb = target.histogram.count(bin);
        let target_rect = Rect::of_image(target.width, target.height);
        let dest = Rect::from_origin_size(xp, yp, state.dr.width(), state.dr.height());
        let canvas = target_rect.union(&dest);
        let new_total = canvas.area();
        if new_total > mmdb_editops::exec::MAX_CANVAS_PIXELS {
            return Err(RuleError::InvalidSequence(format!(
                "merge would produce a {}x{} canvas, over the pixel cap",
                canvas.width(),
                canvas.height()
            )));
        }
        let d = state.dr.area();

        let r = &mut state.range;
        let dr_min = d.saturating_sub(r.total - r.min);
        let dr_max = r.max.min(d);

        let (t_min, t_max, gap_contrib) = match self.profile {
            RuleProfile::PaperTable1 => {
                let t_min = t_hb.saturating_sub(d);
                let t_max = t_hb.min(t_total.saturating_sub(d));
                (t_min, t_max, 0)
            }
            RuleProfile::Conservative => {
                let covered = dest.intersect(&target_rect).area();
                let t_min = t_hb.saturating_sub(covered);
                let t_max = t_hb.min(t_total - covered);
                // Gap pixels are filled with the background color — an exact
                // contribution, not a bound.
                // canvas ⊇ target ∪ dest, so new_total + covered ≥ t_total + d.
                let gap = (new_total + covered) - t_total - d;
                let gap_contrib = if self.quantizer.bin_of(self.background) == bin {
                    gap
                } else {
                    0
                };
                (t_min, t_max, gap_contrib)
            }
        };

        r.min = dr_min + t_min + gap_contrib;
        r.max = dr_max + t_max + gap_contrib;
        r.total = new_total;
        *r = r.clamped();

        state.image_rect = Rect::new(0, 0, canvas.width(), canvas.height());
        state.dr = dest
            .translate(-canvas.x0, -canvas.y0)
            .intersect(&state.image_rect);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{ImageInfo, MapInfoResolver};
    use mmdb_editops::{EditSequence, ImageId};
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{draw, RasterImage};

    fn q() -> RgbQuantizer {
        RgbQuantizer::default_64()
    }

    fn register(resolver: &mut MapInfoResolver, id: u64, img: &RasterImage) {
        let hist = ColorHistogram::extract(img, &q());
        resolver.insert(
            ImageId::new(id),
            ImageInfo::new(hist, img.width(), img.height()),
        );
    }

    /// 10×10 image: rows 0..3 red (30 px), rest white (70 px).
    fn base_image() -> RasterImage {
        let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 10, 3), Rgb::RED);
        img
    }

    fn setup() -> (MapInfoResolver, RgbQuantizer) {
        let mut r = MapInfoResolver::new();
        register(&mut r, 1, &base_image());
        (r, q())
    }

    #[test]
    fn empty_sequence_bounds_are_exact_base_histogram() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::new(ImageId::new(1), vec![]);
        let red = quant.bin_of(Rgb::RED);
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b, BoundRange::exact(30, 100));
        assert!(b.is_exact());
    }

    #[test]
    fn unknown_base_is_an_error() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::new(ImageId::new(42), vec![]);
        assert!(matches!(
            engine.bounds(&seq, 0, &r),
            Err(RuleError::UnknownImage(_))
        ));
    }

    #[test]
    fn modify_into_bin_raises_max_only() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let red = quant.bin_of(Rgb::RED);
        // Recolor green→red inside a 4×4 region: red may gain ≤16 pixels.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .modify(Rgb::GREEN, Rgb::RED)
            .build();
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.min, 30);
        assert_eq!(b.max, 46);
        assert_eq!(b.total, 100);
    }

    #[test]
    fn modify_out_of_bin_lowers_min_only() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 10, 2))
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.min, 10); // 30 − 20
        assert_eq!(b.max, 30);
    }

    #[test]
    fn modify_unrelated_bins_no_change() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .modify(Rgb::GREEN, Rgb::BLUE)
            .build();
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b, BoundRange::exact(30, 100));
    }

    #[test]
    fn modify_within_same_bin_conservative_refinement() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        // Two reds in the same 4×4×4 bin.
        let dark_red = Rgb::new(250, 10, 10);
        assert_eq!(quant.bin_of(dark_red), red);
        let seq = EditSequence::builder(ImageId::new(1))
            .modify(Rgb::RED, dark_red)
            .build();
        let cons = RuleEngine::new(&quant, RuleProfile::Conservative);
        assert!(cons.bounds(&seq, red, &r).unwrap().is_exact());
        // The literal table widens max because RGBnew maps to HB.
        let lit = RuleEngine::new(&quant, RuleProfile::PaperTable1);
        let b = lit.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.max, 100);
        assert_eq!(b.min, 30);
    }

    #[test]
    fn combine_profiles_differ() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 5, 5))
            .blur()
            .build();
        let lit = RuleEngine::new(&quant, RuleProfile::PaperTable1);
        assert_eq!(
            lit.bounds(&seq, red, &r).unwrap(),
            BoundRange::exact(30, 100)
        );
        let cons = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = cons.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.min, 5); // 30 − 25
        assert_eq!(b.max, 55); // 30 + 25
    }

    #[test]
    fn mutate_rigid_body_widens_by_region() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 3, 3))
            .translate(4.0, 4.0)
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, red, &r).unwrap();
        // Destination is the translated 3×3 box (9 px), fully on canvas.
        assert_eq!(b.min, 21);
        assert_eq!(b.max, 39);
        assert_eq!(b.total, 100);
    }

    #[test]
    fn mutate_whole_image_scale_multiplies() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(2.0, 2.0)
            .build();
        for profile in [RuleProfile::PaperTable1, RuleProfile::Conservative] {
            let engine = RuleEngine::new(&quant, profile);
            let b = engine.bounds(&seq, red, &r).unwrap();
            assert_eq!(b.total, 400, "{profile:?}");
            // Integer 2× scale is exact under both profiles.
            assert_eq!(b.min, 120, "{profile:?}");
            assert_eq!(b.max, 120, "{profile:?}");
        }
    }

    #[test]
    fn mutate_fractional_scale_conservative_is_loose_but_bounded() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(1.5, 1.0)
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.total, 150);
        assert!(b.min <= 45 && 45 <= b.max, "{b:?}"); // true value = 45
    }

    #[test]
    fn merge_null_crop_formulae() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        // Crop to rows 0..5 (50 px): red pixels in crop ≥ 50 − 70 = 0 and
        // ≤ min(30, 50) = 30.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 10, 5))
            .crop_to_region()
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.total, 50);
        assert_eq!(b.min, 0);
        assert_eq!(b.max, 30);
        // Crop to rows 0..8 (80 px): ≥ 80 − 70 = 10.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 10, 8))
            .crop_to_region()
            .build();
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.min, 10);
        assert_eq!(b.max, 30);
    }

    #[test]
    fn merge_null_empty_region_is_error() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(50, 50, 60, 60))
            .crop_to_region()
            .build();
        assert!(matches!(
            engine.bounds(&seq, 0, &r),
            Err(RuleError::InvalidSequence(_))
        ));
    }

    #[test]
    fn merge_target_interior_paste() {
        let (mut r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        // Target: 20×20 solid red (400 red px).
        let target = RasterImage::filled(20, 20, Rgb::RED).unwrap();
        register(&mut r, 2, &target);
        // Paste a 4×4 DR at (0,0) — fully covering part of the target.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 0, 0)
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, red, &r).unwrap();
        assert_eq!(b.total, 400);
        // DR contributes [0, 16]; surviving target red = 400 − 16 = 384.
        assert_eq!(b.min, 384);
        assert_eq!(b.max, 400);
    }

    #[test]
    fn merge_target_growing_canvas_counts_gap_background() {
        let (mut r, quant) = setup();
        let black = quant.bin_of(Rgb::BLACK);
        let target = RasterImage::filled(5, 5, Rgb::WHITE).unwrap();
        register(&mut r, 2, &target);
        // Paste a 3×3 region at (4,4): canvas 7×7, gap = 49−25−9+1 = 16,
        // filled with black background.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 3, 3))
            .merge_into(ImageId::new(2), 4, 4)
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, black, &r).unwrap();
        assert_eq!(b.total, 49);
        assert!(b.min >= 16, "gap contributes at least 16 black: {b:?}");
        // Literal profile ignores the gap.
        let lit = RuleEngine::new(&quant, RuleProfile::PaperTable1);
        let bl = lit.bounds(&seq, black, &r).unwrap();
        assert_eq!(bl.total, 49);
        assert!(bl.min < 16);
    }

    #[test]
    fn merge_target_unknown_is_error() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .merge_into(ImageId::new(9), 0, 0)
            .build();
        assert!(matches!(
            engine.bounds(&seq, 0, &r),
            Err(RuleError::UnknownImage(_))
        ));
    }

    #[test]
    fn may_satisfy_prunes_impossible() {
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        // 30% red exactly; a small modify can push it to at most 34%.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 2, 2))
            .modify(Rgb::WHITE, Rgb::RED)
            .build();
        assert!(engine
            .may_satisfy(&seq, &ColorRangeQuery::at_least(red, 0.32), &r)
            .unwrap());
        assert!(!engine
            .may_satisfy(&seq, &ColorRangeQuery::at_least(red, 0.35), &r)
            .unwrap());
        assert!(engine
            .may_satisfy(&seq, &ColorRangeQuery::at_most(red, 0.30), &r)
            .unwrap());
    }

    #[test]
    fn bounds_never_widen_under_bound_widening_sequence_when_base_matches() {
        // The §4 lemma behind BWM: for a sequence of bound-widening ops, if
        // the base fraction is inside the query range, the final bounds still
        // overlap the range.
        let (r, quant) = setup();
        let red = quant.bin_of(Rgb::RED);
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(1, 1, 8, 8))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .translate(2.0, 2.0)
            .define(Rect::new(0, 0, 10, 6))
            .crop_to_region()
            .build();
        assert!(seq.all_bound_widening());
        // Base is 30% red; any query range containing 0.30 must keep the image.
        for (lo, hi) in [(0.0, 1.0), (0.3, 0.3), (0.25, 0.35), (0.0, 0.3), (0.3, 1.0)] {
            let q = ColorRangeQuery::new(red, lo, hi);
            assert!(
                engine.may_satisfy(&seq, &q, &r).unwrap(),
                "query [{lo},{hi}] must not prune a matching-base widening sequence"
            );
        }
    }

    #[test]
    fn mutate_with_empty_region_is_noop() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(50, 50, 60, 60)) // clips to empty
            .translate(3.0, 3.0)
            .build();
        let b = engine.bounds(&seq, quant.bin_of(Rgb::RED), &r).unwrap();
        assert_eq!(b, BoundRange::exact(30, 100));
    }

    #[test]
    fn singular_mutate_is_bounded_not_rejected() {
        // A det-0 affine matrix collapses the region; the executor forward-
        // maps it and the rules must still produce sound (if wide) bounds.
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .mutate(Matrix3::scale(0.0, 1.0))
            .build();
        let b = engine.bounds(&seq, quant.bin_of(Rgb::RED), &r);
        assert!(b.is_ok(), "{b:?}");
        let b = b.unwrap();
        assert!(b.min <= 30 && b.max >= 30);
    }

    #[test]
    fn projective_mutate_rejected() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let mut m = Matrix3::IDENTITY;
        m.m[2] = [0.01, 0.0, 1.0];
        let seq = EditSequence::builder(ImageId::new(1)).mutate(m).build();
        assert!(matches!(
            engine.bounds(&seq, 0, &r),
            Err(RuleError::InvalidSequence(_))
        ));
    }

    #[test]
    fn oversized_scale_rejected_like_executor() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(100_000.0, 100_000.0)
            .build();
        assert!(matches!(
            engine.bounds(&seq, 0, &r),
            Err(RuleError::InvalidSequence(_))
        ));
    }

    #[test]
    fn merge_target_with_empty_region_keeps_target_histogram() {
        let (mut r, quant) = setup();
        let target = RasterImage::filled(20, 20, Rgb::GREEN).unwrap();
        register(&mut r, 2, &target);
        let green = quant.bin_of(Rgb::GREEN);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(90, 90, 99, 99)) // clips to empty
            .merge_into(ImageId::new(2), 5, 5)
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, green, &r).unwrap();
        assert_eq!(b.total, 400);
        assert_eq!(
            (b.min, b.max),
            (400, 400),
            "empty paste leaves the target exact"
        );
    }

    #[test]
    fn chained_merges_track_geometry() {
        // Merge into target, then crop the merged result: totals follow.
        let (mut r, quant) = setup();
        let target = RasterImage::filled(20, 20, Rgb::GREEN).unwrap();
        register(&mut r, 2, &target);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 5, 5))
            .merge_into(ImageId::new(2), 0, 0)
            .define(Rect::new(0, 0, 10, 10))
            .crop_to_region()
            .build();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let b = engine.bounds(&seq, quant.bin_of(Rgb::GREEN), &r).unwrap();
        assert_eq!(b.total, 100);
        // At most 75 green can survive (25 pixels were pasted over), at
        // least 100 − 25 = 75 minus prior uncertainty → range covers truth.
        assert!(b.max <= 100);
        assert!(b.min <= 75 && 75 <= b.max);
    }

    #[test]
    fn bounds_trace_matches_bounds_per_op() {
        let (r, quant) = setup();
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(1, 1, 8, 8))
            .blur()
            .modify(Rgb::RED, Rgb::GREEN)
            .translate(2.0, 2.0)
            .define(Rect::new(0, 0, 10, 6))
            .crop_to_region()
            .build();
        for profile in [RuleProfile::PaperTable1, RuleProfile::Conservative] {
            let engine = RuleEngine::new(&quant, profile);
            let trace = engine.bounds_trace(&seq, &r).unwrap();
            assert_eq!(trace.len(), seq.ops.len() + 1);
            // Element 0 is the exact base state.
            assert!(trace[0].iter().all(super::BoundRange::is_exact));
            // The final element agrees with bounds() on every bin.
            for (bin, bound) in trace[seq.ops.len()].iter().enumerate() {
                let b = engine.bounds(&seq, bin, &r).unwrap();
                assert_eq!(*bound, b, "{profile:?} bin {bin}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_out_of_range_panics() {
        let (r, quant) = setup();
        let engine = RuleEngine::new(&quant, RuleProfile::Conservative);
        let _ = engine.bounds(&EditSequence::new(ImageId::new(1), vec![]), 999, &r);
    }
}

#![warn(missing_docs)]

//! # mmdb-rules
//!
//! The **Rule-Based Method (RBM)** of §3: determining the color-based
//! features of an image stored as a sequence of editing operations *without
//! instantiating it*.
//!
//! For a histogram bin `HB`, the engine walks the edit sequence and maintains
//! three quantities per Table 1 of the paper — the minimum number of pixels
//! that may be in `HB`, the maximum number, and the total number of pixels in
//! the image. The final `[BOUNDmin/imagesize, BOUNDmax/imagesize]` range is
//! compared against the query range `[PCTmin, PCTmax]`: "if this range does
//! not overlap the desired query range, image E cannot satisfy the given
//! query" — a conservative filter with **no false negatives**.
//!
//! ## Rule profiles
//!
//! The extracted paper text's Table 1 lists the `Combine` rule as
//! "no change / no change / no change", which is trivially bound-widening but
//! unsound for an actual blur (pixels can enter or leave a bin). Both
//! readings are implemented:
//!
//! * [`RuleProfile::PaperTable1`] — the literal table, for faithful
//!   reproduction of the paper's measurements;
//! * [`RuleProfile::Conservative`] — provably sound bounds with respect to
//!   the instantiation engine in `mmdb-editops` (checked by property tests):
//!   `Combine` widens by |DR|, sub-region `Mutate` widens by the clipped
//!   transformed bounding box, whole-image scaling uses floor/ceil scale
//!   factors, and `Merge` accounts for background gap fill and the exact
//!   paste overlap.
//!
//! Both profiles agree on the *bound-widening classification* of every
//! operation, so the BWM structure (crate `mmdb-bwm`) behaves identically
//! under either.

pub mod bounds;
pub mod engine;
pub mod query;
pub mod resolver;

pub use bounds::BoundRange;
pub use engine::{RuleEngine, RuleProfile};
pub use query::ColorRangeQuery;
pub use resolver::{ImageInfo, InfoResolver, MapInfoResolver};

use mmdb_editops::ImageId;
use std::fmt;

/// Errors from bound computation.
#[derive(Debug)]
pub enum RuleError {
    /// A referenced image (base or merge target) has no catalog entry.
    UnknownImage(ImageId),
    /// The sequence is structurally impossible to bound (e.g. a NULL-target
    /// merge whose defined region is empty — instantiation would fail too).
    InvalidSequence(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::UnknownImage(id) => write!(f, "no catalog info for {id}"),
            RuleError::InvalidSequence(msg) => write!(f, "unboundable sequence: {msg}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuleError>;

/// Drains the calling thread's pending rule-engine counts into the global
/// registry. The hot BOUNDS path stages its telemetry in a thread-local
/// accumulator (drained automatically every few hundred calls); call this
/// before snapshotting or rendering the registry when exact totals matter.
pub fn flush_metrics() {
    engine::flush_thread_metrics();
}

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the full rules schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_rules_bounds_computed_total",
        "mmdb_rules_bounds_vector_total",
        r#"mmdb_rules_applications_total{op="define"}"#,
        r#"mmdb_rules_applications_total{op="combine"}"#,
        r#"mmdb_rules_applications_total{op="modify"}"#,
        r#"mmdb_rules_applications_total{op="mutate"}"#,
        r#"mmdb_rules_applications_total{op="merge_null"}"#,
        r#"mmdb_rules_applications_total{op="merge_target"}"#,
        r#"mmdb_rules_widening_ops_total{profile="paper_table1"}"#,
        r#"mmdb_rules_widening_ops_total{profile="conservative"}"#,
    ] {
        let _ = g.counter(name);
    }
}

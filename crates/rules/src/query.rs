//! The color range query of the paper.

use serde::{Deserialize, Serialize};

/// A color-percentage range query: "Retrieve all images that are at least
/// 25% blue" becomes `ColorRangeQuery { bin: bin_of(blue), pct_min: 0.25,
/// pct_max: 1.0 }` (§3.1). The paper's Figure 2 algorithm takes exactly the
/// parameters `HB`, `PCTmin`, `PCTmax`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColorRangeQuery {
    /// The histogram bin `HB` the query constrains.
    pub bin: usize,
    /// `PCTmin` — lower bound on the pixel fraction, in `[0, 1]`.
    pub pct_min: f64,
    /// `PCTmax` — upper bound on the pixel fraction, in `[0, 1]`.
    pub pct_max: f64,
}

impl ColorRangeQuery {
    /// Creates a range query.
    ///
    /// # Panics
    /// Panics when the range is inverted or outside `[0, 1]`.
    pub fn new(bin: usize, pct_min: f64, pct_max: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pct_min) && (0.0..=1.0).contains(&pct_max),
            "percentages must lie in [0, 1]"
        );
        assert!(pct_min <= pct_max, "inverted range {pct_min}..{pct_max}");
        ColorRangeQuery {
            bin,
            pct_min,
            pct_max,
        }
    }

    /// "At least `pct` of bin `bin`" — the paper's example query shape.
    pub fn at_least(bin: usize, pct: f64) -> Self {
        ColorRangeQuery::new(bin, pct, 1.0)
    }

    /// "At most `pct` of bin `bin`".
    pub fn at_most(bin: usize, pct: f64) -> Self {
        ColorRangeQuery::new(bin, 0.0, pct)
    }

    /// True when a *known* fraction satisfies the query (used for binary
    /// images whose histograms are exact).
    #[inline]
    pub fn matches_fraction(&self, fraction: f64) -> bool {
        self.pct_min <= fraction && fraction <= self.pct_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = ColorRangeQuery::at_least(5, 0.25);
        assert_eq!(q.bin, 5);
        assert_eq!(q.pct_min, 0.25);
        assert_eq!(q.pct_max, 1.0);
        let q = ColorRangeQuery::at_most(2, 0.5);
        assert_eq!((q.pct_min, q.pct_max), (0.0, 0.5));
    }

    #[test]
    fn matches_fraction_is_inclusive() {
        let q = ColorRangeQuery::new(0, 0.2, 0.6);
        assert!(q.matches_fraction(0.2));
        assert!(q.matches_fraction(0.6));
        assert!(q.matches_fraction(0.35));
        assert!(!q.matches_fraction(0.19));
        assert!(!q.matches_fraction(0.61));
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_panics() {
        ColorRangeQuery::new(0, 0.7, 0.2);
    }

    #[test]
    #[should_panic(expected = "percentages must lie")]
    fn out_of_unit_panics() {
        ColorRangeQuery::new(0, 0.0, 1.5);
    }
}

//! The `[BOUNDmin, BOUNDmax]` / `imagesize` triple the rules manipulate.

use serde::{Deserialize, Serialize};

/// Bounds on the number of pixels of an edited image that map to one
/// histogram bin, plus the image's total pixel count.
///
/// Invariant (enforced by [`BoundRange::clamped`]): `min <= max <= total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundRange {
    /// `BOUNDmin` — fewest pixels possibly in the bin.
    pub min: u64,
    /// `BOUNDmax` — most pixels possibly in the bin.
    pub max: u64,
    /// `imagesize` — total pixels in the (hypothetically instantiated) image.
    pub total: u64,
}

impl BoundRange {
    /// An exact (zero-width) range, as derived from a known histogram value.
    /// A `count` above `total` (a corrupt histogram) is clamped so the
    /// documented `min <= max <= total` invariant holds in release builds
    /// too, not only under the debug assertion.
    pub fn exact(count: u64, total: u64) -> Self {
        debug_assert!(count <= total, "count {count} exceeds total {total}");
        let count = count.min(total);
        BoundRange {
            min: count,
            max: count,
            total,
        }
    }

    /// Restores the invariant after a rule adjustment: `max` is capped at
    /// `total` and `min` at `max`.
    pub fn clamped(self) -> Self {
        let max = self.max.min(self.total);
        let min = self.min.min(max);
        BoundRange {
            min,
            max,
            total: self.total,
        }
    }

    /// The fraction interval `[min/total, max/total]`; `[0, 0]` for an empty
    /// image.
    pub fn fraction_range(&self) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 0.0);
        }
        let t = self.total as f64;
        (self.min as f64 / t, self.max as f64 / t)
    }

    /// True when the fraction interval overlaps `[pct_min, pct_max]` — i.e.
    /// the edited image *may* satisfy the query and cannot be pruned.
    pub fn overlaps_fraction(&self, pct_min: f64, pct_max: f64) -> bool {
        let (lo, hi) = self.fraction_range();
        lo <= pct_max && pct_min <= hi
    }

    /// True when the range is exact (`min == max`), meaning the rules
    /// determined the bin population precisely.
    pub fn is_exact(&self) -> bool {
        self.min == self.max
    }

    /// Width of the fraction interval — a measure of how much precision the
    /// rules lost (0 = exact, 1 = vacuous). Used by the filter-precision
    /// ablation.
    pub fn fraction_width(&self) -> f64 {
        let (lo, hi) = self.fraction_range();
        hi - lo
    }

    /// True when `count` pixels out of `total` is consistent with this
    /// range — the soundness predicate the property tests check against
    /// instantiated ground truth.
    pub fn admits(&self, count: u64) -> bool {
        self.min <= count && count <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_predicates() {
        let r = BoundRange::exact(25, 100);
        assert!(r.is_exact());
        assert_eq!(r.fraction_range(), (0.25, 0.25));
        assert!(r.admits(25));
        assert!(!r.admits(26));
        assert_eq!(r.fraction_width(), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds total"))]
    fn exact_clamps_corrupt_counts_in_release() {
        // Debug builds assert; release builds clamp so the struct invariant
        // `min <= max <= total` survives a corrupt histogram count.
        let r = BoundRange::exact(120, 100);
        assert_eq!(r, BoundRange::exact(100, 100));
    }

    #[test]
    fn clamp_restores_invariant() {
        let r = BoundRange {
            min: 90,
            max: 200,
            total: 100,
        }
        .clamped();
        assert_eq!(
            r,
            BoundRange {
                min: 90,
                max: 100,
                total: 100
            }
        );
        let r = BoundRange {
            min: 150,
            max: 120,
            total: 100,
        }
        .clamped();
        assert!(r.min <= r.max && r.max <= r.total);
    }

    #[test]
    fn overlap_logic() {
        let r = BoundRange {
            min: 20,
            max: 40,
            total: 100,
        };
        assert!(r.overlaps_fraction(0.3, 0.5)); // interval [0.2,0.4] overlaps
        assert!(r.overlaps_fraction(0.0, 0.2)); // touches at 0.2
        assert!(r.overlaps_fraction(0.4, 1.0)); // touches at 0.4
        assert!(!r.overlaps_fraction(0.41, 1.0));
        assert!(!r.overlaps_fraction(0.0, 0.19));
    }

    #[test]
    fn empty_image_fractions() {
        let r = BoundRange {
            min: 0,
            max: 0,
            total: 0,
        };
        assert_eq!(r.fraction_range(), (0.0, 0.0));
        assert!(r.overlaps_fraction(0.0, 0.5));
        assert!(!r.overlaps_fraction(0.1, 0.5));
    }

    #[test]
    fn width_measures_looseness() {
        let r = BoundRange {
            min: 10,
            max: 60,
            total: 100,
        };
        assert!((r.fraction_width() - 0.5).abs() < 1e-12);
    }
}

//! Property tests for the storage substrates: the LRU cache against a
//! reference model, blob-store allocation invariants, and catalog
//! serialization round-trips.

use mmdb_editops::{EditSequence, ImageId, Matrix3};
use mmdb_histogram::{ColorHistogram, Quantizer, RgbQuantizer};
use mmdb_imaging::{RasterImage, Rect, Rgb};
use mmdb_storage::{BlobStore, Catalog, CatalogEntry, LruCache};
use proptest::prelude::*;
use std::sync::Arc;

// ── LRU vs reference model ────────────────────────────────────────────────

#[derive(Clone, Debug)]
enum CacheOp {
    Get(u8),
    Insert(u8, u16, u8),
    Invalidate(u8),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        any::<u8>().prop_map(CacheOp::Get),
        (any::<u8>(), any::<u16>(), 0u8..40).prop_map(|(k, v, b)| CacheOp::Insert(k, v, b)),
        any::<u8>().prop_map(CacheOp::Invalidate),
    ]
}

/// A deliberately slow but obviously correct LRU: a Vec ordered most-recent
/// first.
#[derive(Default)]
struct ModelLru {
    entries: Vec<(u8, u16, usize)>, // key, value, bytes — MRU first
    max_entries: usize,
    max_bytes: usize,
}

impl ModelLru {
    fn get(&mut self, k: u8) -> Option<u16> {
        let pos = self.entries.iter().position(|&(key, _, _)| key == k)?;
        let e = self.entries.remove(pos);
        let v = e.1;
        self.entries.insert(0, e);
        Some(v)
    }

    fn insert(&mut self, k: u8, v: u16, b: usize) {
        if let Some(pos) = self.entries.iter().position(|&(key, _, _)| key == k) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (k, v, b));
        loop {
            let bytes: usize = self.entries.iter().map(|&(_, _, b)| b).sum();
            if self.entries.len() > self.max_entries
                || (bytes > self.max_bytes && self.entries.len() > 1)
            {
                self.entries.pop();
            } else {
                break;
            }
        }
    }

    fn invalidate(&mut self, k: u8) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(key, _, _)| key != k);
        self.entries.len() != before
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(arb_cache_op(), 1..200)) {
        let mut cache: LruCache<u8, u16> = LruCache::new(8, 100);
        let mut model = ModelLru {
            max_entries: 8,
            max_bytes: 100,
            ..Default::default()
        };
        for op in ops {
            match op {
                CacheOp::Get(k) => {
                    prop_assert_eq!(cache.get(&k).copied(), model.get(k));
                }
                CacheOp::Insert(k, v, b) => {
                    cache.insert(k, v, b as usize);
                    model.insert(k, v, b as usize);
                }
                CacheOp::Invalidate(k) => {
                    prop_assert_eq!(cache.invalidate(&k), model.invalidate(k));
                }
            }
            prop_assert_eq!(cache.len(), model.entries.len());
            let model_bytes: usize = model.entries.iter().map(|&(_, _, b)| b).sum();
            prop_assert_eq!(cache.bytes(), model_bytes);
        }
    }
}

// ── Blob store ─────────────────────────────────────────────────────────────

#[derive(Clone, Debug)]
enum BlobOp {
    Put(Vec<u8>),
    DeleteExisting(usize),
}

fn arb_blob_op() -> impl Strategy<Value = BlobOp> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..64).prop_map(BlobOp::Put),
        1 => any::<usize>().prop_map(BlobOp::DeleteExisting),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Live blobs always read back exactly; the free list stays sorted,
    /// disjoint, and never overlaps a live blob.
    #[test]
    fn blobstore_invariants(ops in proptest::collection::vec(arb_blob_op(), 1..100)) {
        let mut store = BlobStore::in_memory();
        let mut live: Vec<(mmdb_storage::BlobRef, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                BlobOp::Put(data) => {
                    let r = store.put(&data).unwrap();
                    live.push((r, data));
                }
                BlobOp::DeleteExisting(raw) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (r, _) = live.swap_remove(raw % live.len());
                    store.delete(r);
                }
            }
            // Every live blob reads back intact.
            for (r, data) in &live {
                prop_assert_eq!(&store.get(*r).unwrap(), data);
            }
            // Free list: sorted, disjoint, inside the file.
            let fl = store.free_list();
            for w in fl.windows(2) {
                prop_assert!(w[0].0 + w[0].1 < w[1].0 + 1, "free list overlap/adjacency");
            }
            for &(off, len) in fl {
                prop_assert!(off + len <= store.file_size());
                for (r, _) in &live {
                    if r.len == 0 { continue; }
                    let no_overlap = r.offset + r.len <= off || off + len <= r.offset;
                    prop_assert!(no_overlap, "hole ({off},{len}) overlaps live blob {r:?}");
                }
            }
        }
    }
}

// ── Catalog serialization ─────────────────────────────────────────────────

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        (
            2u32..12,
            2u32..12,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 3),
        ),
        0..12,
    )
    .prop_map(|specs| {
        let q = RgbQuantizer::default_64();
        let mut catalog = Catalog::new(q.describe());
        let mut binary_ids = Vec::new();
        for (w, h, edited, rgb) in specs {
            let id = catalog.allocate_id();
            if edited && !binary_ids.is_empty() {
                let base: ImageId = binary_ids[rgb[0] as usize % binary_ids.len()];
                catalog.insert(
                    id,
                    CatalogEntry::Edited {
                        sequence: Arc::new(
                            EditSequence::builder(base)
                                .define(Rect::new(0, 0, w as i64, h as i64))
                                .modify(Rgb::new(rgb[0], rgb[1], rgb[2]), Rgb::WHITE)
                                .mutate(Matrix3::translation(1.0, 2.0))
                                .build(),
                        ),
                    },
                );
            } else {
                let img = RasterImage::filled(w, h, Rgb::new(rgb[0], rgb[1], rgb[2])).unwrap();
                catalog.insert(
                    id,
                    CatalogEntry::Binary {
                        blob: mmdb_storage::BlobRef {
                            offset: (w * h) as u64,
                            len: (w + h) as u64,
                        },
                        width: w,
                        height: h,
                        histogram: Arc::new(ColorHistogram::extract(&img, &q)),
                    },
                );
                binary_ids.push(id);
            }
        }
        catalog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn catalog_roundtrip(catalog in arb_catalog(), free in proptest::collection::vec((0u64..1000, 1u64..100), 0..5)) {
        // Make the free list sorted & disjoint.
        let mut free = free;
        free.sort_unstable();
        let mut cursor = 0u64;
        for hole in &mut free {
            hole.0 = hole.0.max(cursor);
            cursor = hole.0 + hole.1 + 1;
        }
        let bytes = catalog.encode(&free);
        let (back, free2) = Catalog::decode(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(&free2, &free);
        prop_assert_eq!(back.len(), catalog.len());
        prop_assert_eq!(back.quantizer_desc(), catalog.quantizer_desc());
        for (id, entry) in catalog.iter() {
            let other = back.get(id).expect("entry survives");
            match (entry, other) {
                (
                    CatalogEntry::Binary { blob: b1, width: w1, height: h1, histogram: g1 },
                    CatalogEntry::Binary { blob: b2, width: w2, height: h2, histogram: g2 },
                ) => {
                    prop_assert_eq!(b1, b2);
                    prop_assert_eq!((w1, h1), (w2, h2));
                    prop_assert_eq!(g1.counts(), g2.counts());
                }
                (
                    CatalogEntry::Edited { sequence: s1 },
                    CatalogEntry::Edited { sequence: s2 },
                ) => prop_assert_eq!(s1.as_ref(), s2.as_ref()),
                _ => prop_assert!(false, "entry kind changed for {}", id),
            }
            prop_assert_eq!(back.children_of(id), catalog.children_of(id));
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn catalog_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Catalog::decode(&bytes);
    }
}

//! The storage engine facade.

use crate::blobstore::BlobStore;
use crate::catalog::{Catalog, CatalogEntry, StoredKind};
use crate::durability::{
    apply_record, blob_file_name, gc_blob_generations, map_durable, DurabilityOptions,
    RecoveryInfo, WalRecord,
};
use crate::epoch::MutationEpoch;
use crate::error::StorageError;
use crate::lru::LruCache;
use crate::Result;
use mmdb_analysis::{Analyzer, CatalogGraph, NodeKind, Severity};
use mmdb_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use mmdb_conc::sync::{Mutex, RwLock};
use mmdb_durable::meta::{read_meta, write_meta, Meta};
use mmdb_durable::{FsyncPolicy, SnapshotStore, Wal, WalOptions};
use mmdb_editops::{
    EditError, EditSequence, ExecOptions, ImageId, ImageResolver, InstantiationEngine,
};
use mmdb_histogram::{quantizer::from_description, ColorHistogram, Quantizer};
use mmdb_imaging::ppm::{self, PnmFormat};
use mmdb_imaging::{RasterImage, Rgb};
use mmdb_rules::{ImageInfo, InfoResolver};
use mmdb_telemetry::{counter, histogram, EventKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Default raster-cache capacity (entries).
const CACHE_ENTRIES: usize = 256;
/// Default raster-cache byte budget (256 MiB of decoded pixels).
const CACHE_BYTES: usize = 256 << 20;

/// Aggregate storage statistics — the numbers behind the paper's space
/// argument for storing edited images as operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Number of conventionally stored images.
    pub binary_count: usize,
    /// Number of images stored as edit sequences.
    pub edited_count: usize,
    /// Bytes of blob storage consumed by binary images.
    pub binary_bytes: u64,
    /// Bytes consumed by encoded edit sequences (catalog-resident).
    pub edited_bytes: u64,
    /// Raster cache hits since open.
    pub cache_hits: u64,
    /// Raster cache misses since open.
    pub cache_misses: u64,
}

impl StorageStats {
    /// How many times smaller the edit-sequence representation is than the
    /// binary representation, per image on average. `None` when either side
    /// is empty.
    pub fn space_saving_factor(&self) -> Option<f64> {
        if self.binary_count == 0 || self.edited_count == 0 || self.edited_bytes == 0 {
            return None;
        }
        let avg_binary = self.binary_bytes as f64 / self.binary_count as f64;
        let avg_edited = self.edited_bytes as f64 / self.edited_count as f64;
        Some(avg_binary / avg_edited)
    }
}

struct Inner {
    catalog: Catalog,
    blobs: BlobStore,
}

/// Durable-layer state of a file-backed engine: the WAL, the snapshot
/// store, and the bookkeeping the background maintenance path reads.
///
/// Lock order (deadlock freedom): `inner` before `wal` — the mutation path
/// holds the exclusive catalog lock while appending, and the snapshot path
/// reads the log position while holding the shared catalog lock. Nothing
/// acquires `inner` while holding `wal`.
struct DurableState {
    dir: PathBuf,
    wal: Mutex<Wal>,
    snaps: SnapshotStore,
    /// Generation of the blob file currently written to; bumped by
    /// `compact`, committed by the snapshot that references it.
    blob_gen: AtomicU64,
    /// Records appended since the last snapshot (background cadence).
    appended_since_snapshot: AtomicU64,
    /// Last group-commit fsync under `FsyncPolicy::Interval`.
    last_interval_sync: Mutex<Instant>,
    opts: DurabilityOptions,
    recovery: RecoveryInfo,
}

/// The MMDBMS storage engine.
///
/// Thread-safe: reads run under a shared lock, mutations under an exclusive
/// lock, and instantiation never holds the catalog lock while executing
/// operations (so concurrent queries can resolve bases/targets).
pub struct StorageEngine {
    inner: RwLock<Inner>,
    cache: Mutex<LruCache<ImageId, Arc<RasterImage>>>,
    quantizer: Box<dyn Quantizer>,
    background: Rgb,
    durable: Option<DurableState>,
    validate_ingest: AtomicBool,
    /// Mutation epoch: bumped (under the exclusive catalog lock) by every
    /// insert and delete. Derived structures such as the bound-interval
    /// index stamp themselves with the epoch they were built from and must
    /// refuse to serve when it trails [`StorageEngine::current_epoch`] —
    /// that comparison is what makes "a stale entry is never served" a
    /// checkable invariant rather than a convention. See
    /// [`MutationEpoch`] for the ordering rules, and the `mmdb-conc` model
    /// tests for the machine-checked version of this argument.
    epoch: MutationEpoch,
}

impl StorageEngine {
    /// Creates a new on-disk database in `dir` (created if missing) with
    /// default durability options.
    ///
    /// # Errors
    /// Fails when a database already exists in `dir`.
    pub fn create(dir: &Path, quantizer: Box<dyn Quantizer>) -> Result<Self> {
        Self::create_with(dir, quantizer, DurabilityOptions::default())
    }

    /// Creates a new on-disk database with explicit durability options.
    ///
    /// The data dir layout: a `meta` version header, `wal/` (segmented
    /// write-ahead log), `snapshots/` (atomic catalog snapshots), and the
    /// blob generation files (`blobs.mmdb`, `blobs-<n>.mmdb`). An initial
    /// empty snapshot is written immediately so the directory is complete
    /// and recoverable from the moment `create` returns.
    ///
    /// # Errors
    /// Fails when a database (durable or legacy) already exists in `dir`.
    pub fn create_with(
        dir: &Path,
        quantizer: Box<dyn Quantizer>,
        opts: DurabilityOptions,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        if read_meta(dir).map_err(map_durable)?.is_some() || dir.join("catalog.mmdb").exists() {
            return Err(StorageError::Corrupt(format!(
                "database already exists at {}",
                dir.display()
            )));
        }
        write_meta(dir, Meta::current()).map_err(map_durable)?;
        let blobs = BlobStore::open(&dir.join(blob_file_name(0)))?;
        let snaps = SnapshotStore::open(&dir.join("snapshots")).map_err(map_durable)?;
        let wal_opts = WalOptions {
            segment_bytes: opts.segment_bytes,
            fsync: opts.fsync,
        };
        let (wal, _) = Wal::open(&dir.join("wal"), wal_opts, 0).map_err(map_durable)?;
        let engine = StorageEngine {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(quantizer.describe()),
                blobs,
            }),
            cache: Mutex::new(LruCache::new(CACHE_ENTRIES, CACHE_BYTES)),
            quantizer,
            background: Rgb::BLACK,
            durable: Some(DurableState {
                dir: dir.to_path_buf(),
                wal: Mutex::new(wal),
                snaps,
                blob_gen: AtomicU64::new(0),
                appended_since_snapshot: AtomicU64::new(0),
                last_interval_sync: Mutex::new(Instant::now()),
                opts,
                recovery: RecoveryInfo::default(),
            }),
            validate_ingest: AtomicBool::new(true),
            epoch: MutationEpoch::new(),
        };
        engine.snapshot_now()?;
        Ok(engine)
    }

    /// Opens an existing on-disk database with default durability options,
    /// reconstructing the quantizer from the recovered catalog.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// Opens an existing on-disk database with explicit durability options.
    ///
    /// Recovery contract: load the newest snapshot that validates (falling
    /// back to the previous one if the newest is damaged), replay every WAL
    /// record above its cover point, and tolerate a torn final record at
    /// the very end of the log. A directory in the pre-durability layout
    /// (bare `catalog.mmdb`) is migrated in place on first open.
    pub fn open_with(dir: &Path, opts: DurabilityOptions) -> Result<Self> {
        let started = Instant::now();
        match read_meta(dir).map_err(map_durable)? {
            Some(meta) => {
                meta.check_readable().map_err(map_durable)?;
                // Debris from a migration that crashed after committing the
                // meta header.
                let _ = std::fs::remove_file(dir.join("catalog.mmdb"));
            }
            None if dir.join("catalog.mmdb").exists() => migrate_legacy_dir(dir)?,
            None => {
                return Err(StorageError::Corrupt(format!(
                    "no database at {}",
                    dir.display()
                )))
            }
        }
        let snap_dir = dir.join("snapshots");
        mmdb_durable::snapshot::remove_tmp_files(&snap_dir);
        let snaps = SnapshotStore::open(&snap_dir).map_err(map_durable)?;
        let snap = snaps.load_latest().map_err(map_durable)?.ok_or_else(|| {
            StorageError::Corrupt(format!("no snapshot in {}", snap_dir.display()))
        })?;
        let (mut catalog, free_list) = Catalog::decode(&snap.payload)?;
        let quantizer = from_description(catalog.quantizer_desc()).ok_or_else(|| {
            StorageError::Corrupt(format!(
                "unknown quantizer {:?} in catalog",
                catalog.quantizer_desc()
            ))
        })?;
        let blob_path = dir.join(blob_file_name(snap.blob_gen));
        if !catalog.is_empty() && !blob_path.exists() {
            return Err(StorageError::Corrupt(format!(
                "blob generation file {} is missing",
                blob_path.display()
            )));
        }
        let mut blobs = BlobStore::open(&blob_path)?;
        blobs.restore_free_list(free_list);
        gc_blob_generations(dir, &snaps, snap.blob_gen)?;

        let wal_dir = dir.join("wal");
        let wal_opts = WalOptions {
            segment_bytes: opts.segment_bytes,
            fsync: opts.fsync,
        };
        let (mut wal, wal_stats) =
            Wal::open(&wal_dir, wal_opts, snap.covered_seqno).map_err(map_durable)?;
        if wal.last_seqno() < snap.covered_seqno {
            // The log's surviving tail predates the snapshot (lost under a
            // lax fsync policy): nothing in it is needed, and reusing its
            // sequence numbers would alias covered records. Restart the log
            // at the snapshot's cover point.
            drop(wal);
            std::fs::remove_dir_all(&wal_dir)?;
            let reopened =
                Wal::open(&wal_dir, wal_opts, snap.covered_seqno).map_err(map_durable)?;
            wal = reopened.0;
        }
        let replayed = wal
            .replay(snap.covered_seqno, |seqno, payload| {
                apply_record(&mut catalog, &mut blobs, quantizer.as_ref(), seqno, payload)
                    .map_err(|e| mmdb_durable::DurableError::Corrupt(e.to_string()))
            })
            .map_err(map_durable)?;
        let last_seqno = wal.last_seqno();
        let recovery = RecoveryInfo {
            snapshot_seqno: snap.covered_seqno,
            replayed_records: replayed,
            torn_bytes: wal_stats.torn_bytes,
            duration: started.elapsed(),
        };
        histogram!("mmdb_recovery_seconds").observe(recovery.duration);
        mmdb_telemetry::recorder().record(
            EventKind::Recovery,
            format!(
                "snapshot_seqno={} replayed={replayed} torn_bytes={} last_seqno={last_seqno}",
                snap.covered_seqno, wal_stats.torn_bytes
            ),
            &[
                ("replayed_records", replayed),
                ("torn_bytes", wal_stats.torn_bytes),
            ],
        );

        let engine = StorageEngine {
            inner: RwLock::new(Inner { catalog, blobs }),
            cache: Mutex::new(LruCache::new(CACHE_ENTRIES, CACHE_BYTES)),
            quantizer,
            background: Rgb::BLACK,
            durable: Some(DurableState {
                dir: dir.to_path_buf(),
                wal: Mutex::new(wal),
                snaps,
                blob_gen: AtomicU64::new(snap.blob_gen),
                appended_since_snapshot: AtomicU64::new(0),
                last_interval_sync: Mutex::new(Instant::now()),
                opts,
                recovery,
            }),
            validate_ingest: AtomicBool::new(true),
            epoch: MutationEpoch::new(),
        };
        // Every acknowledged mutation is one WAL record, so the recovered
        // epoch is the log's last sequence number; the two stay in lockstep
        // from here on (see `MutationEpoch::restore`).
        engine.epoch.restore(last_seqno);
        Ok(engine)
    }

    /// Creates an ephemeral in-memory database (tests, benchmarks).
    pub fn in_memory(quantizer: Box<dyn Quantizer>) -> Self {
        StorageEngine {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(quantizer.describe()),
                blobs: BlobStore::in_memory(),
            }),
            cache: Mutex::new(LruCache::new(CACHE_ENTRIES, CACHE_BYTES)),
            quantizer,
            background: Rgb::BLACK,
            durable: None,
            validate_ingest: AtomicBool::new(true),
            epoch: MutationEpoch::new(),
        }
    }

    /// What recovery found and did when this engine opened its data dir.
    /// `None` for in-memory and freshly created databases.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.durable
            .as_ref()
            .map(|d| d.recovery)
            .filter(|r| r.duration > std::time::Duration::ZERO)
    }

    /// The data directory of a file-backed engine.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The durability options this engine runs with.
    pub fn durability_options(&self) -> Option<DurabilityOptions> {
        self.durable.as_ref().map(|d| d.opts)
    }

    /// Appends one mutation record to the WAL. Called under the exclusive
    /// catalog lock *before* the in-memory apply: the record is durable
    /// (per the fsync policy) by the time the mutation is acknowledged, and
    /// a crash between append and apply loses only an unacknowledged
    /// mutation — replay reconstructs the record's effect from the log.
    fn log_mutation(&self, record: &WalRecord<'_>) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let mut wal = d.wal.lock();
        let seqno = wal.append(&record.encode()).map_err(map_durable)?;
        debug_assert_eq!(
            seqno,
            self.epoch.current() + 1,
            "WAL seqno and mutation epoch must advance in lockstep"
        );
        // Relaxed: a background-cadence counter, read approximately.
        d.appended_since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The current mutation epoch. Readers building derived structures must
    /// capture the epoch *before* reading catalog state: a racing mutation
    /// then leaves the derived stamp behind the true epoch (forcing a
    /// re-sync) rather than ahead of it (serving stale data).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.current()
    }

    fn bump_epoch(&self) {
        self.epoch.bump();
    }

    /// The quantizer every histogram in this database uses.
    pub fn quantizer(&self) -> &dyn Quantizer {
        self.quantizer.as_ref()
    }

    /// The background color used when instantiating edit sequences.
    pub fn background(&self) -> Rgb {
        self.background
    }

    /// Enables or disables analyzer-backed ingest validation (on by
    /// default). With validation off, `insert_edited` falls back to the
    /// legacy single-bin BOUNDS probe, which still refuses sequences the
    /// rule engine cannot bound but skips the full static-analysis passes.
    pub fn set_ingest_validation(&self, enabled: bool) {
        // Relaxed is deliberate: a standalone mode flag guarding no other
        // data — no reader infers anything about memory from its value.
        self.validate_ingest.store(enabled, Ordering::Relaxed);
    }

    /// Whether analyzer-backed ingest validation is enabled.
    pub fn ingest_validation(&self) -> bool {
        // Relaxed is deliberate: see `set_ingest_validation`.
        self.validate_ingest.load(Ordering::Relaxed)
    }

    /// Inserts a conventionally stored image; its exact histogram is
    /// extracted now, at insert time (§1: feature extraction happens "as
    /// [each object] is inserted into the underlying database").
    pub fn insert_binary(&self, image: &RasterImage) -> Result<ImageId> {
        let encoded = ppm::encode(image, PnmFormat::RawRgb);
        let histogram = Arc::new(ColorHistogram::extract(image, self.quantizer.as_ref()));
        counter!("mmdb_storage_blob_writes_total").inc();
        counter!("mmdb_storage_blob_write_bytes_total").add(encoded.len() as u64);
        let mut inner = self.inner.write();
        let blob = inner.blobs.put(&encoded)?;
        let id = inner.catalog.allocate_id();
        self.log_mutation(&WalRecord::InsertBinary {
            id,
            width: image.width(),
            height: image.height(),
            ppm: &encoded,
        })?;
        inner.catalog.insert(
            id,
            CatalogEntry::Binary {
                blob,
                width: image.width(),
                height: image.height(),
                histogram,
            },
        );
        self.bump_epoch();
        Ok(id)
    }

    /// Inserts an image stored as a sequence of editing operations. The base
    /// and every merge target must already be stored as *binary* images —
    /// the paper's model derives edited images from originals, and the rule
    /// engine needs exact histograms for every referenced image. The
    /// sequence is also **validated** by the static analyzer
    /// (well-formedness, dead ops, soundness audit): any Error-level
    /// diagnostic refuses the insert, which guarantees every stored edited
    /// image is processable by RBM, BWM and the executor alike. Warn/Note
    /// findings are recorded in telemetry but do not block. See
    /// [`StorageEngine::set_ingest_validation`] for the legacy fallback.
    pub fn insert_edited(&self, sequence: EditSequence) -> Result<ImageId> {
        let started = Instant::now();
        let reject = |detail: String, errors: u64| {
            counter!(r#"mmdb_storage_ingest_total{result="rejected"}"#).inc();
            if mmdb_telemetry::instrumentation_enabled() {
                mmdb_telemetry::recorder().record(
                    mmdb_telemetry::EventKind::IngestRejected,
                    detail,
                    &[("errors", errors)],
                );
            }
        };
        let check_refs = |inner: &Inner| -> Result<()> {
            for (role, rid) in std::iter::once(("base", sequence.base)).chain(
                sequence
                    .merge_targets()
                    .into_iter()
                    .map(|t| ("merge target", t)),
            ) {
                match inner.catalog.get(rid) {
                    Some(e) if e.kind() == StoredKind::Binary => {}
                    Some(_) => {
                        return Err(StorageError::InvalidReference {
                            id: rid,
                            reason: format!("{role} must be a binary image"),
                        })
                    }
                    None => {
                        return Err(StorageError::InvalidReference {
                            id: rid,
                            reason: format!("{role} does not exist"),
                        })
                    }
                }
            }
            Ok(())
        };
        // Phase 1 (no exclusive lock held): reference check + static
        // analysis.
        check_refs(&self.inner.read())?;
        // Relaxed: mode flag only (see `set_ingest_validation`).
        if self.validate_ingest.load(Ordering::Relaxed) {
            let analyzer = Analyzer::with_resolver(self.quantizer.as_ref(), self.background, self);
            let analysis = analyzer.analyze_sequence(&sequence);
            mmdb_analysis::record_diagnostics(&analysis.diagnostics);
            let errors: Vec<String> = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Error)
                .map(std::string::ToString::to_string)
                .collect();
            if !errors.is_empty() {
                let codes: Vec<&str> = analysis
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity() == Severity::Error)
                    .map(|d| d.code.code())
                    .collect();
                reject(format!("codes={}", codes.join(",")), errors.len() as u64);
                return Err(StorageError::InvalidSequence(errors.join("; ")));
            }
        } else {
            // Legacy probe: a symbolic BOUNDS walk. The bound-error
            // conditions are bin-independent, so one bin suffices.
            let engine = mmdb_rules::RuleEngine::with_background(
                self.quantizer.as_ref(),
                mmdb_rules::RuleProfile::Conservative,
                self.background,
            );
            if let Err(e) = engine.bounds(&sequence, 0, self) {
                reject(format!("probe: {e}"), 1);
                return Err(StorageError::InvalidSequence(e.to_string()));
            }
        }
        // Phase 2: re-verify references under the exclusive lock (a
        // concurrent delete may have raced phase 1), then insert.
        let mut inner = self.inner.write();
        check_refs(&inner)?;
        let id = inner.catalog.allocate_id();
        self.log_mutation(&WalRecord::InsertEdited {
            id,
            sequence: &sequence,
        })?;
        let (base, ops) = (sequence.base, sequence.len());
        inner.catalog.insert(
            id,
            CatalogEntry::Edited {
                sequence: Arc::new(sequence),
            },
        );
        self.bump_epoch();
        counter!("mmdb_storage_edited_inserts_total").inc();
        counter!(r#"mmdb_storage_ingest_total{result="accepted"}"#).inc();
        histogram!("mmdb_storage_ingest_latency_seconds").observe(started.elapsed());
        if mmdb_telemetry::instrumentation_enabled() {
            mmdb_telemetry::recorder().record(
                mmdb_telemetry::EventKind::IngestAccepted,
                format!("{id} (base {base})"),
                &[("ops", ops as u64)],
            );
        }
        Ok(id)
    }

    /// The storage kind of `id`.
    pub fn kind(&self, id: ImageId) -> Result<StoredKind> {
        self.inner
            .read()
            .catalog
            .get(id)
            .map(super::catalog::CatalogEntry::kind)
            .ok_or(StorageError::NotFound(id))
    }

    /// True when `id` exists.
    pub fn contains(&self, id: ImageId) -> bool {
        self.inner.read().catalog.get(id).is_some()
    }

    /// All ids, ascending.
    pub fn ids(&self) -> Vec<ImageId> {
        self.inner.read().catalog.ids().collect()
    }

    /// Ids of all binary images, ascending.
    pub fn binary_ids(&self) -> Vec<ImageId> {
        self.inner
            .read()
            .catalog
            .iter()
            .filter(|(_, e)| e.kind() == StoredKind::Binary)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all edited images, ascending.
    pub fn edited_ids(&self) -> Vec<ImageId> {
        self.inner
            .read()
            .catalog
            .iter()
            .filter(|(_, e)| e.kind() == StoredKind::Edited)
            .map(|(id, _)| id)
            .collect()
    }

    /// Edited images derived from `base`.
    pub fn children_of(&self, base: ImageId) -> Vec<ImageId> {
        self.inner.read().catalog.children_of(base).to_vec()
    }

    /// The base image of an edited image.
    pub fn base_of(&self, id: ImageId) -> Option<ImageId> {
        self.inner.read().catalog.base_of(id)
    }

    /// The stored edit sequence of `id`, or `None` for binary images.
    pub fn edit_sequence(&self, id: ImageId) -> Option<Arc<EditSequence>> {
        match self.inner.read().catalog.get(id) {
            Some(CatalogEntry::Edited { sequence }) => Some(Arc::clone(sequence)),
            _ => None,
        }
    }

    /// The instantiated raster for `id` — decoded from the blob store for
    /// binary images, or produced by executing the edit sequence for edited
    /// images. Results are LRU-cached.
    pub fn raster(&self, id: ImageId) -> Result<Arc<RasterImage>> {
        if let Some(img) = self.cache.lock().get(&id) {
            counter!("mmdb_storage_cache_hits_total").inc();
            return Ok(Arc::clone(img));
        }
        counter!("mmdb_storage_cache_misses_total").inc();
        // Fetch what we need under the read lock, then do the expensive work
        // (decode / instantiate) without holding it.
        enum Plan {
            Decode(Vec<u8>),
            Instantiate(Arc<EditSequence>),
        }
        let plan = {
            let inner = self.inner.read();
            match inner.catalog.get(id) {
                None => return Err(StorageError::NotFound(id)),
                Some(CatalogEntry::Binary { blob, .. }) => Plan::Decode(inner.blobs.get(*blob)?),
                Some(CatalogEntry::Edited { sequence }) => Plan::Instantiate(Arc::clone(sequence)),
            }
        };
        let image = match plan {
            Plan::Decode(bytes) => {
                counter!("mmdb_storage_blob_reads_total").inc();
                counter!("mmdb_storage_blob_read_bytes_total").add(bytes.len() as u64);
                ppm::decode(&bytes)?
            }
            Plan::Instantiate(seq) => {
                let opts = ExecOptions {
                    background: self.background,
                };
                let started = Instant::now();
                let image = InstantiationEngine::with_options(self, opts).instantiate(&seq)?;
                counter!("mmdb_storage_instantiations_total").inc();
                histogram!("mmdb_storage_instantiation_latency_seconds").observe(started.elapsed());
                image
            }
        };
        let image = Arc::new(image);
        let weight = image.pixel_count() as usize * 3;
        let evicted = self.cache.lock().insert(id, Arc::clone(&image), weight);
        if evicted > 0 {
            counter!("mmdb_storage_cache_evictions_total").add(evicted as u64);
            if mmdb_telemetry::instrumentation_enabled() {
                mmdb_telemetry::recorder().record(
                    mmdb_telemetry::EventKind::CacheEviction,
                    format!("admitting {id} evicted {evicted} raster(s)"),
                    &[("evicted", evicted as u64), ("bytes", weight as u64)],
                );
            }
        }
        Ok(image)
    }

    /// The color histogram of `id`. Exact and O(1) for binary images; for
    /// edited images this **instantiates** (the expensive path the RBM/BWM
    /// query processing exists to avoid — exposed for ground-truth checks
    /// and result verification).
    pub fn histogram(&self, id: ImageId) -> Result<Arc<ColorHistogram>> {
        if let Some(CatalogEntry::Binary { histogram, .. }) = self.inner.read().catalog.get(id) {
            return Ok(Arc::clone(histogram));
        }
        if !self.contains(id) {
            return Err(StorageError::NotFound(id));
        }
        let raster = self.raster(id)?;
        Ok(Arc::new(ColorHistogram::extract(
            &raster,
            self.quantizer.as_ref(),
        )))
    }

    /// Deletes `id`. Binary images that still have derived children are
    /// protected.
    pub fn delete(&self, id: ImageId) -> Result<()> {
        let mut inner = self.inner.write();
        match inner.catalog.get(id) {
            None => return Err(StorageError::NotFound(id)),
            Some(CatalogEntry::Binary { .. }) => {
                let dependents = inner.catalog.children_of(id).len();
                if dependents > 0 {
                    return Err(StorageError::StillReferenced { id, dependents });
                }
            }
            Some(CatalogEntry::Edited { .. }) => {}
        }
        self.log_mutation(&WalRecord::Delete { id })?;
        if let Some(CatalogEntry::Binary { blob, .. }) = inner.catalog.remove(id) {
            inner.blobs.delete(blob);
        }
        self.bump_epoch();
        drop(inner);
        self.cache.lock().invalidate(&id);
        Ok(())
    }

    /// Persists the current state: a catalog snapshot (atomic, via temp
    /// file + rename) plus a group-commit fsync of the WAL's active
    /// segment. A no-op for in-memory databases.
    pub fn flush(&self) -> Result<()> {
        self.snapshot_now()
    }

    /// Writes a snapshot of the current catalog, fsyncs the WAL, and
    /// garbage-collects WAL segments and blob generations the retained
    /// snapshots no longer need. A no-op for in-memory databases.
    pub fn snapshot_now(&self) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let inner = self.inner.read();
        // Blob bytes the snapshot references must be durable before the
        // snapshot commits — records at or below the cover point are never
        // replayed, so nothing else would rewrite them.
        inner.blobs.sync()?;
        let payload = inner.catalog.encode(inner.blobs.free_list());
        let covered = d.wal.lock().last_seqno();
        drop(inner);
        // Relaxed on `blob_gen`: only `compact` stores it, and `compact`
        // holds the exclusive catalog lock while doing so.
        d.snaps
            .write(covered, d.blob_gen.load(Ordering::Relaxed), &payload)
            .map_err(map_durable)?;
        d.appended_since_snapshot.store(0, Ordering::Relaxed);
        let oldest = d
            .snaps
            .oldest_covered()
            .map_err(map_durable)?
            .unwrap_or(covered);
        {
            let mut wal = d.wal.lock();
            wal.sync().map_err(map_durable)?;
            wal.gc(oldest).map_err(map_durable)?;
        }
        gc_blob_generations(&d.dir, &d.snaps, d.blob_gen.load(Ordering::Relaxed))?;
        Ok(())
    }

    /// Forces the WAL's active segment to stable storage. Used by clean
    /// shutdown and by the background group-commit path.
    pub fn wal_sync(&self) -> Result<()> {
        if let Some(d) = &self.durable {
            d.wal.lock().sync().map_err(map_durable)?;
        }
        Ok(())
    }

    /// One background maintenance step, intended for a periodic thread off
    /// the request path: a group-commit fsync when the `Interval` policy's
    /// deadline has passed, and a snapshot (with segment GC) once
    /// `snapshot_every` records have accumulated since the last one.
    pub fn maintenance_tick(&self) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if let FsyncPolicy::Interval(every) = d.opts.fsync {
            let mut last = d.last_interval_sync.lock();
            if last.elapsed() >= every {
                d.wal.lock().sync().map_err(map_durable)?;
                *last = Instant::now();
            }
        }
        if d.appended_since_snapshot.load(Ordering::Relaxed) >= d.opts.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Compacts the blob store: rewrites every live blob contiguously,
    /// eliminating the holes left by deletions, and updates the catalog's
    /// blob references. Returns the number of bytes reclaimed.
    ///
    /// File-backed databases write the next blob *generation* file
    /// (`blobs-<n>.mmdb`) and commit it by writing a snapshot that
    /// references it — until that snapshot is durable, recovery uses the
    /// previous snapshot and the previous generation file, which is only
    /// garbage-collected once no retained snapshot references it. A crash
    /// at any point therefore leaves a consistent database.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.write();
        let before = inner.blobs.file_size();
        let target = self.durable.as_ref().map(|d| {
            // Relaxed: `compact` is the only writer of `blob_gen` and runs
            // under the exclusive catalog lock.
            let gen = d.blob_gen.load(Ordering::Relaxed) + 1;
            (d.dir.join(blob_file_name(gen)), gen)
        });
        let mut fresh = match &target {
            Some((path, _)) => {
                // Debris of a compaction that crashed before committing.
                std::fs::remove_file(path).ok();
                BlobStore::open(path)?
            }
            None => BlobStore::in_memory(),
        };
        // Rewrite blobs in id order and collect the catalog updates.
        let mut moves: Vec<(ImageId, crate::blobstore::BlobRef)> = Vec::new();
        for (id, entry) in inner.catalog.iter() {
            if let CatalogEntry::Binary { blob, .. } = entry {
                let bytes = inner.blobs.get(*blob)?;
                moves.push((id, fresh.put(&bytes)?));
            }
        }
        for (id, new_ref) in moves {
            // Replace the entry with the relocated blob reference.
            if let Some(CatalogEntry::Binary {
                width,
                height,
                histogram,
                ..
            }) = inner.catalog.remove(id)
            {
                inner.catalog.insert(
                    id,
                    CatalogEntry::Binary {
                        blob: new_ref,
                        width,
                        height,
                        histogram,
                    },
                );
            }
        }
        let after = fresh.file_size();
        if let (Some(d), Some((_, gen))) = (&self.durable, target) {
            fresh.sync()?;
            inner.blobs = fresh;
            let payload = inner.catalog.encode(inner.blobs.free_list());
            let covered = d.wal.lock().last_seqno();
            d.blob_gen.store(gen, Ordering::Relaxed);
            drop(inner);
            // Commit point: the snapshot referencing the new generation.
            d.snaps.write(covered, gen, &payload).map_err(map_durable)?;
            d.appended_since_snapshot.store(0, Ordering::Relaxed);
            let oldest = d
                .snaps
                .oldest_covered()
                .map_err(map_durable)?
                .unwrap_or(covered);
            {
                let mut wal = d.wal.lock();
                wal.sync().map_err(map_durable)?;
                wal.gc(oldest).map_err(map_durable)?;
            }
            gc_blob_generations(&d.dir, &d.snaps, gen)?;
        } else {
            inner.blobs = fresh;
        }
        Ok(before.saturating_sub(after))
    }

    /// Consistency check (fsck): verifies that
    ///
    /// * every binary entry's blob decodes to a raster of the cataloged
    ///   dimensions and its stored histogram matches a re-extraction,
    /// * the static analyzer finds no Error-level diagnostic: every edit
    ///   sequence references existing binary images, the reference graph is
    ///   acyclic, and every sequence is well-formed and boundable,
    /// * no blob overlaps another blob or a free-list hole.
    ///
    /// Returns the list of problems found (empty = healthy).
    pub fn verify(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut extents: Vec<(u64, u64, ImageId)> = Vec::new();
        // Collect everything to check under the read lock, then do the
        // expensive decode/extract work without holding it.
        struct BinaryCheck {
            id: ImageId,
            bytes: Result<Vec<u8>>,
            width: u32,
            height: u32,
            histogram: Arc<ColorHistogram>,
        }
        let mut binaries = Vec::new();
        {
            let inner = self.inner.read();
            for (id, entry) in inner.catalog.iter() {
                match entry {
                    CatalogEntry::Binary {
                        blob,
                        width,
                        height,
                        histogram,
                    } => {
                        extents.push((blob.offset, blob.len, id));
                        binaries.push(BinaryCheck {
                            id,
                            bytes: inner.blobs.get(*blob),
                            width: *width,
                            height: *height,
                            histogram: Arc::clone(histogram),
                        });
                    }
                    CatalogEntry::Edited { .. } => {}
                }
            }
            // Blob overlap checks (blobs vs blobs and blobs vs free holes).
            extents.sort_unstable();
            for w in extents.windows(2) {
                if w[0].1 > 0 && w[0].0 + w[0].1 > w[1].0 {
                    problems.push(format!("blobs of {} and {} overlap", w[0].2, w[1].2));
                }
            }
            for &(h_off, h_len) in inner.blobs.free_list() {
                for &(b_off, b_len, id) in &extents {
                    if b_len > 0 && b_off < h_off + h_len && h_off < b_off + b_len {
                        problems.push(format!("free hole ({h_off},{h_len}) overlaps blob of {id}"));
                    }
                }
            }
        }
        for check in binaries {
            match check.bytes.and_then(|b| Ok(ppm::decode(&b)?)) {
                Err(e) => problems.push(format!("{}: blob unreadable: {e}", check.id)),
                Ok(raster) => {
                    if (raster.width(), raster.height()) != (check.width, check.height) {
                        problems.push(format!(
                            "{}: cataloged {}x{} but blob decodes to {}x{}",
                            check.id,
                            check.width,
                            check.height,
                            raster.width(),
                            raster.height()
                        ));
                    }
                    let fresh = ColorHistogram::extract(&raster, self.quantizer.as_ref());
                    if fresh.counts() != check.histogram.counts() {
                        problems.push(format!("{}: stored histogram is stale", check.id));
                    }
                }
            }
        }
        // Static analysis over every stored sequence plus the reference
        // graph: dangling or non-binary references, cycles, malformed or
        // unboundable sequences. Error-level findings are corruption;
        // warnings (dead ops, the Combine caveat) are not.
        let analyzer = Analyzer::with_resolver(self.quantizer.as_ref(), self.background, self);
        let report = mmdb_analysis::analyze_catalog(self, &analyzer);
        problems.extend(
            report
                .diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Error)
                .map(ToString::to_string),
        );
        problems
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StorageStats {
        let inner = self.inner.read();
        let mut s = StorageStats::default();
        for (_, entry) in inner.catalog.iter() {
            match entry {
                CatalogEntry::Binary { blob, .. } => {
                    s.binary_count += 1;
                    s.binary_bytes += blob.len;
                }
                CatalogEntry::Edited { sequence } => {
                    s.edited_count += 1;
                    s.edited_bytes += mmdb_editops::codec::encode(sequence).len() as u64;
                }
            }
        }
        drop(inner);
        let (hits, misses) = self.cache.lock().stats();
        s.cache_hits = hits;
        s.cache_misses = misses;
        s
    }
}

impl Drop for StorageEngine {
    /// Best-effort group commit on shutdown: under `Interval`/`Never`
    /// policies a clean process exit should not lose acknowledged records.
    fn drop(&mut self) {
        if let Some(d) = &self.durable {
            let _ = d.wal.lock().sync();
        }
    }
}

/// Migrates a pre-durability directory (bare `catalog.mmdb` + `blobs.mmdb`)
/// into the durable layout: the catalog file becomes the initial snapshot
/// (covering seqno 0, blob generation 0 — the legacy blob file's name *is*
/// generation 0's name), then the meta header commits the migration and the
/// legacy file is removed. Idempotent under crashes: until the meta header
/// exists the next open retries the whole migration.
fn migrate_legacy_dir(dir: &Path) -> Result<()> {
    let legacy = dir.join("catalog.mmdb");
    let bytes = std::fs::read(&legacy)?;
    // Validate before committing to the new layout.
    Catalog::decode(&bytes)?;
    let snaps = SnapshotStore::open(&dir.join("snapshots")).map_err(map_durable)?;
    snaps.write(0, 0, &bytes).map_err(map_durable)?;
    write_meta(dir, Meta::current()).map_err(map_durable)?;
    std::fs::remove_file(&legacy)?;
    Ok(())
}

/// Lets the instantiation engine pull base/target rasters out of this
/// database.
impl ImageResolver for StorageEngine {
    fn resolve(&self, id: ImageId) -> mmdb_editops::Result<RasterImage> {
        match self.raster(id) {
            Ok(img) => Ok((*img).clone()),
            Err(StorageError::NotFound(_)) => Err(EditError::UnknownImage(id)),
            Err(other) => Err(EditError::InvalidOperation(other.to_string())),
        }
    }
}

/// Lets the static analyzer walk the catalog's reference graph without
/// touching pixel data.
impl CatalogGraph for StorageEngine {
    fn node_ids(&self) -> Vec<ImageId> {
        self.ids()
    }

    fn node_kind(&self, id: ImageId) -> Option<NodeKind> {
        match self.inner.read().catalog.get(id).map(CatalogEntry::kind) {
            Some(StoredKind::Binary) => Some(NodeKind::Binary),
            Some(StoredKind::Edited) => Some(NodeKind::Edited),
            None => None,
        }
    }

    fn node_sequence(&self, id: ImageId) -> Option<Arc<EditSequence>> {
        self.edit_sequence(id)
    }
}

/// Lets the RBM/BWM query paths fetch exact histograms and dimensions of
/// referenced *binary* images without touching pixel data.
impl InfoResolver for StorageEngine {
    fn info(&self, id: ImageId) -> Option<ImageInfo> {
        match self.inner.read().catalog.get(id) {
            Some(CatalogEntry::Binary {
                histogram,
                width,
                height,
                ..
            }) => Some(ImageInfo {
                histogram: Arc::clone(histogram),
                width: *width,
                height: *height,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::RgbQuantizer;
    use mmdb_imaging::{draw, Rect};

    fn engine() -> StorageEngine {
        StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()))
    }

    fn two_tone(w: u32, h: u32, top: Rgb, bottom: Rgb) -> RasterImage {
        let mut img = RasterImage::filled(w, h, bottom).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, w as i64, h as i64 / 2), top);
        img
    }

    #[test]
    fn insert_and_fetch_binary() {
        let db = engine();
        let img = two_tone(16, 16, Rgb::RED, Rgb::WHITE);
        let id = db.insert_binary(&img).unwrap();
        assert_eq!(db.kind(id).unwrap(), StoredKind::Binary);
        let back = db.raster(id).unwrap();
        assert_eq!(*back, img);
        // Histogram is exact.
        let q = RgbQuantizer::default_64();
        let h = db.histogram(id).unwrap();
        assert_eq!(h.count(q.bin_of(Rgb::RED)), 128);
        assert_eq!(h.total(), 256);
    }

    #[test]
    fn insert_edited_and_instantiate() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let seq = EditSequence::builder(base)
            .modify(Rgb::RED, Rgb::BLUE)
            .build();
        let id = db.insert_edited(seq).unwrap();
        assert_eq!(db.kind(id).unwrap(), StoredKind::Edited);
        let img = db.raster(id).unwrap();
        assert_eq!(img.count_color(Rgb::BLUE), 32);
        assert_eq!(img.count_color(Rgb::RED), 0);
        // Histogram of the edited image instantiates correctly.
        let q = RgbQuantizer::default_64();
        assert_eq!(db.histogram(id).unwrap().count(q.bin_of(Rgb::BLUE)), 32);
        // Provenance.
        assert_eq!(db.base_of(id), Some(base));
        assert_eq!(db.children_of(base), vec![id]);
    }

    #[test]
    fn edited_with_merge_target_resolves() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(6, 6, Rgb::GREEN, Rgb::BLACK))
            .unwrap();
        let target = db
            .insert_binary(&RasterImage::filled(10, 10, Rgb::WHITE).unwrap())
            .unwrap();
        let seq = EditSequence::builder(base)
            .define(Rect::new(0, 0, 3, 3))
            .merge_into(target, 2, 2)
            .build();
        let id = db.insert_edited(seq).unwrap();
        let img = db.raster(id).unwrap();
        assert_eq!(img.width(), 10);
        assert_eq!(img.count_color(Rgb::GREEN), 9);
    }

    #[test]
    fn invalid_references_rejected() {
        let db = engine();
        let missing = EditSequence::builder(ImageId::new(99)).blur().build();
        assert!(matches!(
            db.insert_edited(missing),
            Err(StorageError::InvalidReference { .. })
        ));
        // Edited image as base: also rejected.
        let base = db
            .insert_binary(&two_tone(4, 4, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let e1 = db
            .insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        assert!(matches!(
            db.insert_edited(EditSequence::builder(e1).blur().build()),
            Err(StorageError::InvalidReference { .. })
        ));
        // Missing merge target.
        let seq = EditSequence::builder(base)
            .merge_into(ImageId::new(1234), 0, 0)
            .build();
        assert!(matches!(
            db.insert_edited(seq),
            Err(StorageError::InvalidReference { .. })
        ));
    }

    #[test]
    fn structurally_invalid_sequences_rejected() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        // Crop of a region that clips to empty: cannot instantiate or bound.
        let bad = EditSequence::builder(base)
            .define(mmdb_imaging::Rect::new(100, 100, 120, 120))
            .crop_to_region()
            .build();
        assert!(matches!(
            db.insert_edited(bad),
            Err(StorageError::InvalidSequence(_))
        ));
        // A valid crop is fine.
        let good = EditSequence::builder(base)
            .define(mmdb_imaging::Rect::new(1, 1, 5, 5))
            .crop_to_region()
            .build();
        assert!(db.insert_edited(good).is_ok());
        // Nothing half-inserted: only the good sequence is cataloged.
        assert_eq!(db.edited_ids().len(), 1);
    }

    #[test]
    fn delete_rules() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(4, 4, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let child = db
            .insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        assert!(matches!(
            db.delete(base),
            Err(StorageError::StillReferenced { dependents: 1, .. })
        ));
        db.delete(child).unwrap();
        db.delete(base).unwrap();
        assert!(!db.contains(base));
        assert!(matches!(db.delete(base), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn raster_cache_hits() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(32, 32, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let _ = db.raster(base).unwrap();
        let _ = db.raster(base).unwrap();
        let s = db.stats();
        assert!(s.cache_hits >= 1, "stats: {s:?}");
    }

    #[test]
    fn stats_space_saving() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(64, 64, Rgb::RED, Rgb::WHITE))
            .unwrap();
        for _ in 0..5 {
            db.insert_edited(
                EditSequence::builder(base)
                    .define(Rect::new(0, 0, 10, 10))
                    .modify(Rgb::RED, Rgb::GREEN)
                    .build(),
            )
            .unwrap();
        }
        let s = db.stats();
        assert_eq!(s.binary_count, 1);
        assert_eq!(s.edited_count, 5);
        let factor = s.space_saving_factor().unwrap();
        assert!(factor > 50.0, "space saving factor {factor}");
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mmdb_engine_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (base, edited, img) = {
            let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
            let img = two_tone(12, 12, Rgb::BLUE, Rgb::WHITE);
            let base = db.insert_binary(&img).unwrap();
            let edited = db
                .insert_edited(
                    EditSequence::builder(base)
                        .modify(Rgb::BLUE, Rgb::RED)
                        .build(),
                )
                .unwrap();
            db.flush().unwrap();
            (base, edited, img)
        };
        let db = StorageEngine::open(&dir).unwrap();
        assert_eq!(*db.raster(base).unwrap(), img);
        let e = db.raster(edited).unwrap();
        assert_eq!(e.count_color(Rgb::RED), 72);
        assert_eq!(db.children_of(base), vec![edited]);
        assert_eq!(db.quantizer().describe(), "rgb-uniform/4");
        // Creating over an existing database is refused.
        assert!(StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_replays_unflushed_mutations() {
        let dir = std::env::temp_dir().join(format!("mmdb_replay_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let img = two_tone(10, 10, Rgb::GREEN, Rgb::BLACK);
        let (base, edited, doomed) = {
            let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
            let base = db.insert_binary(&img).unwrap();
            let edited = db
                .insert_edited(
                    EditSequence::builder(base)
                        .modify(Rgb::GREEN, Rgb::RED)
                        .build(),
                )
                .unwrap();
            let doomed = db
                .insert_binary(&two_tone(6, 6, Rgb::BLUE, Rgb::WHITE))
                .unwrap();
            db.delete(doomed).unwrap();
            // No flush: everything after the initial empty snapshot lives
            // only in the WAL.
            (base, edited, doomed)
        };
        let db = StorageEngine::open(&dir).unwrap();
        let info = db.recovery_info().unwrap();
        assert_eq!(info.replayed_records, 4, "{info:?}");
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(*db.raster(base).unwrap(), img);
        assert_eq!(db.children_of(base), vec![edited]);
        assert!(!db.contains(doomed));
        // Epoch resumes at the WAL position: mutations keep logging.
        assert_eq!(db.current_epoch(), 4);
        let next = db.insert_binary(&img).unwrap();
        assert!(
            next.raw() > doomed.raw(),
            "id allocator advanced past replayed ids"
        );
        assert!(db.verify().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("mmdb_torn_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let img = two_tone(8, 8, Rgb::RED, Rgb::WHITE);
        {
            let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
            db.insert_binary(&img).unwrap();
            db.insert_binary(&two_tone(8, 8, Rgb::BLUE, Rgb::WHITE))
                .unwrap();
        }
        // Tear the final record mid-frame, as a crash mid-append would.
        let (seg, _) = mmdb_durable::wal::list_segments(&dir.join("wal"))
            .unwrap()
            .pop()
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 7)
            .unwrap();

        let db = StorageEngine::open(&dir).unwrap();
        let info = db.recovery_info().unwrap();
        assert!(info.torn_bytes > 0, "{info:?}");
        assert_eq!(info.replayed_records, 1);
        assert_eq!(db.ids().len(), 1);
        assert_eq!(*db.raster(ImageId::new(1)).unwrap(), img);
        assert!(db.verify().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_layout_migrates_on_open() {
        let dir = std::env::temp_dir().join(format!("mmdb_legacy_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-durability directory: bare catalog.mmdb (+ blobs.mmdb).
        let catalog = Catalog::new(RgbQuantizer::default_64().describe());
        std::fs::write(dir.join("catalog.mmdb"), catalog.encode(&[])).unwrap();
        std::fs::write(dir.join("blobs.mmdb"), b"").unwrap();

        let db = StorageEngine::open(&dir).unwrap();
        assert!(!dir.join("catalog.mmdb").exists(), "legacy file removed");
        assert!(dir.join("meta").exists(), "meta header written");
        let img = two_tone(4, 4, Rgb::RED, Rgb::WHITE);
        let id = db.insert_binary(&img).unwrap();
        drop(db);
        let db = StorageEngine::open(&dir).unwrap();
        assert_eq!(*db.raster(id).unwrap(), img);
        // Migrated directories refuse a second `create`, like any other.
        assert!(StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_is_crash_safe_via_generations() {
        let dir = std::env::temp_dir().join(format!("mmdb_gen_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
        let mut keep = Vec::new();
        for i in 0..6u8 {
            let img = two_tone(12, 12, Rgb::new(i * 30, 0, 0), Rgb::WHITE);
            let id = db.insert_binary(&img).unwrap();
            if i % 2 == 0 {
                keep.push((id, img));
            } else {
                db.delete(id).unwrap();
            }
        }
        db.compact().unwrap();
        assert!(
            dir.join("blobs-1.mmdb").exists(),
            "compaction writes the next generation"
        );
        // Both generations coexist while a retained snapshot still
        // references generation 0 (the fallback snapshot must stay
        // loadable)...
        assert!(dir.join("blobs.mmdb").exists(), "old generation retained");
        // ...and once every retained snapshot has moved past it, the old
        // generation is garbage-collected.
        db.insert_binary(&two_tone(4, 4, Rgb::GREEN, Rgb::BLACK))
            .unwrap();
        db.flush().unwrap();
        assert!(!dir.join("blobs.mmdb").exists(), "old generation GC'd");
        drop(db);
        let db = StorageEngine::open(&dir).unwrap();
        for (id, img) in &keep {
            assert_eq!(&*db.raster(*id).unwrap(), img);
        }
        assert!(db.verify().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_resolver_binary_only() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(4, 4, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let edited = db
            .insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        assert!(db.info(base).is_some());
        assert!(db.info(edited).is_none());
        assert!(db.info(ImageId::new(999)).is_none());
        let info = db.info(base).unwrap();
        assert_eq!(info.width, 4);
        assert_eq!(info.histogram.total(), 16);
    }

    #[test]
    fn compact_reclaims_holes_and_preserves_data() {
        let dir = std::env::temp_dir().join(format!("mmdb_compact_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
        let mut keep = Vec::new();
        let mut drop_ids = Vec::new();
        for i in 0..10u8 {
            let img = two_tone(16, 16, Rgb::new(i * 20, 0, 0), Rgb::WHITE);
            let id = db.insert_binary(&img).unwrap();
            if i % 2 == 0 {
                keep.push((id, img));
            } else {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            db.delete(id).unwrap();
        }
        let before = db.stats().binary_bytes;
        let reclaimed = db.compact().unwrap();
        assert!(reclaimed > 0, "interleaved deletes must leave holes");
        // All kept rasters are intact, bit-exact.
        for (id, img) in &keep {
            assert_eq!(&*db.raster(*id).unwrap(), img);
        }
        assert_eq!(db.stats().binary_bytes, before);
        assert!(db.verify().is_empty(), "compacted db passes fsck");
        // Survives reopen.
        db.flush().unwrap();
        drop(db);
        let db = StorageEngine::open(&dir).unwrap();
        for (id, img) in &keep {
            assert_eq!(&*db.raster(*id).unwrap(), img);
        }
        assert!(db.verify().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_in_memory_database() {
        let db = engine();
        let a = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let b = db
            .insert_binary(&two_tone(8, 8, Rgb::GREEN, Rgb::WHITE))
            .unwrap();
        let child = db
            .insert_edited(EditSequence::builder(b).blur().build())
            .unwrap();
        db.delete(a).unwrap();
        let reclaimed = db.compact().unwrap();
        assert!(reclaimed > 0);
        // Provenance links survive the catalog rewrite.
        assert_eq!(db.children_of(b), vec![child]);
        assert!(db.raster(child).is_ok());
        assert!(db.verify().is_empty());
    }

    #[test]
    fn verify_healthy_database() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let target = db
            .insert_binary(&two_tone(6, 6, Rgb::GREEN, Rgb::BLACK))
            .unwrap();
        db.insert_edited(
            EditSequence::builder(base)
                .define(mmdb_imaging::Rect::new(0, 0, 4, 4))
                .merge_into(target, 1, 1)
                .build(),
        )
        .unwrap();
        assert_eq!(db.verify(), Vec::<String>::new());
    }

    #[test]
    fn verify_detects_corrupted_blob() {
        let dir = std::env::temp_dir().join(format!("mmdb_fsck_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = StorageEngine::create(&dir, Box::new(RgbQuantizer::default_64())).unwrap();
            db.insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
                .unwrap();
            db.flush().unwrap();
        }
        // Flip pixel bytes in the blob file (the PPM body), corrupting the
        // stored raster relative to the cataloged histogram.
        let blob_path = dir.join("blobs.mmdb");
        let mut bytes = std::fs::read(&blob_path).unwrap();
        let n = bytes.len();
        for b in &mut bytes[n - 24..] {
            *b ^= 0xFF;
        }
        std::fs::write(&blob_path, &bytes).unwrap();
        let db = StorageEngine::open(&dir).unwrap();
        let problems = db.verify();
        assert!(
            problems.iter().any(|p| p.contains("stale")),
            "expected a stale-histogram finding, got {problems:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_validation_rejects_errors_and_records_lints() {
        mmdb_analysis::register_metrics();
        let db = engine();
        assert!(db.ingest_validation());
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        // Error-level: non-affine Mutate (projective bottom row).
        let mut m = mmdb_editops::Matrix3::IDENTITY;
        m.m[2][0] = 0.5;
        let bad = EditSequence::builder(base).mutate(m).build();
        let err = db.insert_edited(bad).unwrap_err();
        match err {
            StorageError::InvalidSequence(msg) => {
                assert!(msg.contains("E007"), "expected the lint code, got: {msg}");
            }
            other => panic!("expected InvalidSequence, got {other:?}"),
        }
        // Warn-level findings (a dead Define) do not block the insert but
        // land in the per-lint telemetry counters.
        let warned = EditSequence::builder(base)
            .define(Rect::new(0, 0, 2, 2))
            .define(Rect::new(0, 0, 4, 4))
            .blur()
            .build();
        assert!(db.insert_edited(warned).is_ok());
        let text = mmdb_telemetry::global().render_prometheus();
        assert!(
            text.contains(r#"mmdb_analysis_diagnostics_total{code="E007"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"mmdb_analysis_diagnostics_total{code="W101"}"#),
            "{text}"
        );
    }

    #[test]
    fn ingest_validation_can_fall_back_to_bounds_probe() {
        let db = engine();
        db.set_ingest_validation(false);
        assert!(!db.ingest_validation());
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        // The legacy probe still refuses unboundable sequences...
        let bad = EditSequence::builder(base)
            .define(Rect::new(100, 100, 120, 120))
            .crop_to_region()
            .build();
        assert!(matches!(
            db.insert_edited(bad),
            Err(StorageError::InvalidSequence(_))
        ));
        // ...and still accepts healthy ones.
        let good = EditSequence::builder(base).blur().build();
        assert!(db.insert_edited(good).is_ok());
    }

    #[test]
    fn verify_reports_analyzer_errors_with_lint_codes() {
        let db = engine();
        let base = db
            .insert_binary(&two_tone(8, 8, Rgb::RED, Rgb::WHITE))
            .unwrap();
        db.insert_edited(EditSequence::builder(base).blur().build())
            .unwrap();
        // Deleting the child first, then the base, then re-adding an edited
        // image is the supported path; to simulate corruption we bypass
        // validation with a dangling merge target via the catalog itself.
        db.set_ingest_validation(false);
        {
            let mut inner = db.inner.write();
            let id = inner.catalog.allocate_id();
            inner.catalog.insert(
                id,
                CatalogEntry::Edited {
                    sequence: Arc::new(
                        EditSequence::builder(base)
                            .define(Rect::new(0, 0, 4, 4))
                            .merge_into(ImageId::new(4242), 0, 0)
                            .build(),
                    ),
                },
            );
        }
        let problems = db.verify();
        assert!(
            problems.iter().any(|p| p.contains("E002")),
            "expected a dangling-merge-target finding, got {problems:?}"
        );
    }

    #[test]
    fn ids_listing() {
        let db = engine();
        let b1 = db
            .insert_binary(&two_tone(4, 4, Rgb::RED, Rgb::WHITE))
            .unwrap();
        let b2 = db
            .insert_binary(&two_tone(4, 4, Rgb::GREEN, Rgb::WHITE))
            .unwrap();
        let e1 = db
            .insert_edited(EditSequence::builder(b1).blur().build())
            .unwrap();
        assert_eq!(db.ids(), vec![b1, b2, e1]);
        assert_eq!(db.binary_ids(), vec![b1, b2]);
        assert_eq!(db.edited_ids(), vec![e1]);
    }
}

//! Storage-engine error type.

use mmdb_editops::ImageId;
use std::fmt;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// The requested image id has no catalog entry.
    NotFound(ImageId),
    /// An edit sequence references a base or target that is not a stored
    /// binary image.
    InvalidReference {
        /// The offending reference.
        id: ImageId,
        /// Why it is invalid.
        reason: String,
    },
    /// The edit sequence is structurally invalid — it can neither be
    /// instantiated nor bounded (e.g. a crop of an empty region), so the
    /// database refuses to store it.
    InvalidSequence(String),
    /// Attempted to delete an image that other objects still derive from.
    StillReferenced {
        /// The image that cannot be deleted.
        id: ImageId,
        /// Number of edited images deriving from it.
        dependents: usize,
    },
    /// The on-disk catalog or blob file is corrupt.
    Corrupt(String),
    /// The database was created with a different quantizer than requested.
    QuantizerMismatch {
        /// Quantizer recorded in the catalog.
        stored: String,
        /// Quantizer the caller supplied.
        requested: String,
    },
    /// Error from the imaging layer (codec, dimensions).
    Imaging(mmdb_imaging::ImagingError),
    /// Error instantiating an edit sequence.
    Edit(mmdb_editops::EditError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(id) => write!(f, "{id} not found"),
            StorageError::InvalidReference { id, reason } => {
                write!(f, "invalid reference to {id}: {reason}")
            }
            StorageError::InvalidSequence(msg) => {
                write!(f, "invalid edit sequence: {msg}")
            }
            StorageError::StillReferenced { id, dependents } => {
                write!(f, "{id} still referenced by {dependents} edited image(s)")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt database: {msg}"),
            StorageError::QuantizerMismatch { stored, requested } => write!(
                f,
                "database built with quantizer {stored:?}, requested {requested:?}"
            ),
            StorageError::Imaging(e) => write!(f, "imaging error: {e}"),
            StorageError::Edit(e) => write!(f, "edit error: {e}"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Imaging(e) => Some(e),
            StorageError::Edit(e) => Some(e),
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<mmdb_imaging::ImagingError> for StorageError {
    fn from(e: mmdb_imaging::ImagingError) -> Self {
        StorageError::Imaging(e)
    }
}

impl From<mmdb_editops::EditError> for StorageError {
    fn from(e: mmdb_editops::EditError) -> Self {
        StorageError::Edit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::NotFound(ImageId::new(4))
            .to_string()
            .contains("img#4"));
        let e = StorageError::StillReferenced {
            id: ImageId::new(1),
            dependents: 3,
        };
        assert!(e.to_string().contains("3 edited image(s)"));
        let e = StorageError::QuantizerMismatch {
            stored: "rgb-uniform/4".into(),
            requested: "rgb-uniform/8".into(),
        };
        assert!(e.to_string().contains("rgb-uniform/8"));
    }

    #[test]
    fn conversions() {
        let io: StorageError = std::io::Error::other("x").into();
        assert!(matches!(io, StorageError::Io(_)));
    }
}

//! The mutation-epoch protocol, extracted so it can be model-checked.
//!
//! Derived read structures (the bound-interval index, most prominently)
//! stamp themselves with the epoch they were built from and refuse to serve
//! while their stamp trails [`MutationEpoch::current`]. The protocol's
//! correctness rests on two rules, both encoded here and model-checked from
//! `mmdb-conc` (see DESIGN.md, "Appendix: the mutation-epoch protocol"):
//!
//! 1. **Writers bump after publishing.** Every catalog mutation updates the
//!    catalog under the exclusive lock and calls [`MutationEpoch::bump`]
//!    (an `AcqRel` read-modify-write) before releasing it.
//! 2. **Readers capture before reading.** A builder captures the epoch with
//!    [`MutationEpoch::current`] (`Acquire`) *before* reading any catalog
//!    state it derives from. A mutation racing with the build then leaves
//!    the derived stamp *behind* the true epoch — forcing a re-sync on the
//!    next serve — never ahead of it, which would serve stale data.

use mmdb_conc::sync::atomic::{AtomicU64, Ordering};

/// A monotone mutation counter ordering derived structures against catalog
/// writes.
#[derive(Debug, Default)]
pub struct MutationEpoch {
    epoch: AtomicU64,
}

impl MutationEpoch {
    /// A new epoch counter starting at zero.
    pub const fn new() -> MutationEpoch {
        MutationEpoch {
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch.
    ///
    /// `Acquire`: a reader that observes epoch `e` also observes every
    /// catalog write that happened-before the bump to `e` (the bump is an
    /// `AcqRel` RMW performed while the exclusive catalog lock is held).
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the epoch by one, returning the new value.
    ///
    /// `AcqRel`: the release half publishes the catalog mutation that
    /// precedes the bump; the acquire half keeps consecutive bumps ordered
    /// into a single release sequence, so a reader acquiring the newest
    /// epoch sees *all* prior mutations, not just the last one.
    pub fn bump(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Restores the counter to `value` — recovery-time only, before the
    /// engine is shared with any reader. Every durable mutation appends
    /// exactly one WAL record and bumps the epoch exactly once (both under
    /// the exclusive lock), so restoring the epoch to the log's last
    /// sequence number keeps the two in lockstep across restarts; persisted
    /// index stamps therefore stay comparable against post-recovery epochs.
    pub fn restore(&self, value: u64) {
        self.epoch.store(value, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotone() {
        let e = MutationEpoch::new();
        assert_eq!(e.current(), 0);
        assert_eq!(e.bump(), 1);
        assert_eq!(e.bump(), 2);
        assert_eq!(e.current(), 2);
    }
}

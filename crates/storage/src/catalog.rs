//! The object catalog: one entry per image, binary or edited, plus the
//! base→derived provenance links and the persisted form of both.

use crate::blobstore::BlobRef;
use crate::error::StorageError;
use crate::Result;
use bytes::{Buf, BufMut, BytesMut};
use mmdb_editops::{codec as seq_codec, EditSequence, ImageId};
use mmdb_histogram::ColorHistogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"MMDBCAT1";

/// How an image object is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoredKind {
    /// Conventional binary raster in the blob store.
    Binary,
    /// Sequence of editing operations referencing a base image.
    Edited,
}

/// Catalog payload for one image.
#[derive(Clone, Debug)]
pub enum CatalogEntry {
    /// A conventionally stored image: blob location, dimensions, and the
    /// exact histogram extracted at insert time (§3.1).
    Binary {
        /// Location of the PPM-encoded raster in the blob store.
        blob: BlobRef,
        /// Raster width.
        width: u32,
        /// Raster height.
        height: u32,
        /// Exact color histogram.
        histogram: Arc<ColorHistogram>,
    },
    /// An image stored as editing operations (§2).
    Edited {
        /// The stored sequence.
        sequence: Arc<EditSequence>,
    },
}

impl CatalogEntry {
    /// The storage kind of this entry.
    pub fn kind(&self) -> StoredKind {
        match self {
            CatalogEntry::Binary { .. } => StoredKind::Binary,
            CatalogEntry::Edited { .. } => StoredKind::Edited,
        }
    }
}

/// The in-memory catalog. Thread safety is provided by the engine's lock.
#[derive(Debug)]
pub struct Catalog {
    quantizer_desc: String,
    next_id: u64,
    entries: BTreeMap<ImageId, CatalogEntry>,
    /// base id → edited images derived from it (insertion order).
    children: HashMap<ImageId, Vec<ImageId>>,
}

impl Catalog {
    /// Creates an empty catalog recording the quantizer it was built with.
    pub fn new(quantizer_desc: String) -> Self {
        Catalog {
            quantizer_desc,
            next_id: 1,
            entries: BTreeMap::new(),
            children: HashMap::new(),
        }
    }

    /// The quantizer description recorded at creation.
    pub fn quantizer_desc(&self) -> &str {
        &self.quantizer_desc
    }

    /// Allocates a fresh image id.
    pub fn allocate_id(&mut self) -> ImageId {
        let id = ImageId::new(self.next_id);
        self.next_id += 1;
        id
    }

    /// Advances the allocator past an explicitly supplied id. WAL replay
    /// inserts records carrying the ids the original run allocated; this
    /// keeps post-recovery allocations from colliding with them (gaps from
    /// ids that were allocated but never acknowledged are fine).
    pub fn note_allocated(&mut self, id: ImageId) {
        self.next_id = self.next_id.max(id.raw() + 1);
    }

    /// Number of cataloged objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no object is cataloged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an entry under `id`.
    ///
    /// # Panics
    /// Panics when `id` is already cataloged (ids come from
    /// [`Catalog::allocate_id`], so a collision is an engine bug).
    pub fn insert(&mut self, id: ImageId, entry: CatalogEntry) {
        if let CatalogEntry::Edited { sequence } = &entry {
            self.children.entry(sequence.base).or_default().push(id);
        }
        let prev = self.entries.insert(id, entry);
        assert!(prev.is_none(), "duplicate catalog id {id}");
    }

    /// Looks up an entry.
    pub fn get(&self, id: ImageId) -> Option<&CatalogEntry> {
        self.entries.get(&id)
    }

    /// Removes an entry, unlinking provenance. Returns the removed payload.
    pub fn remove(&mut self, id: ImageId) -> Option<CatalogEntry> {
        let entry = self.entries.remove(&id)?;
        if let CatalogEntry::Edited { sequence } = &entry {
            if let Some(kids) = self.children.get_mut(&sequence.base) {
                kids.retain(|&k| k != id);
                if kids.is_empty() {
                    self.children.remove(&sequence.base);
                }
            }
        }
        Some(entry)
    }

    /// Edited images derived from `base` (the paper's x → op(x) connection).
    pub fn children_of(&self, base: ImageId) -> &[ImageId] {
        self.children.get(&base).map_or(&[], Vec::as_slice)
    }

    /// The base image of an edited image, or `None` for binary images and
    /// unknown ids.
    pub fn base_of(&self, id: ImageId) -> Option<ImageId> {
        match self.entries.get(&id)? {
            CatalogEntry::Edited { sequence } => Some(sequence.base),
            CatalogEntry::Binary { .. } => None,
        }
    }

    /// All ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = ImageId> + '_ {
        self.entries.keys().copied()
    }

    /// Iterates `(id, entry)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ImageId, &CatalogEntry)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Serializes the catalog plus the blob store's free list.
    pub fn encode(&self, free_list: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(1024 + self.entries.len() * 128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(self.quantizer_desc.len() as u16);
        buf.put_slice(self.quantizer_desc.as_bytes());
        buf.put_u64_le(self.next_id);
        buf.put_u32_le(free_list.len() as u32);
        for &(off, len) in free_list {
            buf.put_u64_le(off);
            buf.put_u64_le(len);
        }
        buf.put_u32_le(self.entries.len() as u32);
        for (id, entry) in &self.entries {
            buf.put_u64_le(id.raw());
            match entry {
                CatalogEntry::Binary {
                    blob,
                    width,
                    height,
                    histogram,
                } => {
                    buf.put_u8(0);
                    buf.put_u64_le(blob.offset);
                    buf.put_u64_le(blob.len);
                    buf.put_u32_le(*width);
                    buf.put_u32_le(*height);
                    buf.put_u32_le(histogram.bin_count() as u32);
                    for &c in histogram.counts() {
                        buf.put_u64_le(c);
                    }
                }
                CatalogEntry::Edited { sequence } => {
                    buf.put_u8(1);
                    let bytes = seq_codec::encode(sequence);
                    buf.put_u32_le(bytes.len() as u32);
                    buf.put_slice(&bytes);
                }
            }
        }
        buf.to_vec()
    }

    /// Deserializes a catalog, returning it along with the persisted blob
    /// free list.
    pub fn decode(mut bytes: &[u8]) -> Result<(Catalog, Vec<(u64, u64)>)> {
        fn need(buf: &[u8], n: usize, what: &str) -> Result<()> {
            if buf.remaining() < n {
                Err(StorageError::Corrupt(format!("truncated catalog: {what}")))
            } else {
                Ok(())
            }
        }
        need(bytes, 8, "magic")?;
        let mut magic = [0u8; 8];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StorageError::Corrupt(format!("bad magic {magic:?}")));
        }
        need(bytes, 2, "quantizer length")?;
        let qlen = bytes.get_u16_le() as usize;
        need(bytes, qlen, "quantizer description")?;
        let qdesc = String::from_utf8(bytes[..qlen].to_vec())
            .map_err(|_| StorageError::Corrupt("non-UTF8 quantizer description".into()))?;
        bytes.advance(qlen);
        need(bytes, 8 + 4, "header counters")?;
        let next_id = bytes.get_u64_le();
        let free_count = bytes.get_u32_le() as usize;
        need(bytes, free_count.saturating_mul(16), "free list")?;
        let mut free_list = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free_list.push((bytes.get_u64_le(), bytes.get_u64_le()));
        }
        need(bytes, 4, "entry count")?;
        let count = bytes.get_u32_le() as usize;
        let mut catalog = Catalog::new(qdesc);
        catalog.next_id = next_id;
        for _ in 0..count {
            need(bytes, 9, "entry header")?;
            let id = ImageId::new(bytes.get_u64_le());
            let tag = bytes.get_u8();
            let entry = match tag {
                0 => {
                    need(bytes, 8 + 8 + 4 + 4 + 4, "binary entry")?;
                    let blob = BlobRef {
                        offset: bytes.get_u64_le(),
                        len: bytes.get_u64_le(),
                    };
                    let width = bytes.get_u32_le();
                    let height = bytes.get_u32_le();
                    let bins = bytes.get_u32_le() as usize;
                    need(bytes, bins.saturating_mul(8), "histogram bins")?;
                    let mut counts = Vec::with_capacity(bins);
                    for _ in 0..bins {
                        counts.push(bytes.get_u64_le());
                    }
                    let total: u64 = counts.iter().sum();
                    if total != width as u64 * height as u64 {
                        return Err(StorageError::Corrupt(format!(
                            "histogram of {id} sums to {total}, expected {}",
                            width as u64 * height as u64
                        )));
                    }
                    CatalogEntry::Binary {
                        blob,
                        width,
                        height,
                        histogram: Arc::new(ColorHistogram::from_counts(counts, total)),
                    }
                }
                1 => {
                    need(bytes, 4, "sequence length")?;
                    let len = bytes.get_u32_le() as usize;
                    need(bytes, len, "sequence bytes")?;
                    let seq = seq_codec::decode(&bytes[..len]).map_err(|e| {
                        StorageError::Corrupt(format!("bad edit sequence for {id}: {e}"))
                    })?;
                    bytes.advance(len);
                    CatalogEntry::Edited {
                        sequence: Arc::new(seq),
                    }
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unknown entry tag {other} for {id}"
                    )))
                }
            };
            catalog.insert(id, entry);
        }
        Ok((catalog, free_list))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::{Quantizer, RgbQuantizer};
    use mmdb_imaging::{RasterImage, Rgb};

    fn binary_entry(img: &RasterImage, off: u64) -> CatalogEntry {
        let q = RgbQuantizer::default_64();
        CatalogEntry::Binary {
            blob: BlobRef {
                offset: off,
                len: 10,
            },
            width: img.width(),
            height: img.height(),
            histogram: Arc::new(ColorHistogram::extract(img, &q)),
        }
    }

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new(RgbQuantizer::default_64().describe());
        let img = RasterImage::filled(4, 4, Rgb::RED).unwrap();
        let b1 = c.allocate_id();
        c.insert(b1, binary_entry(&img, 0));
        let b2 = c.allocate_id();
        c.insert(b2, binary_entry(&img, 100));
        let e1 = c.allocate_id();
        c.insert(
            e1,
            CatalogEntry::Edited {
                sequence: Arc::new(
                    EditSequence::builder(b1)
                        .modify(Rgb::RED, Rgb::BLUE)
                        .build(),
                ),
            },
        );
        let e2 = c.allocate_id();
        c.insert(
            e2,
            CatalogEntry::Edited {
                sequence: Arc::new(EditSequence::builder(b1).blur().build()),
            },
        );
        c
    }

    #[test]
    fn ids_are_sequential_and_children_tracked() {
        let c = sample_catalog();
        assert_eq!(c.len(), 4);
        let b1 = ImageId::new(1);
        assert_eq!(c.children_of(b1), &[ImageId::new(3), ImageId::new(4)]);
        assert_eq!(c.children_of(ImageId::new(2)), &[] as &[ImageId]);
        assert_eq!(c.base_of(ImageId::new(3)), Some(b1));
        assert_eq!(c.base_of(b1), None);
        assert_eq!(c.base_of(ImageId::new(99)), None);
    }

    #[test]
    fn remove_unlinks_children() {
        let mut c = sample_catalog();
        assert!(c.remove(ImageId::new(3)).is_some());
        assert_eq!(c.children_of(ImageId::new(1)), &[ImageId::new(4)]);
        assert!(c.remove(ImageId::new(3)).is_none());
        assert!(c.remove(ImageId::new(4)).is_some());
        assert!(c.children_of(ImageId::new(1)).is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = sample_catalog();
        let free = vec![(64, 32), (256, 128)];
        let bytes = c.encode(&free);
        let (c2, free2) = Catalog::decode(&bytes).unwrap();
        assert_eq!(free2, free);
        assert_eq!(c2.quantizer_desc(), c.quantizer_desc());
        assert_eq!(c2.len(), c.len());
        assert_eq!(
            c2.children_of(ImageId::new(1)),
            c.children_of(ImageId::new(1))
        );
        // Allocation continues after the persisted next_id.
        let mut c2 = c2;
        assert_eq!(c2.allocate_id(), ImageId::new(5));
        // Entries compare structurally.
        match (
            c2.get(ImageId::new(1)).unwrap(),
            c.get(ImageId::new(1)).unwrap(),
        ) {
            (
                CatalogEntry::Binary {
                    blob: b2,
                    histogram: h2,
                    ..
                },
                CatalogEntry::Binary {
                    blob: b1,
                    histogram: h1,
                    ..
                },
            ) => {
                assert_eq!(b1, b2);
                assert_eq!(h1.counts(), h2.counts());
            }
            _ => panic!("entry 1 should be binary"),
        }
        match c2.get(ImageId::new(3)).unwrap() {
            CatalogEntry::Edited { sequence } => {
                assert_eq!(sequence.base, ImageId::new(1));
                assert_eq!(sequence.len(), 1);
            }
            _ => panic!("entry 3 should be edited"),
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let c = sample_catalog();
        let bytes = c.encode(&[]);
        assert!(Catalog::decode(&bytes[..4]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Catalog::decode(&bad).is_err());
        for cut in (1..bytes.len()).step_by(7) {
            assert!(Catalog::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_rejects_inconsistent_histogram() {
        let c = sample_catalog();
        let mut bytes = c.encode(&[]);
        // Find the first histogram count (entry 1 is binary): corrupt one
        // count so the sum no longer matches width*height. The layout is
        // deterministic; flip a byte late in the first binary entry.
        // Safer approach: decode-encode to find offset is overkill — instead
        // bump the declared width of entry 1.
        // Offset: magic(8)+qlen(2)+desc+next(8)+freecount(4)+entrycount(4)+id(8)+tag(1)+blob(16) → width.
        let qlen = c.quantizer_desc().len();
        let width_off = 8 + 2 + qlen + 8 + 4 + 4 + 8 + 1 + 16;
        bytes[width_off] = bytes[width_off].wrapping_add(1);
        assert!(matches!(
            Catalog::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate catalog id")]
    fn duplicate_insert_panics() {
        let mut c = sample_catalog();
        let img = RasterImage::filled(2, 2, Rgb::BLUE).unwrap();
        c.insert(ImageId::new(1), binary_entry(&img, 0));
    }

    #[test]
    fn empty_catalog_roundtrip() {
        let c = Catalog::new("rgb-uniform/4".into());
        let (c2, free) = Catalog::decode(&c.encode(&[])).unwrap();
        assert!(c2.is_empty());
        assert!(free.is_empty());
    }
}

#![warn(missing_docs)]

//! # mmdb-storage
//!
//! The MMDBMS storage substrate the paper assumes: a catalog of image
//! objects where each object is stored either **conventionally** (a binary
//! raster, kept as PPM in a paged blob file, with its exact color histogram
//! extracted at insert time) or **as a sequence of editing operations**
//! referencing a base image (§2: "an image stored as a set of editing
//! operations will consume much less space than the same image stored in a
//! conventional binary format").
//!
//! Components:
//!
//! * [`BlobStore`] — an append-friendly blob file with a first-fit free list
//!   (file-backed or in-memory),
//! * [`LruCache`] — an O(1) LRU used to cache decoded/instantiated rasters,
//! * [`Catalog`] — object metadata, histograms for binary images, edit
//!   sequences for derived images, and the base↔derived provenance links the
//!   paper relies on ("as long as the MMDBMS maintains a connection between
//!   images x and op(x)"),
//! * [`StorageEngine`] — the public facade tying them together; it
//!   implements `mmdb_editops::ImageResolver` (so edit sequences can be
//!   instantiated against it) and `mmdb_rules::InfoResolver` (so the RBM/BWM
//!   query paths can fetch base/target histograms without touching pixels).

pub mod blobstore;
pub mod catalog;
pub mod durability;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod lru;

pub use blobstore::{BlobRef, BlobStore};
pub use catalog::{Catalog, CatalogEntry, StoredKind};
pub use durability::{blob_file_name, DurabilityOptions, RecoveryInfo, WalRecord};
pub use engine::{StorageEngine, StorageStats};
pub use epoch::MutationEpoch;
pub use error::StorageError;
pub use lru::LruCache;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the full storage schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_storage_blob_writes_total",
        "mmdb_storage_blob_write_bytes_total",
        "mmdb_storage_edited_inserts_total",
        "mmdb_storage_cache_hits_total",
        "mmdb_storage_cache_misses_total",
        "mmdb_storage_blob_reads_total",
        "mmdb_storage_blob_read_bytes_total",
        "mmdb_storage_instantiations_total",
        "mmdb_storage_cache_evictions_total",
        r#"mmdb_storage_ingest_total{result="accepted"}"#,
        r#"mmdb_storage_ingest_total{result="rejected"}"#,
    ] {
        let _ = g.counter(name);
    }
    let _ = g.histogram("mmdb_storage_instantiation_latency_seconds");
    let _ = g.histogram("mmdb_storage_ingest_latency_seconds");
}

#![warn(missing_docs)]

//! # mmdb-storage
//!
//! The MMDBMS storage substrate the paper assumes: a catalog of image
//! objects where each object is stored either **conventionally** (a binary
//! raster, kept as PPM in a paged blob file, with its exact color histogram
//! extracted at insert time) or **as a sequence of editing operations**
//! referencing a base image (§2: "an image stored as a set of editing
//! operations will consume much less space than the same image stored in a
//! conventional binary format").
//!
//! Components:
//!
//! * [`BlobStore`] — an append-friendly blob file with a first-fit free list
//!   (file-backed or in-memory),
//! * [`LruCache`] — an O(1) LRU used to cache decoded/instantiated rasters,
//! * [`Catalog`] — object metadata, histograms for binary images, edit
//!   sequences for derived images, and the base↔derived provenance links the
//!   paper relies on ("as long as the MMDBMS maintains a connection between
//!   images x and op(x)"),
//! * [`StorageEngine`] — the public facade tying them together; it
//!   implements `mmdb_editops::ImageResolver` (so edit sequences can be
//!   instantiated against it) and `mmdb_rules::InfoResolver` (so the RBM/BWM
//!   query paths can fetch base/target histograms without touching pixels).

pub mod blobstore;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod lru;

pub use blobstore::{BlobRef, BlobStore};
pub use catalog::{Catalog, CatalogEntry, StoredKind};
pub use engine::{StorageEngine, StorageStats};
pub use error::StorageError;
pub use lru::LruCache;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

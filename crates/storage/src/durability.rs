//! Durable wiring between the engine and `mmdb-durable`: the WAL record
//! codec for catalog mutations, blob-file generation naming, and the replay
//! applier recovery uses.
//!
//! Every acknowledged mutation is exactly one WAL record, appended under
//! the exclusive catalog lock *before* the in-memory apply. Records are
//! self-contained — `InsertBinary` carries the PPM bytes themselves, not a
//! blob offset — so replay needs nothing but the snapshot it starts from:
//! blob bytes that never reached disk before a crash are simply rewritten
//! from the log. (The paper's storage model keeps this cheap: edited images
//! dominate the catalog and their records are a few hundred bytes; full
//! rasters are only logged on the rare binary ingest, and a snapshot plus
//! segment GC reclaims them.)

use crate::blobstore::BlobStore;
use crate::catalog::{Catalog, CatalogEntry};
use crate::error::StorageError;
use crate::Result;
use bytes::{Buf, BufMut, BytesMut};
use mmdb_durable::{DurableError, FsyncPolicy};
use mmdb_editops::{codec as seq_codec, EditSequence, ImageId};
use mmdb_histogram::{ColorHistogram, Quantizer};
use mmdb_imaging::ppm;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Tuning for the durable layer of an on-disk engine.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// Group-commit fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Background snapshot cadence: snapshot once this many records have
    /// accumulated since the last one (checked by `maintenance_tick`).
    pub snapshot_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::default(),
            segment_bytes: 4 << 20,
            snapshot_every: 4096,
        }
    }
}

/// What recovery found and did when the engine opened a data dir.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// Sequence number the loaded snapshot covered.
    pub snapshot_seqno: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes of torn final record truncated from the active segment.
    pub torn_bytes: u64,
    /// Wall-clock time from open to ready.
    pub duration: Duration,
}

/// Folds a durable-layer error into the storage error type.
pub(crate) fn map_durable(e: DurableError) -> StorageError {
    match e {
        DurableError::Io(e) => StorageError::Io(e),
        other => StorageError::Corrupt(other.to_string()),
    }
}

/// Blob file name of generation `gen`. Generation 0 keeps the legacy name
/// so pre-durability directories migrate without a blob-file rename.
pub fn blob_file_name(gen: u64) -> String {
    if gen == 0 {
        "blobs.mmdb".to_string()
    } else {
        format!("blobs-{gen}.mmdb")
    }
}

/// Inverse of [`blob_file_name`].
pub(crate) fn parse_blob_file_name(name: &str) -> Option<u64> {
    if name == "blobs.mmdb" {
        return Some(0);
    }
    name.strip_prefix("blobs-")?
        .strip_suffix(".mmdb")?
        .parse()
        .ok()
}

const TAG_INSERT_BINARY: u8 = 1;
const TAG_INSERT_EDITED: u8 = 2;
const TAG_DELETE: u8 = 3;

/// One logged catalog mutation, borrowing the caller's buffers.
#[derive(Debug)]
pub enum WalRecord<'a> {
    /// A conventionally stored image: the encoded PPM raster itself.
    InsertBinary {
        /// Id the engine allocated for it.
        id: ImageId,
        /// Raster width.
        width: u32,
        /// Raster height.
        height: u32,
        /// PPM-encoded raster bytes (what the blob store holds).
        ppm: &'a [u8],
    },
    /// An image stored as a sequence of editing operations.
    InsertEdited {
        /// Id the engine allocated for it.
        id: ImageId,
        /// The validated sequence.
        sequence: &'a EditSequence,
    },
    /// Removal of an object.
    Delete {
        /// The deleted id.
        id: ImageId,
    },
}

impl WalRecord<'_> {
    /// Serializes the record for a WAL append.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            WalRecord::InsertBinary {
                id,
                width,
                height,
                ppm,
            } => {
                buf.put_u8(TAG_INSERT_BINARY);
                buf.put_u64_le(id.raw());
                buf.put_u32_le(*width);
                buf.put_u32_le(*height);
                buf.put_u32_le(ppm.len() as u32);
                buf.put_slice(ppm);
            }
            WalRecord::InsertEdited { id, sequence } => {
                buf.put_u8(TAG_INSERT_EDITED);
                buf.put_u64_le(id.raw());
                let bytes = seq_codec::encode(sequence);
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(&bytes);
            }
            WalRecord::Delete { id } => {
                buf.put_u8(TAG_DELETE);
                buf.put_u64_le(id.raw());
            }
        }
        buf.to_vec()
    }
}

/// A decoded WAL record (owning its payloads).
#[derive(Debug)]
pub enum OwnedWalRecord {
    /// See [`WalRecord::InsertBinary`].
    InsertBinary {
        /// Allocated id.
        id: ImageId,
        /// Raster width.
        width: u32,
        /// Raster height.
        height: u32,
        /// PPM-encoded raster bytes.
        ppm: Vec<u8>,
    },
    /// See [`WalRecord::InsertEdited`].
    InsertEdited {
        /// Allocated id.
        id: ImageId,
        /// The stored sequence.
        sequence: EditSequence,
    },
    /// See [`WalRecord::Delete`].
    Delete {
        /// The deleted id.
        id: ImageId,
    },
}

/// Parses one WAL record payload.
pub fn decode_record(mut bytes: &[u8]) -> Result<OwnedWalRecord> {
    fn need(buf: &[u8], n: usize, what: &str) -> Result<()> {
        if buf.remaining() < n {
            Err(StorageError::Corrupt(format!(
                "truncated WAL record: {what}"
            )))
        } else {
            Ok(())
        }
    }
    need(bytes, 1, "tag")?;
    let tag = bytes.get_u8();
    match tag {
        TAG_INSERT_BINARY => {
            need(bytes, 8 + 4 + 4 + 4, "insert-binary header")?;
            let id = ImageId::new(bytes.get_u64_le());
            let width = bytes.get_u32_le();
            let height = bytes.get_u32_le();
            let len = bytes.get_u32_le() as usize;
            need(bytes, len, "ppm bytes")?;
            Ok(OwnedWalRecord::InsertBinary {
                id,
                width,
                height,
                ppm: bytes[..len].to_vec(),
            })
        }
        TAG_INSERT_EDITED => {
            need(bytes, 8 + 4, "insert-edited header")?;
            let id = ImageId::new(bytes.get_u64_le());
            let len = bytes.get_u32_le() as usize;
            need(bytes, len, "sequence bytes")?;
            let sequence = seq_codec::decode(&bytes[..len]).map_err(|e| {
                StorageError::Corrupt(format!("bad edit sequence in WAL record for {id}: {e}"))
            })?;
            Ok(OwnedWalRecord::InsertEdited { id, sequence })
        }
        TAG_DELETE => {
            need(bytes, 8, "delete id")?;
            Ok(OwnedWalRecord::Delete {
                id: ImageId::new(bytes.get_u64_le()),
            })
        }
        other => Err(StorageError::Corrupt(format!(
            "unknown WAL record tag {other}"
        ))),
    }
}

/// Applies one replayed record to the recovering catalog + blob store.
///
/// Replay rebuilds exactly what the original run did: blob bytes come from
/// the record itself, histograms are re-extracted (extraction is
/// deterministic), and the id allocator is advanced past every replayed id.
pub(crate) fn apply_record(
    catalog: &mut Catalog,
    blobs: &mut BlobStore,
    quantizer: &dyn Quantizer,
    seqno: u64,
    payload: &[u8],
) -> Result<()> {
    let dup = |id: ImageId| {
        StorageError::Corrupt(format!("WAL record {seqno} re-inserts existing id {id}"))
    };
    match decode_record(payload)? {
        OwnedWalRecord::InsertBinary {
            id,
            width,
            height,
            ppm,
        } => {
            if catalog.get(id).is_some() {
                return Err(dup(id));
            }
            let raster = ppm::decode(&ppm)?;
            if (raster.width(), raster.height()) != (width, height) {
                return Err(StorageError::Corrupt(format!(
                    "WAL record {seqno}: {id} logged as {width}x{height} but its \
                     raster decodes to {}x{}",
                    raster.width(),
                    raster.height()
                )));
            }
            let histogram = Arc::new(ColorHistogram::extract(&raster, quantizer));
            let blob = blobs.put(&ppm)?;
            catalog.note_allocated(id);
            catalog.insert(
                id,
                CatalogEntry::Binary {
                    blob,
                    width,
                    height,
                    histogram,
                },
            );
        }
        OwnedWalRecord::InsertEdited { id, sequence } => {
            if catalog.get(id).is_some() {
                return Err(dup(id));
            }
            catalog.note_allocated(id);
            catalog.insert(
                id,
                CatalogEntry::Edited {
                    sequence: Arc::new(sequence),
                },
            );
        }
        OwnedWalRecord::Delete { id } => match catalog.remove(id) {
            None => {
                return Err(StorageError::Corrupt(format!(
                    "WAL record {seqno} deletes unknown id {id}"
                )))
            }
            Some(CatalogEntry::Binary { blob, .. }) => blobs.delete(blob),
            Some(CatalogEntry::Edited { .. }) => {}
        },
    }
    Ok(())
}

/// Removes blob generation files no retained snapshot references — debris
/// of crashed compactions and generations all retained snapshots have moved
/// past. `current_gen` (the generation the open engine writes to) is always
/// kept.
pub(crate) fn gc_blob_generations(
    dir: &Path,
    snaps: &mmdb_durable::SnapshotStore,
    current_gen: u64,
) -> Result<()> {
    let mut keep = vec![current_gen];
    for (path, _) in snaps.list().map_err(map_durable)? {
        if let Ok(info) = mmdb_durable::snapshot::read_info(&path) {
            keep.push(info.blob_gen);
        }
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = parse_blob_file_name(name) {
            if !keep.contains(&gen) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_imaging::ppm::PnmFormat;
    use mmdb_imaging::{RasterImage, Rgb};

    #[test]
    fn blob_generation_names() {
        assert_eq!(blob_file_name(0), "blobs.mmdb");
        assert_eq!(blob_file_name(3), "blobs-3.mmdb");
        assert_eq!(parse_blob_file_name("blobs.mmdb"), Some(0));
        assert_eq!(parse_blob_file_name("blobs-17.mmdb"), Some(17));
        assert_eq!(parse_blob_file_name("blobs.mmdb.compact"), None);
        assert_eq!(parse_blob_file_name("catalog.mmdb"), None);
    }

    #[test]
    fn record_roundtrips() {
        let img = RasterImage::filled(4, 3, Rgb::RED).unwrap();
        let ppm = ppm::encode(&img, PnmFormat::RawRgb);
        let rec = WalRecord::InsertBinary {
            id: ImageId::new(7),
            width: 4,
            height: 3,
            ppm: &ppm,
        };
        match decode_record(&rec.encode()).unwrap() {
            OwnedWalRecord::InsertBinary {
                id,
                width,
                height,
                ppm: back,
            } => {
                assert_eq!((id, width, height), (ImageId::new(7), 4, 3));
                assert_eq!(back, ppm);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let seq = EditSequence::builder(ImageId::new(7))
            .modify(Rgb::RED, Rgb::BLUE)
            .build();
        let rec = WalRecord::InsertEdited {
            id: ImageId::new(8),
            sequence: &seq,
        };
        match decode_record(&rec.encode()).unwrap() {
            OwnedWalRecord::InsertEdited { id, sequence } => {
                assert_eq!(id, ImageId::new(8));
                assert_eq!(sequence.base, ImageId::new(7));
                assert_eq!(sequence.len(), 1);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let rec = WalRecord::Delete {
            id: ImageId::new(9),
        };
        match decode_record(&rec.encode()).unwrap() {
            OwnedWalRecord::Delete { id } => assert_eq!(id, ImageId::new(9)),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_unknown_records_rejected() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err());
        let rec = WalRecord::Delete {
            id: ImageId::new(1),
        }
        .encode();
        assert!(decode_record(&rec[..rec.len() - 1]).is_err());
    }
}

//! The blob store: large binary objects (PPM-encoded rasters) in a single
//! data file with a first-fit free list.
//!
//! Binary images "are typically much larger than traditional alphanumeric
//! data elements" (§1); they live here, while the tiny edit sequences live
//! inline in the catalog.

use crate::error::StorageError;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A reference to a stored blob: byte offset and length in the data file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlobRef {
    /// Byte offset of the blob's first byte.
    pub offset: u64,
    /// Blob length in bytes.
    pub len: u64,
}

/// Backing medium: a real file or an in-memory buffer (for tests and
/// benchmarks that should not touch disk).
enum Backend {
    File(File),
    Memory(Vec<u8>),
}

/// An append-friendly blob store with hole reuse.
///
/// Allocation is first-fit over the free list; freeing coalesces adjacent
/// holes. The free list itself is not persisted here — the catalog snapshots
/// it alongside the object table so a reopened store resumes with the same
/// layout.
pub struct BlobStore {
    backend: Backend,
    end: u64,
    /// Sorted, pairwise-disjoint, non-adjacent holes `(offset, len)`.
    free: Vec<(u64, u64)>,
}

impl BlobStore {
    /// Opens (creating if absent) a file-backed store.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let end = file.metadata()?.len();
        Ok(BlobStore {
            backend: Backend::File(file),
            end,
            free: Vec::new(),
        })
    }

    /// Creates an in-memory store.
    pub fn in_memory() -> Self {
        BlobStore {
            backend: Backend::Memory(Vec::new()),
            end: 0,
            free: Vec::new(),
        }
    }

    /// Total file size in bytes (including holes).
    pub fn file_size(&self) -> u64 {
        self.end
    }

    /// Total bytes currently sitting in freed holes.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// Restores the free list (called by the catalog on open).
    ///
    /// # Panics
    /// Panics when the supplied holes are unsorted or overlapping.
    pub fn restore_free_list(&mut self, holes: Vec<(u64, u64)>) {
        for w in holes.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "free list must be sorted and disjoint"
            );
        }
        self.free = holes;
    }

    /// The current free list snapshot (sorted, disjoint).
    pub fn free_list(&self) -> &[(u64, u64)] {
        &self.free
    }

    /// Writes `data`, reusing a hole when possible, and returns its ref.
    pub fn put(&mut self, data: &[u8]) -> Result<BlobRef> {
        let len = data.len() as u64;
        let offset = self.allocate(len);
        self.write_at(offset, data)?;
        Ok(BlobRef { offset, len })
    }

    /// Reads the blob at `r`.
    pub fn get(&self, r: BlobRef) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; r.len as usize];
        match &self.backend {
            Backend::File(f) => {
                f.read_exact_at(&mut buf, r.offset).map_err(|e| {
                    StorageError::Corrupt(format!(
                        "blob read at {}+{} failed: {e}",
                        r.offset, r.len
                    ))
                })?;
            }
            Backend::Memory(m) => {
                let end = (r.offset + r.len) as usize;
                if end > m.len() {
                    return Err(StorageError::Corrupt(format!(
                        "blob ref {}+{} beyond store end {}",
                        r.offset,
                        r.len,
                        m.len()
                    )));
                }
                buf.copy_from_slice(&m[r.offset as usize..end]);
            }
        }
        Ok(buf)
    }

    /// Returns the blob's bytes to the free list (the data is not scrubbed).
    pub fn delete(&mut self, r: BlobRef) {
        if r.len == 0 {
            return;
        }
        // Insert the hole in sorted position, then coalesce neighbours.
        let pos = self.free.partition_point(|&(off, _)| off < r.offset);
        self.free.insert(pos, (r.offset, r.len));
        // Coalesce with successor first (indices stay valid).
        if pos + 1 < self.free.len() {
            let (off, len) = self.free[pos];
            let (noff, nlen) = self.free[pos + 1];
            if off + len == noff {
                self.free[pos] = (off, len + nlen);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (poff, plen) = self.free[pos - 1];
            let (off, len) = self.free[pos];
            if poff + plen == off {
                self.free[pos - 1] = (poff, plen + len);
                self.free.remove(pos);
            }
        }
        // Trim a trailing hole, shrinking the logical end.
        if let Some(&(off, len)) = self.free.last() {
            if off + len == self.end {
                self.end = off;
                self.free.pop();
            }
        }
    }

    /// Flushes file-backed data to stable storage.
    pub fn sync(&self) -> Result<()> {
        if let Backend::File(f) = &self.backend {
            f.sync_data()?;
        }
        Ok(())
    }

    fn allocate(&mut self, len: u64) -> u64 {
        // First fit.
        for i in 0..self.free.len() {
            let (off, hole) = self.free[i];
            if hole >= len {
                if hole == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + len, hole - len);
                }
                return off;
            }
        }
        let off = self.end;
        self.end += len;
        off
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        match &mut self.backend {
            Backend::File(f) => f.write_all_at(data, offset)?,
            Backend::Memory(m) => {
                let end = offset as usize + data.len();
                if m.len() < end {
                    m.resize(end, 0);
                }
                m[offset as usize..end].copy_from_slice(data);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &mut BlobStore) {
        let a = store.put(b"hello").unwrap();
        let b = store.put(b"world!!").unwrap();
        assert_eq!(store.get(a).unwrap(), b"hello");
        assert_eq!(store.get(b).unwrap(), b"world!!");
        assert_eq!(a.len, 5);
        assert_eq!(b.offset, 5);
    }

    #[test]
    fn memory_roundtrip() {
        let mut s = BlobStore::in_memory();
        roundtrip(&mut s);
    }

    #[test]
    fn file_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb_blob_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blobs.dat");
        let r = {
            let mut s = BlobStore::open(&path).unwrap();
            let r = s.put(b"persistent").unwrap();
            s.sync().unwrap();
            r
        };
        let s = BlobStore::open(&path).unwrap();
        assert_eq!(s.get(r).unwrap(), b"persistent");
        assert_eq!(s.file_size(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hole_reuse_first_fit() {
        let mut s = BlobStore::in_memory();
        let a = s.put(&[1u8; 100]).unwrap();
        let b = s.put(&[2u8; 50]).unwrap();
        let _c = s.put(&[3u8; 30]).unwrap();
        s.delete(a);
        assert_eq!(s.free_bytes(), 100);
        // A 40-byte blob fits in the 100-byte hole at offset 0.
        let d = s.put(&[4u8; 40]).unwrap();
        assert_eq!(d.offset, 0);
        assert_eq!(s.free_bytes(), 60);
        // The remainder of the hole starts at 40.
        let e = s.put(&[5u8; 60]).unwrap();
        assert_eq!(e.offset, 40);
        assert_eq!(s.free_bytes(), 0);
        // Untouched blobs unaffected.
        assert_eq!(s.get(b).unwrap(), vec![2u8; 50]);
    }

    #[test]
    fn delete_coalesces_adjacent_holes() {
        let mut s = BlobStore::in_memory();
        let a = s.put(&[0u8; 10]).unwrap();
        let b = s.put(&[0u8; 10]).unwrap();
        let c = s.put(&[0u8; 10]).unwrap();
        let _d = s.put(&[0u8; 10]).unwrap();
        s.delete(a);
        s.delete(c);
        assert_eq!(s.free_list().len(), 2);
        s.delete(b); // bridges a and c
        assert_eq!(s.free_list().len(), 1);
        assert_eq!(s.free_list()[0], (0, 30));
    }

    #[test]
    fn trailing_hole_shrinks_file() {
        let mut s = BlobStore::in_memory();
        let _a = s.put(&[0u8; 10]).unwrap();
        let b = s.put(&[0u8; 20]).unwrap();
        assert_eq!(s.file_size(), 30);
        s.delete(b);
        assert_eq!(s.file_size(), 10);
        assert_eq!(s.free_bytes(), 0);
    }

    #[test]
    fn free_list_snapshot_restore() {
        let mut s = BlobStore::in_memory();
        let a = s.put(&[0u8; 10]).unwrap();
        let _b = s.put(&[0u8; 10]).unwrap();
        s.delete(a);
        let snapshot = s.free_list().to_vec();
        let mut s2 = BlobStore::in_memory();
        s2.put(&[9u8; 20]).unwrap();
        s2.restore_free_list(snapshot.clone());
        assert_eq!(s2.free_list(), snapshot.as_slice());
        // Allocation honours the restored hole.
        let c = s2.put(&[1u8; 8]).unwrap();
        assert_eq!(c.offset, 0);
    }

    #[test]
    fn out_of_range_read_is_corrupt_error() {
        let s = BlobStore::in_memory();
        let err = s
            .get(BlobRef {
                offset: 100,
                len: 10,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn empty_blob() {
        let mut s = BlobStore::in_memory();
        let r = s.put(b"").unwrap();
        assert_eq!(s.get(r).unwrap(), Vec::<u8>::new());
        s.delete(r); // no-op, must not corrupt the free list
        assert_eq!(s.free_bytes(), 0);
    }
}

//! An O(1) LRU cache with entry-count and byte budgets.
//!
//! Used to cache decoded binary rasters and instantiated edited images —
//! instantiation is "an expensive process in terms of execution time" (§3),
//! so the engine avoids repeating it.

use std::collections::HashMap;
use std::hash::Hash;

/// Index into the node arena.
type Idx = usize;
const NIL: Idx = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    bytes: usize,
    prev: Idx,
    next: Idx,
}

/// A least-recently-used cache with O(1) get/insert/evict.
///
/// Eviction triggers when either the entry count exceeds `max_entries` or
/// the accumulated `bytes` weight exceeds `max_bytes`. A single entry larger
/// than the byte budget is still admitted (and evicts everything else) — the
/// cache never refuses its most recent insertion.
pub struct LruCache<K, V> {
    map: HashMap<K, Idx>,
    nodes: Vec<Node<K, V>>,
    free: Vec<Idx>,
    head: Idx, // most recently used
    tail: Idx, // least recently used
    max_entries: usize,
    max_bytes: usize,
    cur_bytes: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache bounded by `max_entries` entries and `max_bytes`
    /// total weight.
    ///
    /// # Panics
    /// Panics when `max_entries` is zero.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        assert!(max_entries > 0, "cache must admit at least one entry");
        LruCache {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            max_entries,
            max_bytes,
            cur_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current byte weight.
    pub fn bytes(&self) -> usize {
        self.cur_bytes
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.touch(idx);
                Some(&self.nodes[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True when `key` is cached (does not update recency or counters).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `value` with weight `bytes`, evicting LRU entries as needed.
    /// Replaces (and re-weighs) an existing entry for the same key. Returns
    /// how many entries were evicted to make room, so callers can account
    /// for cache pressure.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> usize {
        if let Some(&idx) = self.map.get(&key) {
            self.cur_bytes = self.cur_bytes - self.nodes[idx].bytes + bytes;
            self.nodes[idx].value = value;
            self.nodes[idx].bytes = bytes;
            self.touch(idx);
        } else {
            let idx = self.alloc(key.clone(), value, bytes);
            self.map.insert(key, idx);
            self.push_front(idx);
            self.cur_bytes += bytes;
        }
        self.evict_overflow()
    }

    /// Invalidates `key` if cached. The arena slot is recycled on the next
    /// insertion (the stale value is dropped at that point — a deliberate
    /// trade that keeps the arena `Option`-free).
    pub fn invalidate(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.cur_bytes -= self.nodes[idx].bytes;
        self.free.push(idx);
        true
    }

    fn alloc(&mut self, key: K, value: V, bytes: usize) -> Idx {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                value,
                bytes,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                value,
                bytes,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn touch(&mut self, idx: Idx) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn push_front(&mut self, idx: Idx) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: Idx) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn evict_overflow(&mut self) -> usize {
        let mut evicted = 0;
        while self.map.len() > self.max_entries
            || (self.cur_bytes > self.max_bytes && self.map.len() > 1)
        {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.cur_bytes -= self.nodes[victim].bytes;
            let key = self.nodes[victim].key.clone();
            self.map.remove(&key);
            self.free.push(victim);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.cur_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_insert() {
        let mut c: LruCache<u32, String> = LruCache::new(10, usize::MAX);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 3);
        assert_eq!(c.get(&1).map(String::as_str), Some("one"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 3);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used_by_count() {
        let mut c: LruCache<u32, u32> = LruCache::new(3, usize::MAX);
        assert_eq!(c.insert(1, 10, 0), 0);
        assert_eq!(c.insert(2, 20, 0), 0);
        assert_eq!(c.insert(3, 30, 0), 0);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&1).is_some());
        assert_eq!(c.insert(4, 40, 0), 1);
        assert!(c.contains(&1));
        assert!(!c.contains(&2), "2 should have been evicted");
        assert!(c.contains(&3));
        assert!(c.contains(&4));
    }

    #[test]
    fn evicts_by_byte_budget() {
        let mut c: LruCache<u32, Vec<u8>> = LruCache::new(100, 10);
        c.insert(1, vec![0; 4], 4);
        c.insert(2, vec![0; 4], 4);
        c.insert(3, vec![0; 4], 4); // 12 bytes > 10, evict key 1
        assert!(!c.contains(&1));
        assert!(c.contains(&2) && c.contains(&3));
        assert_eq!(c.bytes(), 8);
    }

    #[test]
    fn oversized_entry_still_admitted() {
        let mut c: LruCache<u32, u8> = LruCache::new(10, 5);
        c.insert(1, 0, 3);
        // Over budget but must stay (last inserted); the other entry goes.
        assert_eq!(c.insert(2, 0, 100), 1);
        assert!(c.contains(&2));
        assert!(!c.contains(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_updates_weight() {
        let mut c: LruCache<u32, u8> = LruCache::new(10, 100);
        c.insert(1, 0, 30);
        c.insert(1, 1, 50);
        assert_eq!(c.bytes(), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&1));
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, usize::MAX);
        for i in 0..100 {
            c.insert(i, i, 0);
        }
        assert_eq!(c.len(), 2);
        // Arena should not have grown unboundedly.
        assert!(c.nodes.len() <= 3, "arena size {}", c.nodes.len());
        assert!(c.contains(&99));
        assert!(c.contains(&98));
    }

    #[test]
    fn clear_resets() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        c.insert(3, 3, 10);
        assert!(c.contains(&3));
    }

    #[test]
    fn heavy_interleaving_consistency() {
        let mut c: LruCache<u64, u64> = LruCache::new(16, 1 << 10);
        let mut seed = 9u64;
        for step in 0..10_000u64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (seed >> 33) % 40;
            if seed.is_multiple_of(3) {
                let _ = c.get(&k);
            } else {
                c.insert(k, step, (seed % 100) as usize);
            }
            assert!(c.len() <= 16);
            assert!(c.bytes() <= 1 << 10 || c.len() == 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        LruCache::<u8, u8>::new(0, 10);
    }

    #[test]
    fn invalidate_removes_and_recycles() {
        let mut c: LruCache<u32, u32> = LruCache::new(8, 100);
        c.insert(1, 11, 10);
        c.insert(2, 22, 10);
        assert!(c.invalidate(&1));
        assert!(!c.invalidate(&1), "second invalidate is a no-op");
        assert!(!c.contains(&1));
        assert_eq!(c.bytes(), 10);
        // Freed slot is reused.
        let arena_before = c.nodes.len();
        c.insert(3, 33, 10);
        assert_eq!(c.nodes.len(), arena_before);
        assert_eq!(c.get(&3), Some(&33));
        assert_eq!(c.get(&2), Some(&22));
    }
}

//! The query processor: Instantiate / RBM / BWM execution over a storage
//! engine.

use crate::plan::QueryPlan;
use mmdb_boundidx::{BoundIndex, SyncStats};
use mmdb_bwm::{BoundsCache, BwmQueryStats, BwmStructure, QueryOutcome};
use mmdb_editops::ImageId;
use mmdb_rules::{ColorRangeQuery, InfoResolver, RuleEngine, RuleError, RuleProfile};
use mmdb_storage::{StorageEngine, StorageError};
use mmdb_telemetry::{counter, histogram, EventKind, QueryTrace};
use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from query execution.
#[derive(Debug)]
pub enum QueryError {
    /// Bound computation failed.
    Rule(RuleError),
    /// Storage access failed.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Rule(e) => write!(f, "rule error: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Rule(e) => Some(e),
            QueryError::Storage(e) => Some(e),
        }
    }
}

impl From<RuleError> for QueryError {
    fn from(e: RuleError) -> Self {
        QueryError::Rule(e)
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Result alias for query execution.
pub type Result<T> = std::result::Result<T, QueryError>;

/// The query's slot coordinates in the workload-observatory heat table
/// (`mmdb_telemetry::heat`), matching [`HEAT_PLANS`]/[`HEAT_PROFILES`]
/// label order.
///
/// [`HEAT_PLANS`]: mmdb_telemetry::HEAT_PLANS
/// [`HEAT_PROFILES`]: mmdb_telemetry::HEAT_PROFILES
fn heat_indices(plan: QueryPlan, profile: RuleProfile) -> (usize, usize) {
    let plan_idx = match plan {
        QueryPlan::Instantiate => 0,
        QueryPlan::Rbm => 1,
        QueryPlan::Bwm => 2,
        QueryPlan::Indexed => 3,
    };
    let profile_idx = match profile {
        RuleProfile::Conservative => 0,
        RuleProfile::PaperTable1 => 1,
    };
    (plan_idx, profile_idx)
}

/// Records the start of one range query in the flight recorder. Gated (with
/// its string formatting) on the instrumentation switch.
fn observe_range_start(plan: QueryPlan, query: &ColorRangeQuery) {
    if !mmdb_telemetry::instrumentation_enabled() {
        return;
    }
    mmdb_telemetry::recorder().record(
        EventKind::QueryStart,
        format!(
            "plan={plan} bin={} range=[{:.4}, {:.4}]",
            query.bin, query.pct_min, query.pct_max
        ),
        &[("bin", query.bin as u64)],
    );
}

/// Records one completed range query: a per-plan counter, the per-plan and
/// per-(plan, profile) latency histograms, a `query_end` flight-recorder
/// event carrying the bounds-check counts, and — past the configured
/// threshold — a slow-query counter + event. The whole body is behind one
/// relaxed load of the instrumentation switch, so the disabled cost is near
/// zero and the enabled cost is a handful of relaxed RMWs per query.
fn observe_range(
    plan: QueryPlan,
    profile: RuleProfile,
    query: &ColorRangeQuery,
    out: &QueryOutcome,
    elapsed: Duration,
) {
    if !mmdb_telemetry::instrumentation_enabled() {
        return;
    }
    // Workload-observatory heat: one slot bump per executed query. This is
    // the single choke point every plan path (RBM/BWM/Instantiate/Indexed)
    // funnels through, locally and via the network backend.
    let (plan_idx, profile_idx) = heat_indices(plan, profile);
    mmdb_telemetry::heat().record(query.bin as u32, plan_idx, profile_idx);
    match plan {
        QueryPlan::Instantiate => {
            counter!(r#"mmdb_query_range_total{plan="instantiate"}"#).inc();
            histogram!(r#"mmdb_query_range_latency_seconds{plan="instantiate"}"#).observe(elapsed);
        }
        QueryPlan::Rbm => {
            counter!(r#"mmdb_query_range_total{plan="rbm"}"#).inc();
            histogram!(r#"mmdb_query_range_latency_seconds{plan="rbm"}"#).observe(elapsed);
        }
        QueryPlan::Bwm => {
            counter!(r#"mmdb_query_range_total{plan="bwm"}"#).inc();
            histogram!(r#"mmdb_query_range_latency_seconds{plan="bwm"}"#).observe(elapsed);
        }
        QueryPlan::Indexed => {
            counter!(r#"mmdb_query_range_total{plan="indexed"}"#).inc();
            histogram!(r#"mmdb_query_range_latency_seconds{plan="indexed"}"#).observe(elapsed);
        }
    }
    // Per-(plan, profile) latency distributions. Spelled out so each
    // combination is its own `histogram!` call site with a cached handle.
    match (plan, profile) {
        (QueryPlan::Instantiate, RuleProfile::Conservative) => {
            histogram!(
                r#"mmdb_query_range_latency_seconds{plan="instantiate",profile="conservative"}"#
            )
            .observe(elapsed);
        }
        (QueryPlan::Instantiate, RuleProfile::PaperTable1) => {
            histogram!(
                r#"mmdb_query_range_latency_seconds{plan="instantiate",profile="paper_table1"}"#
            )
            .observe(elapsed);
        }
        (QueryPlan::Rbm, RuleProfile::Conservative) => {
            histogram!(r#"mmdb_query_range_latency_seconds{plan="rbm",profile="conservative"}"#)
                .observe(elapsed);
        }
        (QueryPlan::Rbm, RuleProfile::PaperTable1) => {
            histogram!(r#"mmdb_query_range_latency_seconds{plan="rbm",profile="paper_table1"}"#)
                .observe(elapsed);
        }
        (QueryPlan::Bwm, RuleProfile::Conservative) => {
            histogram!(r#"mmdb_query_range_latency_seconds{plan="bwm",profile="conservative"}"#)
                .observe(elapsed);
        }
        (QueryPlan::Bwm, RuleProfile::PaperTable1) => {
            histogram!(r#"mmdb_query_range_latency_seconds{plan="bwm",profile="paper_table1"}"#)
                .observe(elapsed);
        }
        (QueryPlan::Indexed, RuleProfile::Conservative) => {
            histogram!(
                r#"mmdb_query_range_latency_seconds{plan="indexed",profile="conservative"}"#
            )
            .observe(elapsed);
        }
        (QueryPlan::Indexed, RuleProfile::PaperTable1) => {
            histogram!(
                r#"mmdb_query_range_latency_seconds{plan="indexed",profile="paper_table1"}"#
            )
            .observe(elapsed);
        }
    }
    mmdb_telemetry::recorder().record(
        EventKind::QueryEnd,
        format!("plan={plan} profile={} bin={}", profile.label(), query.bin),
        &[
            ("results", out.results.len() as u64),
            ("bounds_computed", out.stats.bounds_computed as u64),
            ("bounds_widened", out.stats.bounds_widened as u64),
            (
                "duration_nanos",
                elapsed.as_nanos().min(u64::MAX as u128) as u64,
            ),
        ],
    );
    if elapsed >= mmdb_telemetry::slow_query_threshold() {
        counter!("mmdb_query_slow_total").inc();
        mmdb_telemetry::recorder().record(
            EventKind::SlowQuery,
            format!(
                "plan={plan} bin={} took {}",
                query.bin,
                mmdb_telemetry::format_duration(elapsed)
            ),
            &[
                (
                    "duration_nanos",
                    elapsed.as_nanos().min(u64::MAX as u128) as u64,
                ),
                ("results", out.results.len() as u64),
            ],
        );
    }
}

/// A query processor bound to one database.
///
/// Attach a [`BwmStructure`] with [`QueryProcessor::attach_bwm`] (or build
/// one with [`QueryProcessor::build_bwm`]) to enable the BWM plan.
pub struct QueryProcessor<'db> {
    db: &'db StorageEngine,
    profile: RuleProfile,
    bwm: Option<BwmStructure>,
    boundidx: Option<BoundIndex>,
}

impl<'db> QueryProcessor<'db> {
    /// Creates a processor using the conservative rule profile.
    pub fn new(db: &'db StorageEngine) -> Self {
        QueryProcessor {
            db,
            profile: RuleProfile::Conservative,
            bwm: None,
            boundidx: None,
        }
    }

    /// Creates a processor with an explicit rule profile.
    pub fn with_profile(db: &'db StorageEngine, profile: RuleProfile) -> Self {
        QueryProcessor {
            db,
            profile,
            bwm: None,
            boundidx: None,
        }
    }

    /// Attaches a prebuilt BWM structure.
    pub fn attach_bwm(&mut self, structure: BwmStructure) {
        self.bwm = Some(structure);
    }

    /// Builds (Figure 1, over the whole database) and attaches the BWM
    /// structure.
    pub fn build_bwm(&mut self) {
        let structure = BwmStructure::build(self.db.binary_ids(), self.db.edited_ids(), self.db);
        self.bwm = Some(structure);
    }

    /// The attached BWM structure, if any.
    pub fn bwm(&self) -> Option<&BwmStructure> {
        self.bwm.as_ref()
    }

    /// Bulk-builds (parallel, crossbeam scoped workers) and attaches the
    /// bound-interval index for this processor's profile, enabling
    /// [`QueryProcessor::range_indexed`].
    ///
    /// # Errors
    /// Propagates rule-engine failures from the BOUNDS computations.
    pub fn build_bound_index(&mut self) -> Result<()> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let epoch = self.db.current_epoch();
        let index = BoundIndex::build(
            self.profile,
            self.db.quantizer(),
            self.db.background(),
            &self.db.binary_ids(),
            &self.db.edited_ids(),
            self.db,
            self.db,
            epoch,
            threads,
        )?;
        self.boundidx = Some(index);
        Ok(())
    }

    /// Attaches a prebuilt bound-interval index.
    ///
    /// # Panics
    /// Panics when the index was built for a different rule profile — its
    /// memoized bounds would be wrong for this processor's queries.
    pub fn attach_bound_index(&mut self, index: BoundIndex) {
        assert_eq!(
            index.profile(),
            self.profile,
            "bound index profile must match the processor profile"
        );
        self.boundidx = Some(index);
    }

    /// The attached bound-interval index, if any.
    pub fn bound_index(&self) -> Option<&BoundIndex> {
        self.boundidx.as_ref()
    }

    /// The plan [`QueryProcessor::range`] will use.
    pub fn plan(&self) -> QueryPlan {
        QueryPlan::choose(self.bwm.is_some())
    }

    fn engine(&self) -> RuleEngine<'_> {
        RuleEngine::with_background(self.db.quantizer(), self.profile, self.db.background())
    }

    /// Runs `query` under the preferred plan (BWM when attached, else RBM).
    pub fn range(&self, query: &ColorRangeQuery) -> Result<QueryOutcome> {
        match self.plan() {
            QueryPlan::Bwm => self.range_bwm(query),
            _ => self.range_rbm(query),
        }
    }

    /// Runs `query` under the preferred plan, returning a per-stage
    /// [`QueryTrace`] alongside the outcome.
    pub fn range_traced(&self, query: &ColorRangeQuery) -> Result<(QueryOutcome, QueryTrace)> {
        self.range_with_plan_traced(self.plan(), query)
    }

    /// Runs `query` under an explicit plan with tracing: the trace records
    /// the chosen plan and query parameters as events, each scan phase as a
    /// timed stage, and the work counters the stage performed.
    ///
    /// # Panics
    /// Panics when `plan` is [`QueryPlan::Bwm`] and no structure is attached.
    pub fn range_with_plan_traced(
        &self,
        plan: QueryPlan,
        query: &ColorRangeQuery,
    ) -> Result<(QueryOutcome, QueryTrace)> {
        let started = Instant::now();
        observe_range_start(plan, query);
        let (out, mut trace) = match plan {
            QueryPlan::Bwm => {
                let structure = self
                    .bwm
                    .as_ref()
                    .expect("BWM plan requires an attached BWM structure");
                let engine = self.engine();
                mmdb_bwm::query::execute_traced(structure, query, &engine, self.db, self.db)?
            }
            QueryPlan::Rbm => {
                let engine = self.engine();
                let mut out = QueryOutcome::default();
                let binary_started = Instant::now();
                self.rbm_binary_scan(query, &mut out)?;
                let binary_elapsed = binary_started.elapsed();
                let binary_hits = out.results.len();

                let edited_started = Instant::now();
                self.rbm_edited_scan(&engine, query, &mut out)?;
                let edited_elapsed = edited_started.elapsed();

                let mut trace = QueryTrace::new("rbm_range");
                trace.counter("results", out.results.len() as u64);
                trace.counter("bounds_computed", out.stats.bounds_computed as u64);
                trace.counter("bounds_widened", out.stats.bounds_widened as u64);
                trace
                    .stage("binary_scan", binary_elapsed)
                    .counter("scanned", self.db.binary_ids().len() as u64)
                    .counter("hits", binary_hits as u64);
                trace
                    .stage("edited_scan", edited_elapsed)
                    .counter("bounds_computed", out.stats.bounds_computed as u64)
                    .counter("ops_processed", out.stats.ops_processed as u64);
                (out, trace)
            }
            QueryPlan::Instantiate => {
                let scan_started = Instant::now();
                let mut out = QueryOutcome::default();
                self.instantiate_scan(query, &mut out)?;
                let scan_elapsed = scan_started.elapsed();
                let mut trace = QueryTrace::new("instantiate_range");
                trace.counter("results", out.results.len() as u64);
                trace
                    .stage("exact_scan", scan_elapsed)
                    .counter("scanned", self.db.ids().len() as u64);
                (out, trace)
            }
            QueryPlan::Indexed => {
                let index = self
                    .boundidx
                    .as_ref()
                    .expect("Indexed plan requires an attached bound index");
                return self.range_indexed_with_traced(index, query, SyncStats::default());
            }
        };
        trace.event("plan", plan.to_string());
        trace.event("bin", query.bin.to_string());
        trace.event("range", format!("[{}, {}]", query.pct_min, query.pct_max));
        trace.finish(started.elapsed());
        observe_range(plan, self.profile, query, &out, started.elapsed());
        Ok((out, trace))
    }

    /// §3 baseline (Figures 3–4 "without data structure"): every binary
    /// image is tested against its exact histogram; every edited image runs
    /// the full BOUNDS computation over all of its operations.
    pub fn range_rbm(&self, query: &ColorRangeQuery) -> Result<QueryOutcome> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Rbm, query);
        let engine = self.engine();
        let mut out = QueryOutcome::default();
        self.rbm_binary_scan(query, &mut out)?;
        self.rbm_edited_scan(&engine, query, &mut out)?;
        observe_range(QueryPlan::Rbm, self.profile, query, &out, started.elapsed());
        Ok(out)
    }

    /// The exact-histogram pass over binary images shared by the RBM paths.
    fn rbm_binary_scan(&self, query: &ColorRangeQuery, out: &mut QueryOutcome) -> Result<()> {
        for id in self.db.binary_ids() {
            let info = InfoResolver::require(self.db, id)?;
            if query.matches_fraction(info.histogram.fraction(query.bin)) {
                out.results.push(id);
            }
        }
        Ok(())
    }

    /// The BOUNDS pass over every edited image (the RBM fallback work).
    fn rbm_edited_scan(
        &self,
        engine: &RuleEngine<'_>,
        query: &ColorRangeQuery,
        out: &mut QueryOutcome,
    ) -> Result<()> {
        for id in self.db.edited_ids() {
            let seq = self
                .db
                .edit_sequence(id)
                .ok_or(RuleError::UnknownImage(id))?;
            out.stats.bounds_computed += 1;
            out.stats.ops_processed += seq.len();
            let bounds = engine.bounds(&seq, query.bin, self.db)?;
            if !bounds.is_exact() {
                out.stats.bounds_widened += 1;
            }
            if bounds.overlaps_fraction(query.pct_min, query.pct_max) {
                out.results.push(id);
            }
        }
        Ok(())
    }

    /// Multi-threaded RBM: the edited-image scan is embarrassingly parallel,
    /// so chunk it over `threads` crossbeam scoped workers. Results are
    /// merged in id order; stats are summed.
    pub fn range_rbm_parallel(
        &self,
        query: &ColorRangeQuery,
        threads: usize,
    ) -> Result<QueryOutcome> {
        assert!(threads > 0, "need at least one thread");
        let started = Instant::now();
        observe_range_start(QueryPlan::Rbm, query);
        let mut out = QueryOutcome::default();
        self.rbm_binary_scan(query, &mut out)?;
        let edited = self.db.edited_ids();
        let chunk = edited.len().div_ceil(threads).max(1);
        let partials: Vec<Result<(Vec<ImageId>, BwmQueryStats)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = edited
                    .chunks(chunk)
                    .map(|ids| {
                        scope.spawn(move |_| {
                            let engine = self.engine();
                            let mut hits = Vec::new();
                            let mut stats = BwmQueryStats::default();
                            for &id in ids {
                                let seq = self
                                    .db
                                    .edit_sequence(id)
                                    .ok_or(RuleError::UnknownImage(id))?;
                                stats.bounds_computed += 1;
                                stats.ops_processed += seq.len();
                                let bounds = engine.bounds(&seq, query.bin, self.db)?;
                                if !bounds.is_exact() {
                                    stats.bounds_widened += 1;
                                }
                                if bounds.overlaps_fraction(query.pct_min, query.pct_max) {
                                    hits.push(id);
                                }
                            }
                            Ok((hits, stats))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("scope panicked");
        for partial in partials {
            let (hits, stats) = partial?;
            out.results.extend(hits);
            out.stats.bounds_computed += stats.bounds_computed;
            out.stats.ops_processed += stats.ops_processed;
            out.stats.bounds_widened += stats.bounds_widened;
        }
        observe_range(QueryPlan::Rbm, self.profile, query, &out, started.elapsed());
        Ok(out)
    }

    /// §4 (Figures 3–4 "with data structure"): the Figure 2 algorithm.
    ///
    /// # Panics
    /// Panics when no BWM structure is attached.
    pub fn range_bwm(&self, query: &ColorRangeQuery) -> Result<QueryOutcome> {
        let structure = self
            .bwm
            .as_ref()
            .expect("range_bwm requires an attached BWM structure");
        self.range_bwm_with(structure, query)
    }

    /// Figure 2 against an externally owned structure (used by callers that
    /// maintain the BWM structure incrementally, like the `mmdbms` facade).
    pub fn range_bwm_with(
        &self,
        structure: &BwmStructure,
        query: &ColorRangeQuery,
    ) -> Result<QueryOutcome> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Bwm, query);
        let engine = self.engine();
        let out = mmdb_bwm::query::execute(structure, query, &engine, self.db, self.db)?;
        observe_range(QueryPlan::Bwm, self.profile, query, &out, started.elapsed());
        Ok(out)
    }

    /// Figure 2 with tracing against an externally owned structure.
    pub fn range_bwm_with_traced(
        &self,
        structure: &BwmStructure,
        query: &ColorRangeQuery,
    ) -> Result<(QueryOutcome, QueryTrace)> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Bwm, query);
        let engine = self.engine();
        let (out, mut trace) =
            mmdb_bwm::query::execute_traced(structure, query, &engine, self.db, self.db)?;
        trace.event("plan", QueryPlan::Bwm.to_string());
        trace.event("bin", query.bin.to_string());
        trace.event("range", format!("[{}, {}]", query.pct_min, query.pct_max));
        trace.finish(started.elapsed());
        observe_range(QueryPlan::Bwm, self.profile, query, &out, started.elapsed());
        Ok((out, trace))
    }

    /// Figure 2 with a memoized-bounds fast path: clusters whose base
    /// misses (and Unclassified entries) probe `cache` before walking any
    /// operation list. The caller is responsible for cache freshness (the
    /// facade only passes an index whose epoch matches the storage engine).
    pub fn range_bwm_with_cache(
        &self,
        structure: &BwmStructure,
        query: &ColorRangeQuery,
        cache: Option<&dyn BoundsCache>,
    ) -> Result<QueryOutcome> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Bwm, query);
        let engine = self.engine();
        let out = mmdb_bwm::query::execute_with_cache(
            structure, query, &engine, self.db, self.db, cache,
        )?;
        observe_range(QueryPlan::Bwm, self.profile, query, &out, started.elapsed());
        Ok(out)
    }

    /// Answers `query` from the attached bound-interval index: two galloping
    /// prefix searches and a scan of the smaller prefix — no rule walk.
    ///
    /// # Panics
    /// Panics when no index is attached, or when the attached index's epoch
    /// trails the storage engine (a mutation landed after the build; the
    /// stale-serving invariant makes this a hard error here — the `mmdbms`
    /// facade is the layer that re-syncs instead).
    pub fn range_indexed(&self, query: &ColorRangeQuery) -> Result<QueryOutcome> {
        let index = self
            .boundidx
            .as_ref()
            .expect("range_indexed requires an attached bound index");
        assert_eq!(
            index.synced_epoch(),
            self.db.current_epoch(),
            "bound index is stale; rebuild it before serving"
        );
        self.range_indexed_with(index, query)
    }

    /// Indexed lookup against an externally owned index (used by callers
    /// that maintain the index incrementally, like the `mmdbms` facade).
    pub fn range_indexed_with(
        &self,
        index: &BoundIndex,
        query: &ColorRangeQuery,
    ) -> Result<QueryOutcome> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Indexed, query);
        let lookup = index.lookup(query);
        let mut out = QueryOutcome::default();
        out.stats.bound_cache_hits = lookup.scanned;
        out.results = lookup.ids;
        observe_range(
            QueryPlan::Indexed,
            self.profile,
            query,
            &out,
            started.elapsed(),
        );
        Ok(out)
    }

    /// [`QueryProcessor::range_indexed_with`] with tracing: one
    /// `index_sync` stage (what incremental maintenance the caller just
    /// performed — zeros when the index was already fresh) and one
    /// `index_lookup` stage with hit/scan counters, for `mmdbctl explain`.
    pub fn range_indexed_with_traced(
        &self,
        index: &BoundIndex,
        query: &ColorRangeQuery,
        sync: SyncStats,
    ) -> Result<(QueryOutcome, QueryTrace)> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Indexed, query);
        let lookup_started = Instant::now();
        let lookup = index.lookup(query);
        let lookup_elapsed = lookup_started.elapsed();
        let mut out = QueryOutcome::default();
        out.stats.bound_cache_hits = lookup.scanned;
        out.results = lookup.ids;

        let mut trace = QueryTrace::new("indexed_range");
        trace.counter("results", out.results.len() as u64);
        trace.counter("index_hits", lookup.scanned as u64);
        trace.counter("index_misses", sync.recomputed as u64);
        trace
            .stage("index_sync", Duration::ZERO)
            .counter("added", sync.added as u64)
            .counter("removed", sync.removed as u64)
            .counter("recomputed", sync.recomputed as u64);
        trace
            .stage("index_lookup", lookup_elapsed)
            .counter("entries", index.len() as u64)
            .counter("scanned", lookup.scanned as u64)
            .counter("hits", out.results.len() as u64);
        trace.event("plan", QueryPlan::Indexed.to_string());
        trace.event("bin", query.bin.to_string());
        trace.event("range", format!("[{}, {}]", query.pct_min, query.pct_max));
        trace.finish(started.elapsed());
        observe_range(
            QueryPlan::Indexed,
            self.profile,
            query,
            &out,
            started.elapsed(),
        );
        Ok((out, trace))
    }

    /// Ground truth: instantiates every edited image, extracts its exact
    /// histogram, and applies the query predicate directly. Binary images
    /// use their stored histograms. This is the expensive path whose
    /// avoidance is the point of the paper; exposed for correctness
    /// verification and the instantiation-cost benchmarks.
    pub fn range_instantiate(&self, query: &ColorRangeQuery) -> Result<QueryOutcome> {
        let started = Instant::now();
        observe_range_start(QueryPlan::Instantiate, query);
        let mut out = QueryOutcome::default();
        self.instantiate_scan(query, &mut out)?;
        observe_range(
            QueryPlan::Instantiate,
            self.profile,
            query,
            &out,
            started.elapsed(),
        );
        Ok(out)
    }

    /// The exact-histogram scan over every image (instantiating as needed).
    fn instantiate_scan(&self, query: &ColorRangeQuery, out: &mut QueryOutcome) -> Result<()> {
        for id in self.db.ids() {
            let hist = self.db.histogram(id)?;
            if query.matches_fraction(hist.fraction(query.bin)) {
                out.results.push(id);
            }
        }
        Ok(())
    }

    /// §2's provenance expansion: "this connection can be used to determine
    /// that x should also be returned ... even though their respective
    /// features do not sufficiently match." For every edited image in
    /// `results`, its base image joins the result set.
    pub fn expand_with_bases(&self, results: &[ImageId]) -> Vec<ImageId> {
        let mut set: BTreeSet<ImageId> = results.iter().copied().collect();
        for &id in results {
            if let Some(base) = self.db.base_of(id) {
                set.insert(base);
            }
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::EditSequence;
    use mmdb_histogram::RgbQuantizer;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    /// Builds a small augmented database:
    /// * 4 binary images with 10%, 30%, 50%, 70% red;
    /// * per base, one widening edited image (blur of a corner);
    /// * one unclassified edited image (merge into base 1).
    fn setup() -> (StorageEngine, Vec<ImageId>, Vec<ImageId>) {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
        let mut bases = Vec::new();
        for rows in [1u32, 3, 5, 7] {
            let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
            draw::fill_rect(&mut img, &Rect::new(0, 0, 10, rows as i64), Rgb::RED);
            bases.push(db.insert_binary(&img).unwrap());
        }
        let mut edits = Vec::new();
        for &b in &bases {
            edits.push(
                db.insert_edited(
                    EditSequence::builder(b)
                        .define(Rect::new(0, 0, 2, 2))
                        .blur()
                        .build(),
                )
                .unwrap(),
            );
        }
        edits.push(
            db.insert_edited(
                EditSequence::builder(bases[1])
                    .define(Rect::new(0, 0, 3, 3))
                    .merge_into(bases[0], 1, 1)
                    .build(),
            )
            .unwrap(),
        );
        (db, bases, edits)
    }

    fn red_bin(db: &StorageEngine) -> usize {
        db.quantizer().bin_of(Rgb::RED)
    }

    #[test]
    fn rbm_and_bwm_agree() {
        let (db, _bases, _edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        for (lo, hi) in [
            (0.0, 1.0),
            (0.25, 0.55),
            (0.45, 0.52),
            (0.9, 1.0),
            (0.0, 0.05),
        ] {
            let q = ColorRangeQuery::new(red_bin(&db), lo, hi);
            let rbm = qp.range_rbm(&q).unwrap();
            let bwm = qp.range_bwm(&q).unwrap();
            assert_eq!(
                rbm.sorted_results(),
                bwm.sorted_results(),
                "query [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn bwm_does_less_work_when_bases_hit() {
        let (db, _bases, _edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        // A wide query hits every base: BWM shortcuts every Main cluster.
        let q = ColorRangeQuery::new(red_bin(&db), 0.0, 1.0);
        let rbm = qp.range_rbm(&q).unwrap();
        let bwm = qp.range_bwm(&q).unwrap();
        assert!(bwm.stats.bounds_computed < rbm.stats.bounds_computed);
        // Only the unclassified image needed bounds under BWM.
        assert_eq!(bwm.stats.bounds_computed, 1);
        assert_eq!(rbm.stats.bounds_computed, 5);
    }

    #[test]
    fn results_superset_of_ground_truth_and_no_false_negatives() {
        let (db, _bases, _edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        for (lo, hi) in [(0.0, 0.3), (0.28, 0.32), (0.5, 1.0)] {
            let q = ColorRangeQuery::new(red_bin(&db), lo, hi);
            let truth = qp.range_instantiate(&q).unwrap().sorted_results();
            let rbm = qp.range_rbm(&q).unwrap().sorted_results();
            for id in &truth {
                assert!(rbm.contains(id), "false negative {id} in [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn parallel_rbm_matches_serial() {
        let (db, _bases, _edits) = setup();
        let qp = QueryProcessor::new(&db);
        for threads in [1, 2, 4, 7] {
            let q = ColorRangeQuery::new(red_bin(&db), 0.2, 0.6);
            let serial = qp.range_rbm(&q).unwrap();
            let parallel = qp.range_rbm_parallel(&q, threads).unwrap();
            assert_eq!(serial.sorted_results(), parallel.sorted_results());
            assert_eq!(serial.stats.bounds_computed, parallel.stats.bounds_computed);
        }
    }

    #[test]
    fn indexed_matches_scans_for_both_profiles() {
        let (db, _bases, _edits) = setup();
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            let mut qp = QueryProcessor::with_profile(&db, profile);
            qp.build_bwm();
            qp.build_bound_index().unwrap();
            for (lo, hi) in [
                (0.0, 1.0),
                (0.25, 0.55),
                (0.45, 0.52),
                (0.9, 1.0),
                (0.0, 0.05),
            ] {
                let q = ColorRangeQuery::new(red_bin(&db), lo, hi);
                let rbm = qp.range_rbm(&q).unwrap().sorted_results();
                let bwm = qp.range_bwm(&q).unwrap().sorted_results();
                let idx = qp.range_indexed(&q).unwrap().sorted_results();
                assert_eq!(idx, rbm, "{profile:?} [{lo},{hi}] indexed vs rbm");
                assert_eq!(idx, bwm, "{profile:?} [{lo},{hi}] indexed vs bwm");
            }
        }
    }

    #[test]
    fn indexed_trace_reports_hits() {
        let (db, _bases, _edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bound_index().unwrap();
        let q = ColorRangeQuery::new(red_bin(&db), 0.0, 1.0);
        let (out, trace) = qp.range_with_plan_traced(QueryPlan::Indexed, &q).unwrap();
        assert!(!out.results.is_empty());
        assert!(trace.counter_value("index_hits").unwrap_or(0) > 0);
        let rendered = trace.render();
        assert!(rendered.contains("index_lookup"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn indexed_serving_refuses_stale_epoch() {
        let (db, _bases, edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bound_index().unwrap();
        db.delete(*edits.last().unwrap()).unwrap();
        let q = ColorRangeQuery::new(red_bin(&db), 0.0, 1.0);
        let _ = qp.range_indexed(&q);
    }

    #[test]
    fn bwm_cache_fast_path_preserves_results() {
        let (db, _bases, _edits) = setup();
        let mut qp = QueryProcessor::new(&db);
        qp.build_bwm();
        qp.build_bound_index().unwrap();
        let structure = qp.bwm().unwrap().clone();
        for (lo, hi) in [(0.0, 1.0), (0.45, 0.52), (0.9, 1.0)] {
            let q = ColorRangeQuery::new(red_bin(&db), lo, hi);
            let plain = qp.range_bwm_with(&structure, &q).unwrap();
            let cached = qp
                .range_bwm_with_cache(
                    &structure,
                    &q,
                    qp.bound_index().map(|i| i as &dyn BoundsCache),
                )
                .unwrap();
            assert_eq!(plain.sorted_results(), cached.sorted_results());
            assert_eq!(
                cached.stats.bounds_computed, 0,
                "fresh index must serve every non-shortcut bounds test"
            );
        }
    }

    #[test]
    fn plan_selection() {
        let (db, _, _) = setup();
        let mut qp = QueryProcessor::new(&db);
        assert_eq!(qp.plan(), QueryPlan::Rbm);
        qp.build_bwm();
        assert_eq!(qp.plan(), QueryPlan::Bwm);
        let q = ColorRangeQuery::new(red_bin(&db), 0.0, 1.0);
        // `range` dispatches to BWM and matches the explicit call.
        assert_eq!(
            qp.range(&q).unwrap().sorted_results(),
            qp.range_bwm(&q).unwrap().sorted_results()
        );
    }

    #[test]
    fn expansion_adds_bases() {
        let (db, bases, edits) = setup();
        let qp = QueryProcessor::new(&db);
        let expanded = qp.expand_with_bases(&[edits[2]]);
        assert!(expanded.contains(&bases[2]));
        assert!(expanded.contains(&edits[2]));
        assert_eq!(expanded.len(), 2);
        // Binary-only input is unchanged.
        assert_eq!(qp.expand_with_bases(&[bases[0]]), vec![bases[0]]);
    }

    #[test]
    fn profile_affects_filter_width_not_correctness() {
        let (db, _bases, _edits) = setup();
        let q = ColorRangeQuery::new(red_bin(&db), 0.29, 0.31);
        let cons = QueryProcessor::with_profile(&db, RuleProfile::Conservative)
            .range_rbm(&q)
            .unwrap();
        let lit = QueryProcessor::with_profile(&db, RuleProfile::PaperTable1)
            .range_rbm(&q)
            .unwrap();
        // Both contain the exactly-30%-red base image.
        let truth = QueryProcessor::new(&db).range_instantiate(&q).unwrap();
        for id in truth.sorted_results() {
            // PaperTable1's Combine rule is exact-histogram for blur, so
            // candidates may differ, but the matching *binary* images and
            // conservative candidates must be present in each.
            assert!(cons.results.contains(&id) || !db.binary_ids().contains(&id));
        }
        assert!(!lit.results.is_empty());
    }
}

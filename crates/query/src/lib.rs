#![warn(missing_docs)]

//! # mmdb-query
//!
//! Query processing for the augmented MMDBMS. This crate ties the substrates
//! together into the three execution strategies the paper discusses:
//!
//! * [`QueryProcessor::range_instantiate`] — the naive ground truth: decode /
//!   instantiate every image and test its exact histogram (the expensive
//!   path §3 exists to avoid);
//! * [`QueryProcessor::range_rbm`] — §3's Rule-Based Method: exact histogram
//!   test for binary images, BOUNDS computation for every edited image;
//! * [`QueryProcessor::range_bwm`] — §4's Bound-Widening Method over the
//!   Main/Unclassified structure.
//!
//! plus the supporting machinery: a parallel RBM scan (crossbeam scoped
//! threads), provenance expansion (§2: when `op(x)` matches, `x` is returned
//! too), and a k-nearest-neighbour search over the binary images' histogram
//! signatures through the R-tree substrate.

pub mod executor;
pub mod knn;
pub mod knn_edited;
pub mod plan;

pub use executor::QueryProcessor;
pub use knn::SignatureIndex;
pub use knn_edited::{knn_augmented, knn_brute_force, KnnOutcome, KnnStats};
pub use plan::QueryPlan;

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the full query schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        r#"mmdb_query_range_total{plan="instantiate"}"#,
        r#"mmdb_query_range_total{plan="rbm"}"#,
        r#"mmdb_query_range_total{plan="bwm"}"#,
        r#"mmdb_query_range_total{plan="indexed"}"#,
        r#"mmdb_query_knn_total{path="augmented"}"#,
        r#"mmdb_query_knn_total{path="brute_force"}"#,
        "mmdb_query_knn_edited_pruned_total",
        "mmdb_query_knn_edited_instantiated_total",
        "mmdb_query_slow_total",
    ] {
        let _ = g.counter(name);
    }
    for name in [
        r#"mmdb_query_range_latency_seconds{plan="instantiate"}"#,
        r#"mmdb_query_range_latency_seconds{plan="rbm"}"#,
        r#"mmdb_query_range_latency_seconds{plan="bwm"}"#,
        r#"mmdb_query_range_latency_seconds{plan="indexed"}"#,
        r#"mmdb_query_range_latency_seconds{plan="instantiate",profile="conservative"}"#,
        r#"mmdb_query_range_latency_seconds{plan="instantiate",profile="paper_table1"}"#,
        r#"mmdb_query_range_latency_seconds{plan="rbm",profile="conservative"}"#,
        r#"mmdb_query_range_latency_seconds{plan="rbm",profile="paper_table1"}"#,
        r#"mmdb_query_range_latency_seconds{plan="bwm",profile="conservative"}"#,
        r#"mmdb_query_range_latency_seconds{plan="bwm",profile="paper_table1"}"#,
        r#"mmdb_query_range_latency_seconds{plan="indexed",profile="conservative"}"#,
        r#"mmdb_query_range_latency_seconds{plan="indexed",profile="paper_table1"}"#,
        r#"mmdb_query_knn_latency_seconds{path="augmented"}"#,
        r#"mmdb_query_knn_latency_seconds{path="brute_force"}"#,
    ] {
        let _ = g.histogram(name);
    }
}

#![warn(missing_docs)]

//! # mmdb-query
//!
//! Query processing for the augmented MMDBMS. This crate ties the substrates
//! together into the three execution strategies the paper discusses:
//!
//! * [`QueryProcessor::range_instantiate`] — the naive ground truth: decode /
//!   instantiate every image and test its exact histogram (the expensive
//!   path §3 exists to avoid);
//! * [`QueryProcessor::range_rbm`] — §3's Rule-Based Method: exact histogram
//!   test for binary images, BOUNDS computation for every edited image;
//! * [`QueryProcessor::range_bwm`] — §4's Bound-Widening Method over the
//!   Main/Unclassified structure.
//!
//! plus the supporting machinery: a parallel RBM scan (crossbeam scoped
//! threads), provenance expansion (§2: when `op(x)` matches, `x` is returned
//! too), and a k-nearest-neighbour search over the binary images' histogram
//! signatures through the R-tree substrate.

pub mod executor;
pub mod knn;
pub mod knn_edited;
pub mod plan;

pub use executor::QueryProcessor;
pub use knn::SignatureIndex;
pub use knn_edited::{knn_augmented, knn_brute_force, KnnOutcome, KnnStats};
pub use plan::QueryPlan;

//! k-nearest-neighbour search over binary-image histogram signatures.
//!
//! §3.1: "to reduce the query processing time, the histograms can be
//! organized in multidimensional indexes such as the R-tree". This module
//! indexes the normalized signatures of a database's *binary* images in the
//! `mmdb-index` R-tree and answers similarity (k-NN by L2 over signatures)
//! and signature-box range probes. (k-NN over *edited* images is future work
//! in the paper; the range-query pipeline is the headline reproduction.)

use mmdb_editops::ImageId;
use mmdb_histogram::ColorHistogram;
use mmdb_index::{bulk_load_str, Mbr, RTree};
use mmdb_rules::InfoResolver;
use mmdb_storage::StorageEngine;

/// An R-tree over histogram signatures of binary images.
pub struct SignatureIndex {
    tree: RTree<ImageId>,
    dims: usize,
}

impl SignatureIndex {
    /// Bulk-loads the index from every binary image in `db` (STR packing).
    pub fn build(db: &StorageEngine) -> Self {
        let dims = db.quantizer().bin_count();
        let entries: Vec<(Mbr, ImageId)> = db
            .binary_ids()
            .into_iter()
            .filter_map(|id| {
                let info = db.info(id)?;
                Some((Mbr::point(&info.histogram.signature()), id))
            })
            .collect();
        SignatureIndex {
            tree: bulk_load_str(dims, 16, entries),
            dims,
        }
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Signature dimensionality (= histogram bin count).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `k` indexed images nearest to `query`'s signature by Euclidean
    /// distance, ascending.
    ///
    /// # Panics
    /// Panics when `query`'s bin count differs from the index dimensions.
    pub fn nearest(&self, query: &ColorHistogram, k: usize) -> Vec<(f64, ImageId)> {
        assert_eq!(
            query.bin_count(),
            self.dims,
            "query histogram bin count mismatch"
        );
        self.tree
            .nearest(&query.signature(), k)
            .into_iter()
            .map(|(d, &id)| (d, id))
            .collect()
    }

    /// All indexed images whose signature fraction in `bin` lies within
    /// `[lo, hi]` — the index-accelerated form of a single-bin range query
    /// over binary images.
    pub fn bin_range(&self, bin: usize, lo: f64, hi: f64) -> Vec<ImageId> {
        assert!(bin < self.dims, "bin {bin} out of range");
        let mut lo_corner = vec![0.0; self.dims];
        let mut hi_corner = vec![1.0; self.dims];
        lo_corner[bin] = lo;
        hi_corner[bin] = hi;
        let mut hits: Vec<ImageId> = self
            .tree
            .search_intersecting(&Mbr::new(lo_corner, hi_corner))
            .into_iter()
            .copied()
            .collect();
        hits.sort_unstable();
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    fn db_with_red_gradient() -> (StorageEngine, Vec<ImageId>) {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
        let mut ids = Vec::new();
        for rows in 0..=10u32 {
            let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
            draw::fill_rect(&mut img, &Rect::new(0, 0, 10, rows as i64), Rgb::RED);
            ids.push(db.insert_binary(&img).unwrap());
        }
        (db, ids)
    }

    #[test]
    fn nearest_finds_closest_red_fraction() {
        let (db, ids) = db_with_red_gradient();
        let index = SignatureIndex::build(&db);
        assert_eq!(index.len(), 11);
        // Query: 40% red.
        let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 10, 4), Rgb::RED);
        let q = ColorHistogram::extract(&img, &RgbQuantizer::default_64());
        let nn = index.nearest(&q, 3);
        assert_eq!(nn[0].1, ids[4], "exact match first");
        assert!(nn[0].0 < 1e-9);
        // Next nearest are the 30% and 50% images, in some order.
        let next: Vec<ImageId> = nn[1..].iter().map(|&(_, id)| id).collect();
        assert!(next.contains(&ids[3]) && next.contains(&ids[5]), "{next:?}");
    }

    #[test]
    fn bin_range_matches_linear_filter() {
        let (db, ids) = db_with_red_gradient();
        let index = SignatureIndex::build(&db);
        let red = db.quantizer().bin_of(Rgb::RED);
        let hits = index.bin_range(red, 0.25, 0.65);
        // 30%..60% red → ids[3..=6].
        assert_eq!(hits, vec![ids[3], ids[4], ids[5], ids[6]]);
    }

    #[test]
    fn edited_images_are_not_indexed() {
        let (db, ids) = db_with_red_gradient();
        db.insert_edited(
            mmdb_editops::EditSequence::builder(ids[0])
                .modify(Rgb::WHITE, Rgb::RED)
                .build(),
        )
        .unwrap();
        let index = SignatureIndex::build(&db);
        assert_eq!(index.len(), 11, "only binary images indexed");
    }

    #[test]
    fn empty_database_index() {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
        let index = SignatureIndex::build(&db);
        assert!(index.is_empty());
        let q = ColorHistogram::zeroed(64);
        assert!(index.nearest(&q, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn wrong_dims_panics() {
        let (db, _) = db_with_red_gradient();
        let index = SignatureIndex::build(&db);
        index.nearest(&ColorHistogram::zeroed(8), 1);
    }
}

//! k-nearest-neighbour search **over the whole augmented database** — the
//! extension the paper lists as future work (§6: "more testing is needed to
//! verify the effects of the proposed data structure on systems that ...
//! permit other types of queries including nearest neighbor searches").
//!
//! The difficulty is the edited images: their exact histograms are unknown
//! without instantiation. The same Table 1 bounds that answer range queries
//! also yield a **lower bound on the L1 distance** between a query signature
//! `y` and any edited image: for every bin `b` with feasible fraction range
//! `[lo_b, hi_b]`,
//!
//! ```text
//! |x_b − y_b|  ≥  max(0,  y_b − hi_b,  lo_b − y_b)        for all feasible x_b
//! ```
//!
//! so summing the right-hand side over bins lower-bounds the true L1
//! distance. The search then runs in the classic filter-and-refine shape:
//!
//! 1. exact distances for all binary images (their histograms are stored),
//! 2. per edited image, the bound-derived lower bound; images whose lower
//!    bound already exceeds the current k-th best distance are **pruned
//!    without instantiation**,
//! 3. survivors are instantiated (through the storage engine's raster cache)
//!    and ranked exactly.
//!
//! The result is *exact* (identical to brute force — no false dismissals,
//! verified by tests); the bounds only save work.

use mmdb_editops::ImageId;
use mmdb_histogram::{l1_distance, ColorHistogram};
use mmdb_rules::{BoundRange, RuleEngine, RuleProfile};
use mmdb_storage::StorageEngine;
use mmdb_telemetry::{counter, histogram};
use std::time::Instant;

/// Work counters for one k-NN execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KnnStats {
    /// Binary images ranked exactly from stored histograms.
    pub binary_scored: usize,
    /// Edited images whose lower bound pruned them without instantiation.
    pub edited_pruned: usize,
    /// Edited images that had to be instantiated and ranked exactly.
    pub edited_instantiated: usize,
}

/// The outcome of a k-NN over the augmented database.
#[derive(Clone, Debug)]
pub struct KnnOutcome {
    /// Up to `k` `(L1 distance, image)` pairs, ascending by distance.
    pub neighbours: Vec<(f64, ImageId)>,
    /// Work counters.
    pub stats: KnnStats,
}

/// The L1 lower bound for a query signature against per-bin fraction bounds.
pub fn l1_lower_bound(query_signature: &[f64], bounds: &[BoundRange]) -> f64 {
    debug_assert_eq!(query_signature.len(), bounds.len());
    query_signature
        .iter()
        .zip(bounds)
        .map(|(&y, b)| {
            let (lo, hi) = b.fraction_range();
            (y - hi).max(lo - y).max(0.0)
        })
        .sum()
}

/// Exact k-nearest-neighbour search by L1 histogram distance over **all**
/// images (binary and edited), pruning edited images with rule-derived
/// lower bounds.
pub fn knn_augmented(
    db: &StorageEngine,
    query: &ColorHistogram,
    k: usize,
    profile: RuleProfile,
) -> crate::executor::Result<KnnOutcome> {
    assert_eq!(
        query.bin_count(),
        db.quantizer().bin_count(),
        "query histogram bin count mismatch"
    );
    let mut stats = KnnStats::default();
    if k == 0 {
        return Ok(KnnOutcome {
            neighbours: Vec::new(),
            stats,
        });
    }
    let started = Instant::now();
    let query_sig = query.signature();

    // Phase 1: exact distances for binary images.
    let mut best: Vec<(f64, ImageId)> = Vec::new();
    for id in db.binary_ids() {
        use mmdb_rules::InfoResolver;
        let info = InfoResolver::require(db, id)?;
        let d = l1_distance(query, &info.histogram);
        stats.binary_scored += 1;
        push_candidate(&mut best, k, (d, id));
    }

    // Phase 2: filter-and-refine over edited images.
    let engine = RuleEngine::with_background(db.quantizer(), profile, db.background());
    for id in db.edited_ids() {
        let seq = db
            .edit_sequence(id)
            .ok_or(mmdb_rules::RuleError::UnknownImage(id))?;
        let tau = kth_distance(&best, k);
        let bounds = engine.bounds_vector(&seq, db)?;
        let lower = l1_lower_bound(&query_sig, &bounds);
        if lower >= tau {
            stats.edited_pruned += 1;
            continue;
        }
        // Refine: instantiate and rank exactly.
        let exact_hist = db.histogram(id)?;
        let d = l1_distance(query, &exact_hist);
        stats.edited_instantiated += 1;
        push_candidate(&mut best, k, (d, id));
    }

    best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    counter!(r#"mmdb_query_knn_total{path="augmented"}"#).inc();
    histogram!(r#"mmdb_query_knn_latency_seconds{path="augmented"}"#).observe(started.elapsed());
    counter!("mmdb_query_knn_edited_pruned_total").add(stats.edited_pruned as u64);
    counter!("mmdb_query_knn_edited_instantiated_total").add(stats.edited_instantiated as u64);
    Ok(KnnOutcome {
        neighbours: best,
        stats,
    })
}

/// Brute-force reference: instantiates everything. Exposed for verification
/// and the k-NN benchmarks.
pub fn knn_brute_force(
    db: &StorageEngine,
    query: &ColorHistogram,
    k: usize,
) -> crate::executor::Result<Vec<(f64, ImageId)>> {
    let started = Instant::now();
    let mut all: Vec<(f64, ImageId)> = Vec::new();
    for id in db.ids() {
        let hist = db.histogram(id)?;
        all.push((l1_distance(query, &hist), id));
    }
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    all.truncate(k);
    counter!(r#"mmdb_query_knn_total{path="brute_force"}"#).inc();
    histogram!(r#"mmdb_query_knn_latency_seconds{path="brute_force"}"#).observe(started.elapsed());
    Ok(all)
}

/// Maintains the best-k list (unsorted; the final sort happens once).
fn push_candidate(best: &mut Vec<(f64, ImageId)>, k: usize, cand: (f64, ImageId)) {
    if best.len() < k {
        best.push(cand);
        return;
    }
    // Replace the current worst if the candidate beats it.
    let (worst_idx, worst) = best
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
        .map(|(i, &(d, _))| (i, d))
        .expect("best is non-empty");
    if cand.0 < worst {
        best[worst_idx] = cand;
    }
}

/// The pruning threshold: the k-th best distance so far (∞ until k
/// candidates exist).
fn kth_distance(best: &[(f64, ImageId)], k: usize) -> f64 {
    if best.len() < k {
        f64::INFINITY
    } else {
        best.iter()
            .map(|&(d, _)| d)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::EditSequence;
    use mmdb_histogram::RgbQuantizer;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    /// Gradient of red fractions plus edited variants.
    fn setup() -> (StorageEngine, Vec<ImageId>) {
        let db = StorageEngine::in_memory(Box::new(RgbQuantizer::default_64()));
        let mut bases = Vec::new();
        for rows in [0u32, 2, 4, 6, 8, 10] {
            let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
            draw::fill_rect(&mut img, &Rect::new(0, 0, 10, rows as i64), Rgb::RED);
            bases.push(db.insert_binary(&img).unwrap());
        }
        for (i, &b) in bases.iter().enumerate() {
            // A recolor variant and a crop variant per base.
            db.insert_edited(
                EditSequence::builder(b)
                    .define(Rect::new(0, 0, 3, 3))
                    .modify(Rgb::WHITE, Rgb::BLUE)
                    .build(),
            )
            .unwrap();
            if i % 2 == 0 {
                db.insert_edited(
                    EditSequence::builder(b)
                        .define(Rect::new(0, 0, 10, 5))
                        .crop_to_region()
                        .build(),
                )
                .unwrap();
            }
        }
        (db, bases)
    }

    fn probe(rows: i64) -> ColorHistogram {
        let mut img = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 10, rows), Rgb::RED);
        ColorHistogram::extract(&img, &RgbQuantizer::default_64())
    }

    #[test]
    fn matches_brute_force_exactly() {
        let (db, _) = setup();
        for rows in [1i64, 5, 9] {
            let q = probe(rows);
            for k in [1usize, 3, 7, 100] {
                let fast = knn_augmented(&db, &q, k, RuleProfile::Conservative).unwrap();
                let brute = knn_brute_force(&db, &q, k).unwrap();
                assert_eq!(fast.neighbours.len(), brute.len());
                for (f, b) in fast.neighbours.iter().zip(&brute) {
                    assert!(
                        (f.0 - b.0).abs() < 1e-12,
                        "distance mismatch at k={k}: {f:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_happens_and_is_sound() {
        let (db, _) = setup();
        let q = probe(2);
        let out = knn_augmented(&db, &q, 2, RuleProfile::Conservative).unwrap();
        assert_eq!(
            out.stats.edited_pruned + out.stats.edited_instantiated,
            db.edited_ids().len()
        );
        assert!(
            out.stats.edited_pruned > 0,
            "bounds should prune something: {:?}",
            out.stats
        );
        assert_eq!(out.stats.binary_scored, 6);
    }

    #[test]
    fn lower_bound_is_a_true_lower_bound() {
        let (db, _) = setup();
        let q = probe(4);
        let sig = q.signature();
        let engine = RuleEngine::new(db.quantizer(), RuleProfile::Conservative);
        for id in db.edited_ids() {
            let seq = db.edit_sequence(id).unwrap();
            let bounds = engine.bounds_vector(&seq, &db).unwrap();
            let lower = l1_lower_bound(&sig, &bounds);
            let exact = l1_distance(&q, &db.histogram(id).unwrap());
            assert!(
                lower <= exact + 1e-9,
                "{id}: lower bound {lower} exceeds exact {exact}"
            );
        }
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let (db, _) = setup();
        let q = probe(4);
        let out = knn_augmented(&db, &q, 0, RuleProfile::Conservative).unwrap();
        assert!(out.neighbours.is_empty());
        let total = db.ids().len();
        let out = knn_augmented(&db, &q, total + 10, RuleProfile::Conservative).unwrap();
        assert_eq!(out.neighbours.len(), total);
        // Ascending order.
        for w in out.neighbours.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn exact_match_ranks_first() {
        let (db, bases) = setup();
        let q = probe(4); // equals the rows=4 base exactly
        let out = knn_augmented(&db, &q, 1, RuleProfile::Conservative).unwrap();
        assert!(out.neighbours[0].0 < 1e-12);
        assert_eq!(out.neighbours[0].1, bases[2]);
    }
}

//! Query planning: which execution strategy a query runs under.

use std::fmt;

/// The execution strategy for a color range query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryPlan {
    /// Instantiate every edited image and test exact histograms — ground
    /// truth, no approximation, maximal cost.
    Instantiate,
    /// Rule-Based Method (§3): BOUNDS per edited image, exact histograms for
    /// binary images. "Without data structure" in Figures 3–4.
    Rbm,
    /// Bound-Widening Method (§4): Figure 2 over the Main/Unclassified
    /// structure. "With data structure" in Figures 3–4.
    Bwm,
    /// Bound-interval index lookup (§3.1's "organize histograms in an
    /// index", realized over BOUNDS results): answer from memoized per-bin
    /// intervals — no rule walk at query time. Same result set as RBM/BWM.
    Indexed,
}

impl QueryPlan {
    /// Picks the preferred scan plan: BWM when a structure is attached, RBM
    /// otherwise. Instantiation is never chosen automatically, and neither
    /// is `Indexed` — the facade upgrades to it explicitly because serving
    /// from the index carries a freshness obligation (epoch sync) that plain
    /// scans do not.
    pub fn choose(bwm_available: bool) -> QueryPlan {
        if bwm_available {
            QueryPlan::Bwm
        } else {
            QueryPlan::Rbm
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryPlan::Instantiate => "instantiate",
            QueryPlan::Rbm => "rbm",
            QueryPlan::Bwm => "bwm",
            QueryPlan::Indexed => "indexed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_prefers_bwm() {
        assert_eq!(QueryPlan::choose(true), QueryPlan::Bwm);
        assert_eq!(QueryPlan::choose(false), QueryPlan::Rbm);
    }

    #[test]
    fn display_names() {
        assert_eq!(QueryPlan::Instantiate.to_string(), "instantiate");
        assert_eq!(QueryPlan::Rbm.to_string(), "rbm");
        assert_eq!(QueryPlan::Bwm.to_string(), "bwm");
        assert_eq!(QueryPlan::Indexed.to_string(), "indexed");
    }
}

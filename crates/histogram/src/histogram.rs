//! Color histograms: absolute per-bin pixel counts plus the image total.
//!
//! We store *counts*, not percentages, because the Table 1 rules of the
//! paper manipulate "the total number of pixels that are in the image as well
//! as the minimum and maximum number of pixels that are in bin HB" and only
//! divide at comparison time.

use crate::quantizer::Quantizer;
use mmdb_imaging::RasterImage;
use serde::{Deserialize, Serialize};

/// A color histogram over a fixed quantizer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorHistogram {
    bins: Vec<u64>,
    total: u64,
}

impl ColorHistogram {
    /// An all-zero histogram with `bin_count` bins.
    pub fn zeroed(bin_count: usize) -> Self {
        ColorHistogram {
            bins: vec![0; bin_count],
            total: 0,
        }
    }

    /// Extracts the histogram of `image` under `quantizer` in a single pass
    /// over the flat pixel slice.
    pub fn extract(image: &RasterImage, quantizer: &dyn Quantizer) -> Self {
        let mut bins = vec![0u64; quantizer.bin_count()];
        for &p in image.pixels() {
            bins[quantizer.bin_of(p)] += 1;
        }
        ColorHistogram {
            bins,
            total: image.pixel_count(),
        }
    }

    /// Builds a histogram from raw parts.
    ///
    /// # Panics
    /// Panics when the bin counts do not sum to `total`.
    pub fn from_counts(bins: Vec<u64>, total: u64) -> Self {
        assert_eq!(
            bins.iter().sum::<u64>(),
            total,
            "bin counts must sum to the total"
        );
        ColorHistogram { bins, total }
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Pixel count in `bin`.
    #[inline]
    pub fn count(&self, bin: usize) -> u64 {
        self.bins[bin]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total pixels in the image (`imagesize` in the paper).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of pixels in `bin`, in `[0, 1]`. Zero for an empty image.
    #[inline]
    pub fn fraction(&self, bin: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[bin] as f64 / self.total as f64
        }
    }

    /// The normalized signature `<x1..xn>` with `Σ xi = 1` used by the
    /// similarity functions and the R-tree index.
    pub fn signature(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        let inv = 1.0 / self.total as f64;
        self.bins.iter().map(|&c| c as f64 * inv).collect()
    }

    /// The bin with the largest population (ties resolve to the lowest
    /// index), or `None` for an empty histogram.
    pub fn dominant_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// Bins with a non-zero population, as `(bin, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Accumulates another histogram into this one (used when pooling
    /// statistics over a collection).
    ///
    /// # Panics
    /// Panics on mismatched bin counts.
    pub fn accumulate(&mut self, other: &ColorHistogram) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram bin counts differ"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::RgbQuantizer;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    fn q() -> RgbQuantizer {
        RgbQuantizer::default_64()
    }

    #[test]
    fn extract_counts_match_image() {
        let mut img = RasterImage::filled(10, 10, Rgb::RED).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 10, 3), Rgb::BLUE);
        let h = ColorHistogram::extract(&img, &q());
        assert_eq!(h.total(), 100);
        assert_eq!(h.count(q().bin_of(Rgb::RED)), 70);
        assert_eq!(h.count(q().bin_of(Rgb::BLUE)), 30);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn fractions_and_signature() {
        let mut img = RasterImage::filled(4, 4, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 4, 1), Rgb::BLACK);
        let h = ColorHistogram::extract(&img, &q());
        assert!((h.fraction(q().bin_of(Rgb::WHITE)) - 0.75).abs() < 1e-12);
        let sig = h.signature();
        assert_eq!(sig.len(), 64);
        assert!((sig.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_bin() {
        let mut img = RasterImage::filled(4, 4, Rgb::GREEN).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 1, 1), Rgb::RED);
        let h = ColorHistogram::extract(&img, &q());
        assert_eq!(h.dominant_bin(), Some(q().bin_of(Rgb::GREEN)));
        assert_eq!(ColorHistogram::zeroed(64).dominant_bin(), None);
    }

    #[test]
    fn nonzero_iterates_sparse_bins() {
        let img = RasterImage::filled(2, 2, Rgb::BLUE).unwrap();
        let h = ColorHistogram::extract(&img, &q());
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(q().bin_of(Rgb::BLUE), 4)]);
    }

    #[test]
    fn accumulate_sums() {
        let a_img = RasterImage::filled(2, 2, Rgb::RED).unwrap();
        let b_img = RasterImage::filled(3, 1, Rgb::BLUE).unwrap();
        let mut a = ColorHistogram::extract(&a_img, &q());
        let b = ColorHistogram::extract(&b_img, &q());
        a.accumulate(&b);
        assert_eq!(a.total(), 7);
        assert_eq!(a.count(q().bin_of(Rgb::RED)), 4);
        assert_eq!(a.count(q().bin_of(Rgb::BLUE)), 3);
    }

    #[test]
    #[should_panic(expected = "bin counts must sum")]
    fn from_counts_validates() {
        ColorHistogram::from_counts(vec![1, 2, 3], 7);
    }

    #[test]
    fn zeroed_fraction_is_zero() {
        let h = ColorHistogram::zeroed(8);
        assert_eq!(h.fraction(3), 0.0);
        assert_eq!(h.signature(), vec![0.0; 8]);
    }
}

//! Edge-orientation (shape) histograms — the hook for the paper's §6 future
//! work: "it will be necessary to develop approaches for other common
//! features besides color, such as texture and shape."
//!
//! This module supplies the *feature side* of that program: a classic
//! Sobel-gradient orientation histogram, the shape descriptor road-sign
//! systems of the paper's motivating example (§1) rely on. Rule-based
//! bounding of shape features under editing operations remains open
//! research; the MMDBMS answers shape queries exactly for binary images and
//! by instantiation for edited ones.

use mmdb_imaging::RasterImage;
use serde::{Deserialize, Serialize};

/// A histogram over gradient orientations.
///
/// Orientations are taken modulo π (an edge and its reverse are the same
/// shape evidence) and quantized uniformly into `bins`. Only pixels whose
/// gradient magnitude exceeds the extraction threshold contribute — `total`
/// counts *edge* pixels, not all pixels.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeHistogram {
    bins: Vec<u64>,
    total: u64,
}

impl EdgeHistogram {
    /// Extracts the orientation histogram of `image`.
    ///
    /// * `bins` — orientation sectors over `[0, π)`;
    /// * `magnitude_threshold` — minimum Sobel magnitude (on the luma
    ///   channel, range roughly `0..=1020`) for a pixel to count as an edge.
    ///   `64` is a reasonable default for the synthetic collections.
    ///
    /// # Panics
    /// Panics when `bins == 0`.
    pub fn extract(image: &RasterImage, bins: usize, magnitude_threshold: u32) -> Self {
        assert!(bins > 0, "need at least one orientation bin");
        let mut counts = vec![0u64; bins];
        let mut total = 0u64;
        let (w, h) = (image.width() as i64, image.height() as i64);
        // Luma plane with clamped borders.
        let luma = |x: i64, y: i64| -> i32 {
            image
                .get(x.clamp(0, w - 1) as u32, y.clamp(0, h - 1) as u32)
                .luma() as i32
        };
        for y in 0..h {
            for x in 0..w {
                // Sobel kernels.
                let gx = -luma(x - 1, y - 1) - 2 * luma(x - 1, y) - luma(x - 1, y + 1)
                    + luma(x + 1, y - 1)
                    + 2 * luma(x + 1, y)
                    + luma(x + 1, y + 1);
                let gy = -luma(x - 1, y - 1) - 2 * luma(x, y - 1) - luma(x + 1, y - 1)
                    + luma(x - 1, y + 1)
                    + 2 * luma(x, y + 1)
                    + luma(x + 1, y + 1);
                let mag_sq = (gx * gx + gy * gy) as u64;
                if mag_sq < (magnitude_threshold as u64).pow(2) {
                    continue;
                }
                // Orientation of the *edge* (perpendicular to the gradient),
                // folded into [0, π).
                let theta = (gy as f64).atan2(gx as f64) + std::f64::consts::FRAC_PI_2;
                let folded = theta.rem_euclid(std::f64::consts::PI);
                let bin = ((folded / std::f64::consts::PI) * bins as f64) as usize;
                counts[bin.min(bins - 1)] += 1;
                total += 1;
            }
        }
        EdgeHistogram {
            bins: counts,
            total,
        }
    }

    /// Number of orientation bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Edge pixels in `bin`.
    pub fn count(&self, bin: usize) -> u64 {
        self.bins[bin]
    }

    /// Total edge pixels.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized orientation signature (`Σ = 1`, or all zeros for an image
    /// with no edges).
    pub fn signature(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        let inv = 1.0 / self.total as f64;
        self.bins.iter().map(|&c| c as f64 * inv).collect()
    }

    /// Edge density: edge pixels per image pixel — a scale-free "shapeness"
    /// scalar. Needs the source image's pixel count.
    pub fn density(&self, image_pixels: u64) -> f64 {
        if image_pixels == 0 {
            0.0
        } else {
            self.total as f64 / image_pixels as f64
        }
    }

    /// L1 distance between normalized signatures — the shape analog of the
    /// color L1; in `[0, 2]`.
    pub fn l1(&self, other: &EdgeHistogram) -> f64 {
        assert_eq!(
            self.bin_count(),
            other.bin_count(),
            "orientation bin counts differ"
        );
        self.signature()
            .iter()
            .zip(other.signature())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Circular cross-correlation match: the minimum L1 over all bin
    /// rotations — makes the comparison rotation-invariant, which matters
    /// for shapes (a rotated sign keeps its orientation *profile*, shifted).
    pub fn l1_rotation_invariant(&self, other: &EdgeHistogram) -> f64 {
        assert_eq!(self.bin_count(), other.bin_count());
        let sa = self.signature();
        let sb = other.signature();
        let n = sa.len();
        (0..n)
            .map(|shift| {
                sa.iter()
                    .enumerate()
                    .map(|(i, a)| (a - sb[(i + shift) % n]).abs())
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    fn canvas() -> RasterImage {
        RasterImage::filled(64, 64, Rgb::BLACK).unwrap()
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = RasterImage::filled(32, 32, Rgb::new(120, 130, 140)).unwrap();
        let h = EdgeHistogram::extract(&img, 8, 64);
        assert_eq!(h.total(), 0);
        assert_eq!(h.signature(), vec![0.0; 8]);
        assert_eq!(h.density(img.pixel_count()), 0.0);
    }

    #[test]
    fn vertical_stripe_produces_vertical_edges() {
        let mut img = canvas();
        draw::fill_rect(&mut img, &Rect::new(28, 0, 36, 64), Rgb::WHITE);
        let h = EdgeHistogram::extract(&img, 8, 64);
        assert!(h.total() > 0);
        // A vertical boundary has a horizontal gradient → vertical edge
        // orientation ≈ π/2 → middle bins of the 8-bin histogram.
        let dominant = (0..8).max_by_key(|&b| h.count(b)).unwrap();
        assert!(
            dominant == 3 || dominant == 4,
            "dominant orientation bin {dominant}, counts {:?}",
            (0..8).map(|b| h.count(b)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn horizontal_stripe_is_orthogonal_to_vertical() {
        let mut v = canvas();
        draw::fill_rect(&mut v, &Rect::new(28, 0, 36, 64), Rgb::WHITE);
        let mut hz = canvas();
        draw::fill_rect(&mut hz, &Rect::new(0, 28, 64, 36), Rgb::WHITE);
        let hv = EdgeHistogram::extract(&v, 8, 64);
        let hh = EdgeHistogram::extract(&hz, 8, 64);
        // Plain L1 sees them as very different...
        assert!(hv.l1(&hh) > 1.0, "L1 = {}", hv.l1(&hh));
        // ...but rotation-invariant matching recognizes the same shape.
        assert!(
            hv.l1_rotation_invariant(&hh) < 0.5,
            "rotation-invariant L1 = {}",
            hv.l1_rotation_invariant(&hh)
        );
    }

    #[test]
    fn circle_spreads_orientations_rectangle_concentrates() {
        let mut circle = canvas();
        draw::fill_circle(&mut circle, 32, 32, 20, Rgb::WHITE);
        let mut rect = canvas();
        draw::fill_rect(&mut rect, &Rect::new(12, 12, 52, 52), Rgb::WHITE);
        let hc = EdgeHistogram::extract(&circle, 8, 64);
        let hr = EdgeHistogram::extract(&rect, 8, 64);
        // Rectangle edges concentrate in 2 orientations; circle spreads.
        let spread = |h: &EdgeHistogram| {
            let sig = h.signature();
            let mut s = sig.clone();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            s[0] + s[1] // mass of the two dominant orientations
        };
        assert!(
            spread(&hr) > spread(&hc) + 0.15,
            "rect top2 {:.2} vs circle top2 {:.2}",
            spread(&hr),
            spread(&hc)
        );
    }

    #[test]
    fn distances_axioms() {
        let mut a = canvas();
        draw::fill_circle(&mut a, 32, 32, 15, Rgb::WHITE);
        let mut b = canvas();
        draw::fill_rect(&mut b, &Rect::new(10, 10, 50, 50), Rgb::WHITE);
        let ha = EdgeHistogram::extract(&a, 12, 64);
        let hb = EdgeHistogram::extract(&b, 12, 64);
        assert_eq!(ha.l1(&ha), 0.0);
        assert!((ha.l1(&hb) - hb.l1(&ha)).abs() < 1e-12);
        assert!(ha.l1_rotation_invariant(&hb) <= ha.l1(&hb) + 1e-12);
        assert!(ha.l1(&hb) <= 2.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "orientation bin counts differ")]
    fn mismatched_bins_panic() {
        let img = canvas();
        let a = EdgeHistogram::extract(&img, 8, 64);
        let b = EdgeHistogram::extract(&img, 12, 64);
        a.l1(&b);
    }
}

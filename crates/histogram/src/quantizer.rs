//! Uniform color-space quantizers.
//!
//! A quantizer maps every 24-bit RGB color to one of a fixed,
//! "system-dependent number of divisions" (§3.1) — the histogram bins. All
//! retrieval components (feature extraction, the Table 1 rules, queries) must
//! agree on one quantizer; the storage engine records which one a database
//! was built with.

use mmdb_imaging::Rgb;

/// Maps colors to histogram bins.
pub trait Quantizer: Send + Sync {
    /// Total number of bins.
    fn bin_count(&self) -> usize;

    /// The bin index of `color`, always `< bin_count()`.
    fn bin_of(&self, color: Rgb) -> usize;

    /// A representative color for `bin` (the bin-cell center). Used for
    /// debugging, visualization and query-by-color-name helpers; `bin` must
    /// be `< bin_count()`.
    fn representative(&self, bin: usize) -> Rgb;

    /// A short, stable description, persisted in the database catalog so a
    /// reopened database can verify it was built with the same quantizer.
    fn describe(&self) -> String;
}

/// Uniform quantization of the RGB cube into `d × d × d` bins.
///
/// The paper's default setup: with `d = 4` this yields the classic 64-bin
/// color histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RgbQuantizer {
    divisions: u32,
}

impl RgbQuantizer {
    /// Creates a quantizer with `divisions` cells per channel.
    ///
    /// # Panics
    /// Panics when `divisions` is 0 or greater than 256.
    pub fn new(divisions: u32) -> Self {
        assert!(
            (1..=256).contains(&divisions),
            "divisions must be in 1..=256, got {divisions}"
        );
        RgbQuantizer { divisions }
    }

    /// The 64-bin (4×4×4) default.
    pub fn default_64() -> Self {
        RgbQuantizer::new(4)
    }

    /// Cells per channel.
    pub fn divisions(&self) -> u32 {
        self.divisions
    }

    #[inline]
    fn channel_cell(&self, v: u8) -> u32 {
        // Even split of 0..=255 into `divisions` cells.
        (v as u32 * self.divisions) / 256
    }
}

impl Quantizer for RgbQuantizer {
    fn bin_count(&self) -> usize {
        (self.divisions * self.divisions * self.divisions) as usize
    }

    #[inline]
    fn bin_of(&self, color: Rgb) -> usize {
        let r = self.channel_cell(color.r);
        let g = self.channel_cell(color.g);
        let b = self.channel_cell(color.b);
        ((r * self.divisions + g) * self.divisions + b) as usize
    }

    fn representative(&self, bin: usize) -> Rgb {
        let d = self.divisions as usize;
        assert!(bin < d * d * d, "bin {bin} out of range");
        let b = bin % d;
        let g = (bin / d) % d;
        let r = bin / (d * d);
        let center = |cell: usize| -> u8 {
            let lo = cell * 256 / d;
            let hi = ((cell + 1) * 256 / d).min(256);
            ((lo + hi) / 2).min(255) as u8
        };
        Rgb::new(center(r), center(g), center(b))
    }

    fn describe(&self) -> String {
        format!("rgb-uniform/{}", self.divisions)
    }
}

/// Uniform quantization in HSV space: `h_div` hue sectors × `s_div`
/// saturation bands × `v_div` value bands.
///
/// The common CBIR configuration 18×3×3 = 162 bins is
/// [`HsvQuantizer::default_162`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HsvQuantizer {
    h_div: u32,
    s_div: u32,
    v_div: u32,
}

impl HsvQuantizer {
    /// Creates an `h_div × s_div × v_div` quantizer.
    ///
    /// # Panics
    /// Panics when any division count is zero.
    pub fn new(h_div: u32, s_div: u32, v_div: u32) -> Self {
        assert!(
            h_div > 0 && s_div > 0 && v_div > 0,
            "divisions must be positive"
        );
        HsvQuantizer {
            h_div,
            s_div,
            v_div,
        }
    }

    /// The 162-bin (18×3×3) configuration.
    pub fn default_162() -> Self {
        HsvQuantizer::new(18, 3, 3)
    }
}

impl Quantizer for HsvQuantizer {
    fn bin_count(&self) -> usize {
        (self.h_div * self.s_div * self.v_div) as usize
    }

    fn bin_of(&self, color: Rgb) -> usize {
        let hsv = color.to_hsv();
        let h = (((hsv.h / 360.0) * self.h_div as f32) as u32).min(self.h_div - 1);
        let s = ((hsv.s * self.s_div as f32) as u32).min(self.s_div - 1);
        let v = ((hsv.v * self.v_div as f32) as u32).min(self.v_div - 1);
        ((h * self.s_div + s) * self.v_div + v) as usize
    }

    fn representative(&self, bin: usize) -> Rgb {
        assert!(bin < self.bin_count(), "bin {bin} out of range");
        let v = bin as u32 % self.v_div;
        let s = (bin as u32 / self.v_div) % self.s_div;
        let h = bin as u32 / (self.v_div * self.s_div);
        mmdb_imaging::Hsv {
            h: (h as f32 + 0.5) * 360.0 / self.h_div as f32,
            s: (s as f32 + 0.5) / self.s_div as f32,
            v: (v as f32 + 0.5) / self.v_div as f32,
        }
        .to_rgb()
    }

    fn describe(&self) -> String {
        format!("hsv-uniform/{}x{}x{}", self.h_div, self.s_div, self.v_div)
    }
}

/// Quantizes by luminance only — a degenerate single-axis histogram useful
/// for tests and for grayscale collections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrayQuantizer {
    levels: u32,
}

impl GrayQuantizer {
    /// Creates a quantizer with `levels` gray bands.
    ///
    /// # Panics
    /// Panics when `levels` is 0 or greater than 256.
    pub fn new(levels: u32) -> Self {
        assert!((1..=256).contains(&levels), "levels must be in 1..=256");
        GrayQuantizer { levels }
    }
}

impl Quantizer for GrayQuantizer {
    fn bin_count(&self) -> usize {
        self.levels as usize
    }

    fn bin_of(&self, color: Rgb) -> usize {
        ((color.luma() as u32 * self.levels) / 256) as usize
    }

    fn representative(&self, bin: usize) -> Rgb {
        assert!(bin < self.levels as usize);
        let lo = bin * 256 / self.levels as usize;
        let hi = ((bin + 1) * 256 / self.levels as usize).min(256);
        Rgb::gray(((lo + hi) / 2).min(255) as u8)
    }

    fn describe(&self) -> String {
        format!("gray/{}", self.levels)
    }
}

/// Reconstructs a quantizer from its [`Quantizer::describe`] string, used
/// when reopening a persisted database.
pub fn from_description(desc: &str) -> Option<Box<dyn Quantizer>> {
    if let Some(d) = desc.strip_prefix("rgb-uniform/") {
        let d: u32 = d.parse().ok()?;
        if (1..=256).contains(&d) {
            return Some(Box::new(RgbQuantizer::new(d)));
        }
        return None;
    }
    if let Some(dims) = desc.strip_prefix("hsv-uniform/") {
        let parts: Vec<u32> = dims.split('x').filter_map(|p| p.parse().ok()).collect();
        if parts.len() == 3 && parts.iter().all(|&p| p > 0) {
            return Some(Box::new(HsvQuantizer::new(parts[0], parts[1], parts[2])));
        }
        return None;
    }
    if let Some(l) = desc.strip_prefix("gray/") {
        let l: u32 = l.parse().ok()?;
        if (1..=256).contains(&l) {
            return Some(Box::new(GrayQuantizer::new(l)));
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_bins_cover_range() {
        let q = RgbQuantizer::default_64();
        assert_eq!(q.bin_count(), 64);
        for r in [0u8, 63, 64, 127, 128, 191, 192, 255] {
            for g in [0u8, 255] {
                for b in [0u8, 255] {
                    let bin = q.bin_of(Rgb::new(r, g, b));
                    assert!(bin < 64);
                }
            }
        }
        // Corner bins.
        assert_eq!(q.bin_of(Rgb::BLACK), 0);
        assert_eq!(q.bin_of(Rgb::WHITE), 63);
    }

    #[test]
    fn rgb_bin_boundaries() {
        let q = RgbQuantizer::new(4);
        // 0..=63 -> cell 0, 64..=127 -> cell 1, etc.
        assert_eq!(q.bin_of(Rgb::new(63, 0, 0)), 0);
        assert_eq!(q.bin_of(Rgb::new(64, 0, 0)), 16);
        assert_eq!(q.bin_of(Rgb::new(0, 64, 0)), 4);
        assert_eq!(q.bin_of(Rgb::new(0, 0, 64)), 1);
    }

    #[test]
    fn rgb_representative_maps_back_to_its_bin() {
        for d in [1u32, 2, 4, 8] {
            let q = RgbQuantizer::new(d);
            for bin in 0..q.bin_count() {
                assert_eq!(q.bin_of(q.representative(bin)), bin, "d={d} bin={bin}");
            }
        }
    }

    #[test]
    fn hsv_representative_maps_back_to_its_bin() {
        let q = HsvQuantizer::default_162();
        assert_eq!(q.bin_count(), 162);
        let mut hits = 0;
        for bin in 0..q.bin_count() {
            // HSV↔RGB round-tripping is lossy at extreme saturation/value, so
            // require the vast majority of representatives to map home.
            if q.bin_of(q.representative(bin)) == bin {
                hits += 1;
            }
        }
        assert!(hits >= 150, "only {hits}/162 representatives map back");
    }

    #[test]
    fn hsv_separates_hues() {
        let q = HsvQuantizer::default_162();
        assert_ne!(q.bin_of(Rgb::RED), q.bin_of(Rgb::GREEN));
        assert_ne!(q.bin_of(Rgb::GREEN), q.bin_of(Rgb::BLUE));
    }

    #[test]
    fn gray_quantizer_bands() {
        let q = GrayQuantizer::new(4);
        assert_eq!(q.bin_of(Rgb::BLACK), 0);
        assert_eq!(q.bin_of(Rgb::WHITE), 3);
        assert_eq!(q.bin_of(Rgb::gray(128)), 2);
        assert_eq!(q.bin_of(q.representative(1)), 1);
    }

    #[test]
    fn describe_roundtrip() {
        let qs: Vec<Box<dyn Quantizer>> = vec![
            Box::new(RgbQuantizer::new(8)),
            Box::new(HsvQuantizer::new(12, 4, 2)),
            Box::new(GrayQuantizer::new(16)),
        ];
        for q in qs {
            let rebuilt = from_description(&q.describe()).expect("parses");
            assert_eq!(rebuilt.describe(), q.describe());
            assert_eq!(rebuilt.bin_count(), q.bin_count());
            assert_eq!(
                rebuilt.bin_of(Rgb::new(10, 200, 40)),
                q.bin_of(Rgb::new(10, 200, 40))
            );
        }
        assert!(from_description("bogus/3").is_none());
        assert!(from_description("rgb-uniform/0").is_none());
        assert!(from_description("hsv-uniform/1x2").is_none());
    }

    #[test]
    #[should_panic(expected = "divisions must be in 1..=256")]
    fn rgb_zero_divisions_panics() {
        RgbQuantizer::new(0);
    }

    #[test]
    fn single_bin_quantizer() {
        let q = RgbQuantizer::new(1);
        assert_eq!(q.bin_count(), 1);
        assert_eq!(q.bin_of(Rgb::WHITE), 0);
        assert_eq!(q.bin_of(Rgb::BLACK), 0);
    }
}

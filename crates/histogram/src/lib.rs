#![warn(missing_docs)]

//! # mmdb-histogram
//!
//! The color-feature layer of §3.1: "generate a histogram for each image
//! stored in the database where each histogram bin contains the percentage of
//! pixels in that image that are of a particular color. These colors are
//! usually obtained by uniformly quantizing the space of a color model such
//! as RGB, HSV, or Luv."
//!
//! This crate provides:
//!
//! * [`Quantizer`] implementations — uniform RGB ([`RgbQuantizer`]), HSV
//!   ([`HsvQuantizer`]) and grayscale ([`GrayQuantizer`]) bin mappings,
//! * [`ColorHistogram`] — absolute pixel counts per bin plus the total,
//!   extracted in one pass over the flat pixel slice,
//! * [`similarity`] — the paper's two comparison functions, Histogram
//!   Intersection (Swain & Ballard) and the L<sub>p</sub> distances.

pub mod edge;
pub mod histogram;
pub mod quantizer;
pub mod similarity;
pub mod texture;

pub use edge::EdgeHistogram;
pub use histogram::ColorHistogram;
pub use quantizer::{GrayQuantizer, HsvQuantizer, Quantizer, RgbQuantizer};
pub use similarity::{histogram_intersection, l1_distance, l2_distance, lp_distance};
pub use texture::{LbpKind, TextureHistogram};

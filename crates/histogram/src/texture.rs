//! Local-binary-pattern (texture) histograms — the second half of the
//! paper's §6 future-work features ("texture and shape").
//!
//! LBP is the classic texture descriptor contemporaneous with the paper:
//! each pixel is encoded by which of its 8 neighbours are at least as bright
//! as it is, and the image is summarized by the histogram of those 256
//! codes (or the 59-bin "uniform patterns" reduction implemented here as an
//! option). As with shape, rule-based bounding of texture under editing
//! operations is open research; the MMDBMS answers texture queries exactly
//! for binary images and via instantiation for edited ones.

use mmdb_imaging::RasterImage;
use serde::{Deserialize, Serialize};

/// Which LBP encoding to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbpKind {
    /// All 256 raw 8-bit codes.
    Full256,
    /// The 58 "uniform" patterns (≤ 2 bit transitions around the circle)
    /// plus one catch-all bin — the standard dimensionality reduction.
    Uniform59,
}

/// A texture histogram of local binary patterns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextureHistogram {
    kind: LbpKind,
    bins: Vec<u64>,
    total: u64,
}

/// Number of 0↔1 transitions in the circular 8-bit pattern.
fn transitions(code: u8) -> u32 {
    let rotated = code.rotate_left(1);
    (code ^ rotated).count_ones()
}

/// Maps a raw code to its bin under the chosen encoding.
fn bin_of(code: u8, kind: LbpKind) -> usize {
    match kind {
        LbpKind::Full256 => code as usize,
        LbpKind::Uniform59 => {
            if transitions(code) <= 2 {
                // Rank the uniform codes by value: build the rank table once.
                // (58 uniform codes exist; computed on the fly via counting.)
                let mut rank = 0usize;
                for c in 0u16..(code as u16) {
                    if transitions(c as u8) <= 2 {
                        rank += 1;
                    }
                }
                rank
            } else {
                58 // catch-all
            }
        }
    }
}

impl TextureHistogram {
    /// Extracts the LBP histogram over the luma plane. Border pixels use
    /// clamped neighbours.
    pub fn extract(image: &RasterImage, kind: LbpKind) -> Self {
        let bins_n = match kind {
            LbpKind::Full256 => 256,
            LbpKind::Uniform59 => 59,
        };
        let mut bins = vec![0u64; bins_n];
        let (w, h) = (image.width() as i64, image.height() as i64);
        let luma = |x: i64, y: i64| -> u8 {
            image
                .get(x.clamp(0, w - 1) as u32, y.clamp(0, h - 1) as u32)
                .luma()
        };
        // Clockwise neighbour offsets starting at the top-left.
        const OFFSETS: [(i64, i64); 8] = [
            (-1, -1),
            (0, -1),
            (1, -1),
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
        ];
        for y in 0..h {
            for x in 0..w {
                let center = luma(x, y);
                let mut code = 0u8;
                for (i, (dx, dy)) in OFFSETS.iter().enumerate() {
                    if luma(x + dx, y + dy) >= center {
                        code |= 1 << i;
                    }
                }
                bins[bin_of(code, kind)] += 1;
            }
        }
        TextureHistogram {
            kind,
            bins,
            total: image.pixel_count(),
        }
    }

    /// The encoding used.
    pub fn kind(&self) -> LbpKind {
        self.kind
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Pixels with code in `bin`.
    pub fn count(&self, bin: usize) -> u64 {
        self.bins[bin]
    }

    /// Total pixels.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized signature.
    pub fn signature(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        let inv = 1.0 / self.total as f64;
        self.bins.iter().map(|&c| c as f64 * inv).collect()
    }

    /// L1 distance between normalized signatures; in `[0, 2]`.
    ///
    /// # Panics
    /// Panics when the encodings differ.
    pub fn l1(&self, other: &TextureHistogram) -> f64 {
        assert_eq!(self.kind, other.kind, "texture encodings differ");
        self.signature()
            .iter()
            .zip(other.signature())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    #[test]
    fn uniform_bin_mapping_is_a_bijection_on_uniform_codes() {
        let mut seen = std::collections::HashSet::new();
        let mut uniform = 0;
        for code in 0u16..=255 {
            let code = code as u8;
            let bin = bin_of(code, LbpKind::Uniform59);
            assert!(bin < 59);
            if transitions(code) <= 2 {
                uniform += 1;
                assert!(
                    seen.insert(bin),
                    "uniform code {code} collides at bin {bin}"
                );
            } else {
                assert_eq!(bin, 58);
            }
        }
        assert_eq!(uniform, 58, "there are exactly 58 uniform patterns");
    }

    #[test]
    fn transitions_examples() {
        assert_eq!(transitions(0b0000_0000), 0);
        assert_eq!(transitions(0b1111_1111), 0);
        assert_eq!(transitions(0b0000_1111), 2);
        assert_eq!(transitions(0b0101_0101), 8);
    }

    #[test]
    fn flat_image_is_all_ones_code() {
        let img = RasterImage::filled(16, 16, Rgb::gray(100)).unwrap();
        for kind in [LbpKind::Full256, LbpKind::Uniform59] {
            let h = TextureHistogram::extract(&img, kind);
            assert_eq!(h.total(), 256);
            // Every neighbour equals the center → code 0xFF, a uniform code.
            let expected_bin = bin_of(0xFF, kind);
            assert_eq!(h.count(expected_bin), 256);
        }
    }

    #[test]
    fn stripes_vs_flat_are_far_checker_vs_stripes_differ() {
        let flat = RasterImage::filled(32, 32, Rgb::gray(128)).unwrap();
        let stripes = RasterImage::from_fn(32, 32, |x, _| {
            if x % 2 == 0 {
                Rgb::gray(40)
            } else {
                Rgb::gray(200)
            }
        })
        .unwrap();
        let checker = RasterImage::from_fn(32, 32, |x, y| {
            if (x + y) % 2 == 0 {
                Rgb::gray(40)
            } else {
                Rgb::gray(200)
            }
        })
        .unwrap();
        let hf = TextureHistogram::extract(&flat, LbpKind::Uniform59);
        let hs = TextureHistogram::extract(&stripes, LbpKind::Uniform59);
        // Dark stripe pixels still see all-≥ neighbours (code 0xFF like the
        // flat image), so exactly half the mass moves: L1 = 1.0.
        assert!(hf.l1(&hs) >= 0.9, "flat vs stripes: {}", hf.l1(&hs));
        assert_eq!(hs.l1(&hs), 0.0);
        // Stripe and checker bright-pixel codes are distinct raw patterns
        // but both non-uniform (4 and 8 transitions), so the 59-bin encoding
        // merges them into the catch-all — the full 256-code histogram is
        // needed to tell them apart.
        let hs256 = TextureHistogram::extract(&stripes, LbpKind::Full256);
        let hc256 = TextureHistogram::extract(&checker, LbpKind::Full256);
        assert!(
            hs256.l1(&hc256) > 0.5,
            "stripes vs checker (256): {}",
            hs256.l1(&hc256)
        );
        // Same color population, different texture: color histograms cannot
        // tell these apart, LBP can — the §6 motivation.
        use crate::{ColorHistogram, RgbQuantizer};
        let q = RgbQuantizer::default_64();
        let color_s = ColorHistogram::extract(&stripes, &q);
        let color_c = ColorHistogram::extract(&checker, &q);
        assert_eq!(color_s.counts(), color_c.counts());
    }

    #[test]
    fn full256_total_and_signature() {
        let img =
            RasterImage::from_fn(10, 10, |x, y| Rgb::gray(((x * 13 + y * 7) % 256) as u8)).unwrap();
        let h = TextureHistogram::extract(&img, LbpKind::Full256);
        assert_eq!(h.bin_count(), 256);
        assert_eq!(h.counts_sum(), 100);
        let s: f64 = h.signature().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "texture encodings differ")]
    fn mixed_kinds_panic() {
        let img = RasterImage::filled(4, 4, Rgb::WHITE).unwrap();
        let a = TextureHistogram::extract(&img, LbpKind::Full256);
        let b = TextureHistogram::extract(&img, LbpKind::Uniform59);
        a.l1(&b);
    }

    #[test]
    fn texture_survives_recolor_but_not_blur() {
        // Recoloring (a Modify op) preserves structure; blurring destroys it.
        let mut img = RasterImage::filled(32, 32, Rgb::gray(60)).unwrap();
        for i in 0..16 {
            draw::fill_rect(
                &mut img,
                &Rect::new(i * 2, 0, i * 2 + 1, 32),
                Rgb::gray(190),
            );
        }
        let base = TextureHistogram::extract(&img, LbpKind::Uniform59);
        // Uniform brightness shift keeps relative order → similar LBP.
        let mut brighter = img.clone();
        brighter.map_in_place(|c| Rgb::gray(c.luma().saturating_add(30)));
        let shifted = TextureHistogram::extract(&brighter, LbpKind::Uniform59);
        assert!(
            base.l1(&shifted) < 0.35,
            "shift distance {}",
            base.l1(&shifted)
        );
    }

    impl TextureHistogram {
        fn counts_sum(&self) -> u64 {
            self.bins.iter().sum()
        }
    }
}

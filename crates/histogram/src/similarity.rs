//! Histogram comparison functions.
//!
//! §3.1: "Common functions used to evaluate the similarity between two
//! n-dimensional histograms <x1,…,xn> and <y1,…,yn> include the (1)
//! Histogram Intersection and (2) the Lp-Distances."

use crate::histogram::ColorHistogram;

/// Histogram Intersection (Swain & Ballard, formula (1) of the paper):
/// `Σ min(xi, yi)` over the normalized signatures. Ranges in `[0, 1]` for
/// normalized inputs; 1 means identical color distributions.
pub fn histogram_intersection(a: &ColorHistogram, b: &ColorHistogram) -> f64 {
    assert_eq!(a.bin_count(), b.bin_count(), "histogram bin counts differ");
    let sa = a.signature();
    let sb = b.signature();
    sa.iter().zip(&sb).map(|(x, y)| x.min(*y)).sum()
}

/// L<sub>p</sub> distance (formula (2) of the paper):
/// `(Σ |xi − yi|^p)^(1/p)` over the normalized signatures.
///
/// # Panics
/// Panics when `p < 1`.
pub fn lp_distance(a: &ColorHistogram, b: &ColorHistogram, p: f64) -> f64 {
    assert!(p >= 1.0, "Lp distance requires p >= 1, got {p}");
    assert_eq!(a.bin_count(), b.bin_count(), "histogram bin counts differ");
    let sa = a.signature();
    let sb = b.signature();
    let sum: f64 = sa.iter().zip(&sb).map(|(x, y)| (x - y).abs().powf(p)).sum();
    sum.powf(1.0 / p)
}

/// Manhattan distance — `lp_distance` with `p = 1`, specialized for speed in
/// inner loops.
pub fn l1_distance(a: &ColorHistogram, b: &ColorHistogram) -> f64 {
    assert_eq!(a.bin_count(), b.bin_count(), "histogram bin counts differ");
    let sa = a.signature();
    let sb = b.signature();
    sa.iter().zip(&sb).map(|(x, y)| (x - y).abs()).sum()
}

/// Euclidean distance — `lp_distance` with `p = 2`, specialized for speed.
pub fn l2_distance(a: &ColorHistogram, b: &ColorHistogram) -> f64 {
    assert_eq!(a.bin_count(), b.bin_count(), "histogram bin counts differ");
    let sa = a.signature();
    let sb = b.signature();
    sa.iter()
        .zip(&sb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::RgbQuantizer;
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};

    fn q() -> RgbQuantizer {
        RgbQuantizer::default_64()
    }

    fn solid(color: Rgb) -> ColorHistogram {
        ColorHistogram::extract(&RasterImage::filled(8, 8, color).unwrap(), &q())
    }

    fn half(a: Rgb, b: Rgb) -> ColorHistogram {
        let mut img = RasterImage::filled(8, 8, a).unwrap();
        draw::fill_rect(&mut img, &Rect::new(0, 0, 8, 4), b);
        ColorHistogram::extract(&img, &q())
    }

    #[test]
    fn intersection_identical_is_one() {
        let h = half(Rgb::RED, Rgb::BLUE);
        assert!((histogram_intersection(&h, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_disjoint_is_zero() {
        let a = solid(Rgb::RED);
        let b = solid(Rgb::BLUE);
        assert_eq!(histogram_intersection(&a, &b), 0.0);
    }

    #[test]
    fn intersection_half_overlap() {
        let a = solid(Rgb::RED);
        let b = half(Rgb::RED, Rgb::BLUE);
        assert!((histogram_intersection(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = half(Rgb::RED, Rgb::GREEN);
        let b = half(Rgb::RED, Rgb::BLUE);
        assert_eq!(
            histogram_intersection(&a, &b),
            histogram_intersection(&b, &a)
        );
    }

    #[test]
    fn lp_specializations_agree_with_general() {
        let a = half(Rgb::RED, Rgb::GREEN);
        let b = half(Rgb::BLUE, Rgb::GREEN);
        assert!((l1_distance(&a, &b) - lp_distance(&a, &b, 1.0)).abs() < 1e-12);
        assert!((l2_distance(&a, &b) - lp_distance(&a, &b, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn l1_of_disjoint_solids_is_two() {
        let a = solid(Rgb::RED);
        let b = solid(Rgb::BLUE);
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-12);
        assert!((l2_distance(&a, &b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distances_zero_on_identity() {
        let h = half(Rgb::RED, Rgb::WHITE);
        assert_eq!(l1_distance(&h, &h), 0.0);
        assert_eq!(l2_distance(&h, &h), 0.0);
        assert_eq!(lp_distance(&h, &h, 3.0), 0.0);
    }

    #[test]
    fn triangle_inequality_l2_spot_check() {
        let a = solid(Rgb::RED);
        let b = half(Rgb::RED, Rgb::GREEN);
        let c = solid(Rgb::GREEN);
        assert!(l2_distance(&a, &c) <= l2_distance(&a, &b) + l2_distance(&b, &c) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires p >= 1")]
    fn lp_rejects_sub_one_p() {
        let h = solid(Rgb::RED);
        lp_distance(&h, &h, 0.5);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn mismatched_bins_panic() {
        let a = solid(Rgb::RED);
        let b = ColorHistogram::zeroed(8);
        histogram_intersection(&a, &b);
    }

    #[test]
    fn hsv_quantizer_distances_sane() {
        let q = crate::quantizer::HsvQuantizer::default_162();
        let red = ColorHistogram::extract(&RasterImage::filled(4, 4, Rgb::RED).unwrap(), &q);
        let dark_red =
            ColorHistogram::extract(&RasterImage::filled(4, 4, Rgb::new(180, 0, 0)).unwrap(), &q);
        let blue = ColorHistogram::extract(&RasterImage::filled(4, 4, Rgb::BLUE).unwrap(), &q);
        // Dark red shares the hue sector with red; blue does not.
        assert!(l1_distance(&red, &dark_red) <= l1_distance(&red, &blue));
    }
}

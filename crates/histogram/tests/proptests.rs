//! Property tests for histograms, quantizers and similarity functions.

use mmdb_histogram::{
    histogram_intersection, l1_distance, l2_distance, lp_distance, ColorHistogram, GrayQuantizer,
    HsvQuantizer, Quantizer, RgbQuantizer,
};
use mmdb_imaging::{RasterImage, Rgb};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = RasterImage> {
    (
        2u32..20,
        2u32..20,
        proptest::collection::vec(any::<(u8, u8, u8)>(), 1..6),
    )
        .prop_map(|(w, h, palette)| {
            RasterImage::from_fn(w, h, |x, y| {
                let (r, g, b) = palette[((x * 7 + y * 13) as usize) % palette.len()];
                Rgb::new(r, g, b)
            })
            .unwrap()
        })
}

fn quantizers() -> Vec<Box<dyn Quantizer>> {
    vec![
        Box::new(RgbQuantizer::new(2)),
        Box::new(RgbQuantizer::default_64()),
        Box::new(RgbQuantizer::new(8)),
        Box::new(HsvQuantizer::default_162()),
        Box::new(GrayQuantizer::new(16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Extraction conserves mass under every quantizer: bin counts sum to
    /// the pixel count, and the signature sums to 1.
    #[test]
    fn extraction_conserves_mass(img in arb_image()) {
        for q in quantizers() {
            let h = ColorHistogram::extract(&img, q.as_ref());
            prop_assert_eq!(h.total(), img.pixel_count());
            prop_assert_eq!(h.counts().iter().sum::<u64>(), img.pixel_count());
            let sig_sum: f64 = h.signature().iter().sum();
            prop_assert!((sig_sum - 1.0).abs() < 1e-9, "{} sums to {}", q.describe(), sig_sum);
            // Every pixel's bin is in range.
            for &p in img.pixels() {
                prop_assert!(q.bin_of(p) < q.bin_count());
            }
        }
    }

    /// Similarity-function axioms on random image pairs.
    #[test]
    fn similarity_axioms(a in arb_image(), b in arb_image()) {
        let q = RgbQuantizer::default_64();
        let ha = ColorHistogram::extract(&a, &q);
        let hb = ColorHistogram::extract(&b, &q);
        // Intersection: symmetric, in [0,1], 1 on identity.
        let i_ab = histogram_intersection(&ha, &hb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&i_ab));
        prop_assert!((i_ab - histogram_intersection(&hb, &ha)).abs() < 1e-12);
        prop_assert!((histogram_intersection(&ha, &ha) - 1.0).abs() < 1e-12);
        // Lp: symmetric, zero on identity, L1 ≤ 2, L2 ≤ √2.
        for p in [1.0, 2.0, 3.0] {
            let d = lp_distance(&ha, &hb, p);
            prop_assert!(d >= 0.0);
            prop_assert!((d - lp_distance(&hb, &ha, p)).abs() < 1e-12);
            prop_assert!(lp_distance(&ha, &ha, p) < 1e-12);
        }
        prop_assert!(l1_distance(&ha, &hb) <= 2.0 + 1e-9);
        prop_assert!(l2_distance(&ha, &hb) <= 2f64.sqrt() + 1e-9);
        // L1 and intersection are complementary for normalized histograms:
        // intersection = 1 − L1/2.
        prop_assert!((i_ab - (1.0 - l1_distance(&ha, &hb) / 2.0)).abs() < 1e-9);
    }

    /// Triangle inequality for L1 and L2 over random triples.
    #[test]
    fn lp_triangle_inequality(a in arb_image(), b in arb_image(), c in arb_image()) {
        let q = RgbQuantizer::new(4);
        let ha = ColorHistogram::extract(&a, &q);
        let hb = ColorHistogram::extract(&b, &q);
        let hc = ColorHistogram::extract(&c, &q);
        prop_assert!(l1_distance(&ha, &hc) <= l1_distance(&ha, &hb) + l1_distance(&hb, &hc) + 1e-9);
        prop_assert!(l2_distance(&ha, &hc) <= l2_distance(&ha, &hb) + l2_distance(&hb, &hc) + 1e-9);
    }

    /// Accumulate behaves like extraction over the concatenated pixels.
    #[test]
    fn accumulate_is_union(a in arb_image(), b in arb_image()) {
        let q = RgbQuantizer::default_64();
        let mut acc = ColorHistogram::extract(&a, &q);
        acc.accumulate(&ColorHistogram::extract(&b, &q));
        prop_assert_eq!(acc.total(), a.pixel_count() + b.pixel_count());
        for bin in 0..64 {
            let direct = a.pixels().iter().filter(|&&p| q.bin_of(p) == bin).count() as u64
                + b.pixels().iter().filter(|&&p| q.bin_of(p) == bin).count() as u64;
            prop_assert_eq!(acc.count(bin), direct);
        }
    }

    /// Quantizer describe/rebuild round-trips preserve the bin function.
    #[test]
    fn quantizer_description_roundtrip(color in any::<(u8, u8, u8)>()) {
        let c = Rgb::new(color.0, color.1, color.2);
        for q in quantizers() {
            let rebuilt = mmdb_histogram::quantizer::from_description(&q.describe())
                .expect("description parses");
            prop_assert_eq!(rebuilt.bin_of(c), q.bin_of(c), "{}", q.describe());
        }
    }
}

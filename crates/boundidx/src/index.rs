//! The bound-interval index proper: memoized per-image BOUNDS vectors plus
//! per-bin interval lists, with epoch-stamped synchronization and transitive
//! invalidation through the catalog reference graph.

use crate::interval::{BinIntervals, IntervalEntry};
use mmdb_bwm::SequenceStore;
use mmdb_editops::ImageId;
use mmdb_histogram::Quantizer;
use mmdb_imaging::Rgb;
use mmdb_rules::{
    BoundRange, ColorRangeQuery, InfoResolver, Result, RuleEngine, RuleError, RuleProfile,
};
use mmdb_telemetry::{counter, gauge, histogram};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;

/// Stable slot for a [`RuleProfile`] — the facade keeps one index per
/// profile in a fixed-size array (the profile enum is deliberately small and
/// non-`Hash`).
pub fn profile_slot(profile: RuleProfile) -> usize {
    match profile {
        RuleProfile::Conservative => 0,
        RuleProfile::PaperTable1 => 1,
    }
}

/// Number of profile slots ([`profile_slot`] codomain size).
pub const PROFILE_SLOTS: usize = 2;

/// Below this many fresh entries, [`BoundIndex::sync`] inserts them one by
/// one (cheap for steady-state churn); at or above it, entries are staged
/// per bin and merged with [`BinIntervals::insert_batch`] so a large
/// catch-up never pays per-entry vector shifts.
const BATCH_SYNC_THRESHOLD: usize = 16;

/// What one [`BoundIndex::sync`] call did — surfaced in query traces so
/// `mmdbctl explain` shows incremental maintenance cost next to lookup cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Entries added (newly inserted images plus re-added invalidation
    /// victims).
    pub added: usize,
    /// Entries removed (deleted images plus their transitive dependents).
    pub removed: usize,
    /// Fresh BOUNDS vector computations performed (memo misses).
    pub recomputed: usize,
}

/// One indexed range lookup: the candidate set plus how many resident
/// intervals were consulted (each a rule walk or histogram probe avoided).
#[derive(Clone, Debug, Default)]
pub struct IndexedLookup {
    /// Candidate images, unsorted. Same set as the RBM/BWM scans emit.
    pub ids: Vec<ImageId>,
    /// Intervals scanned to answer the query (the smaller endpoint prefix).
    pub scanned: usize,
}

/// The resident per-image record: the full memoized bounds vector (one
/// [`BoundRange`] per bin — this *is* the `(ImageId, bin, RuleProfile)`
/// memo, realized as a per-profile index holding per-image vectors) plus the
/// ids this image's sequence references (base and merge targets), which are
/// the edges the transitive invalidation walks.
#[derive(Clone, Debug)]
struct IndexEntry {
    bounds: Vec<BoundRange>,
    refs: Vec<ImageId>,
}

/// Bound-interval index for one rule profile.
///
/// All mutation goes through `&mut self`; the facade wraps the index in a
/// `RwLock` and enforces the serving invariant that a lookup is only
/// answered when [`BoundIndex::synced_epoch`] equals the storage engine's
/// current mutation epoch — a stale entry is therefore never served even if
/// an eager invalidation hook was missed.
#[derive(Clone, Debug)]
pub struct BoundIndex {
    profile: RuleProfile,
    bins: Vec<BinIntervals>,
    entries: HashMap<ImageId, IndexEntry>,
    /// referenced id → images whose bounds depend on it.
    dependents: HashMap<ImageId, BTreeSet<ImageId>>,
    synced_epoch: u64,
    /// When the index last reconciled to a catalog snapshot (build or sync).
    last_synced_at: Instant,
    /// Entries dropped by [`BoundIndex::invalidate`] since the last
    /// reconciliation — the eager-invalidation share of the resync backlog.
    invalidated_since_sync: u64,
}

impl BoundIndex {
    /// An empty index for `profile` over `bin_count` histogram bins.
    pub fn new(profile: RuleProfile, bin_count: usize) -> Self {
        BoundIndex {
            profile,
            bins: vec![BinIntervals::default(); bin_count],
            entries: HashMap::new(),
            dependents: HashMap::new(),
            synced_epoch: 0,
            last_synced_at: Instant::now(),
            invalidated_since_sync: 0,
        }
    }

    /// The rule profile this index memoizes bounds for.
    pub fn profile(&self) -> RuleProfile {
        self.profile
    }

    /// The storage mutation epoch this index was last synchronized to.
    pub fn synced_epoch(&self) -> u64 {
        self.synced_epoch
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of histogram bins this index is organized over (the width of
    /// every entry's bounds vector).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// True when no image is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` currently has a resident entry.
    pub fn contains(&self, id: ImageId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Wall-clock time since the last [`BoundIndex::build`] or
    /// [`BoundIndex::sync`] reconciled this index to a catalog snapshot.
    /// Staleness itself is epoch lag, not this — wall clock only bounds how
    /// long ago the reconciliation happened.
    pub fn since_last_sync(&self) -> std::time::Duration {
        self.last_synced_at.elapsed()
    }

    /// Entries eagerly invalidated since the last reconciliation (they will
    /// be re-admitted by the next sync if still in the catalog).
    pub fn invalidated_since_sync(&self) -> u64 {
        self.invalidated_since_sync
    }

    /// Bulk build over the full catalog, stamping the result with `epoch`
    /// (capture the storage epoch *before* reading the id lists — a
    /// concurrent mutation then leaves the stamp behind the real epoch and
    /// the next lookup re-syncs, never the reverse). Edited images' bounds
    /// vectors are computed on `threads` crossbeam scoped workers, each with
    /// its own rule engine.
    #[allow(clippy::too_many_arguments)]
    pub fn build<R, S>(
        profile: RuleProfile,
        quantizer: &dyn Quantizer,
        background: Rgb,
        binary: &[ImageId],
        edited: &[ImageId],
        resolver: &R,
        store: &S,
        epoch: u64,
        threads: usize,
    ) -> Result<Self>
    where
        R: InfoResolver + Sync,
        S: SequenceStore + Sync,
    {
        let started = Instant::now();
        let bin_count = quantizer.bin_count();
        let mut idx = BoundIndex::new(profile, bin_count);
        idx.synced_epoch = epoch;

        let mut pending: Vec<Vec<IntervalEntry>> = vec![Vec::new(); bin_count];
        for &id in binary {
            let entry = binary_entry(id, bin_count, resolver)?;
            stage_entry(&mut pending, id, &entry.bounds);
            idx.link_refs(id, &entry.refs);
            idx.entries.insert(id, entry);
        }

        let threads = threads.max(1).min(edited.len().max(1));
        let computed = if threads <= 1 || edited.len() < 2 {
            let engine = RuleEngine::with_background(quantizer, profile, background);
            compute_chunk(&engine, edited, resolver, store)?
        } else {
            compute_parallel(
                quantizer, profile, background, edited, resolver, store, threads,
            )?
        };
        counter!("mmdb_boundidx_misses_total").add(computed.len() as u64);
        for (id, entry) in computed {
            stage_entry(&mut pending, id, &entry.bounds);
            idx.link_refs(id, &entry.refs);
            idx.entries.insert(id, entry);
        }

        for (bin, entries) in pending.into_iter().enumerate() {
            idx.bins[bin] = BinIntervals::from_entries(entries);
        }
        counter!("mmdb_boundidx_builds_total").inc();
        histogram!("mmdb_boundidx_build_seconds").observe(started.elapsed());
        gauge!("mmdb_boundidx_entries").set(idx.len() as u64);
        idx.last_synced_at = Instant::now();
        Ok(idx)
    }

    /// Incremental synchronization to the catalog state captured by
    /// `epoch`/`binary`/`edited`: removes entries for deleted images (and,
    /// transitively, everything whose bounds referenced them), then
    /// (re)computes entries for every image not resident. Returns what was
    /// done for tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn sync<R, S>(
        &mut self,
        epoch: u64,
        binary: &[ImageId],
        edited: &[ImageId],
        quantizer: &dyn Quantizer,
        background: Rgb,
        resolver: &R,
        store: &S,
    ) -> Result<SyncStats>
    where
        R: InfoResolver,
        S: SequenceStore,
    {
        let started = Instant::now();
        let mut stats = SyncStats::default();
        let current: HashSet<ImageId> = binary.iter().chain(edited).copied().collect();
        let stale: Vec<ImageId> = self
            .entries
            .keys()
            .filter(|id| !current.contains(id))
            .copied()
            .collect();
        for id in stale {
            stats.removed += self.invalidate(id);
        }

        let bin_count = self.bins.len();
        let mut fresh: Vec<(ImageId, IndexEntry)> = Vec::new();
        for &id in binary {
            if !self.entries.contains_key(&id) {
                fresh.push((id, binary_entry(id, bin_count, resolver)?));
                stats.added += 1;
            }
        }
        let engine = RuleEngine::with_background(quantizer, self.profile, background);
        for &id in edited {
            if !self.entries.contains_key(&id) {
                fresh.push((id, edited_entry(&engine, id, resolver, store)?));
                counter!("mmdb_boundidx_misses_total").inc();
                stats.added += 1;
                stats.recomputed += 1;
            }
        }
        if fresh.len() < BATCH_SYNC_THRESHOLD {
            for (id, entry) in fresh {
                self.insert_entry(id, entry);
            }
        } else {
            // Large catch-up (warm start over a replayed WAL tail): per-entry
            // sorted inserts would shift each bin's vectors once per entry —
            // quadratic memmove traffic. Stage per bin, merge once.
            let mut pending: Vec<Vec<IntervalEntry>> = vec![Vec::new(); bin_count];
            for (id, entry) in fresh {
                stage_entry(&mut pending, id, &entry.bounds);
                self.link_refs(id, &entry.refs);
                self.entries.insert(id, entry);
            }
            for (bin, batch) in pending.into_iter().enumerate() {
                self.bins[bin].insert_batch(batch);
            }
        }
        self.synced_epoch = epoch;
        self.last_synced_at = Instant::now();
        self.invalidated_since_sync = 0;
        histogram!("mmdb_boundidx_sync_seconds").observe(started.elapsed());
        gauge!("mmdb_boundidx_entries").set(self.len() as u64);
        Ok(stats)
    }

    /// Removes `id`'s entry *and, transitively, every resident entry whose
    /// bounds reference it* (base links and Merge/Combine targets) — the
    /// reference-graph closure that makes eager invalidation sound. Returns
    /// the number of entries dropped. Does not advance the epoch: the next
    /// lookup still re-syncs, which re-admits any victim that is still in
    /// the catalog.
    pub fn invalidate(&mut self, id: ImageId) -> usize {
        let mut affected = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            affected.push(node);
            if let Some(deps) = self.dependents.get(&node) {
                stack.extend(deps.iter().copied());
            }
        }
        let mut removed = 0;
        for victim in affected {
            removed += usize::from(self.remove_entry(victim));
        }
        counter!("mmdb_boundidx_invalidations_total").add(removed as u64);
        self.invalidated_since_sync += removed as u64;
        removed
    }

    /// Answers a range query from the per-bin interval lists.
    ///
    /// # Panics
    /// Panics when `query.bin` is outside this index's bin range (the same
    /// contract as `RuleEngine::bounds`; callers validate wire input first).
    pub fn lookup(&self, query: &ColorRangeQuery) -> IndexedLookup {
        assert!(
            query.bin < self.bins.len(),
            "bin {} out of range for index with {} bins",
            query.bin,
            self.bins.len()
        );
        let mut ids = Vec::new();
        let scanned = self.bins[query.bin].overlapping(query.pct_min, query.pct_max, &mut ids);
        counter!("mmdb_boundidx_lookups_total").inc();
        counter!("mmdb_boundidx_hits_total").add(scanned as u64);
        IndexedLookup { ids, scanned }
    }

    /// The memoized bounds for `(id, bin)`, if resident — the BWM fast path
    /// consults this before falling back to a full rule walk.
    pub fn cached_bounds(&self, id: ImageId, bin: usize) -> Option<BoundRange> {
        self.entries.get(&id).map(|e| e.bounds[bin])
    }

    /// Exports every resident entry as an `(id, bounds, refs)` triple,
    /// sorted by id — the persistence codec's view of the index. Bounds are
    /// the exact `u64` triples, so a round trip through
    /// [`crate::persist`] reproduces bit-identical fraction intervals.
    pub fn export_entries(&self) -> Vec<(ImageId, &[BoundRange], &[ImageId])> {
        let mut out: Vec<_> = self
            .entries
            .iter()
            .map(|(&id, e)| (id, e.bounds.as_slice(), e.refs.as_slice()))
            .collect();
        out.sort_unstable_by_key(|(id, _, _)| *id);
        out
    }

    /// Reassembles an index from persisted parts: the memo entries are
    /// installed verbatim and the per-bin sorted-endpoint arrays are rebuilt
    /// with one bulk sort per bin (no rule walks, no histogram probes). The
    /// result is stamped `synced_epoch` — a stamp behind the engine's
    /// current epoch makes the next lookup take the *incremental* sync
    /// path, never a cold rebuild.
    ///
    /// # Panics
    /// Panics when an entry's bounds vector disagrees with `bin_count`
    /// (callers validate decoded input first).
    pub fn assemble(
        profile: RuleProfile,
        bin_count: usize,
        synced_epoch: u64,
        entries: Vec<(ImageId, Vec<BoundRange>, Vec<ImageId>)>,
    ) -> Self {
        let mut idx = BoundIndex::new(profile, bin_count);
        idx.synced_epoch = synced_epoch;
        let mut pending: Vec<Vec<IntervalEntry>> = vec![Vec::new(); bin_count];
        for (id, bounds, refs) in entries {
            assert_eq!(bounds.len(), bin_count, "bounds vector width mismatch");
            stage_entry(&mut pending, id, &bounds);
            idx.link_refs(id, &refs);
            idx.entries.insert(id, IndexEntry { bounds, refs });
        }
        for (bin, entries) in pending.into_iter().enumerate() {
            idx.bins[bin] = BinIntervals::from_entries(entries);
        }
        gauge!("mmdb_boundidx_entries").set(idx.len() as u64);
        idx.last_synced_at = Instant::now();
        idx
    }

    fn insert_entry(&mut self, id: ImageId, entry: IndexEntry) {
        for (bin, range) in entry.bounds.iter().enumerate() {
            let (lo, hi) = range.fraction_range();
            self.bins[bin].insert(IntervalEntry { lo, hi, id });
        }
        self.link_refs(id, &entry.refs);
        self.entries.insert(id, entry);
    }

    fn remove_entry(&mut self, id: ImageId) -> bool {
        let Some(entry) = self.entries.remove(&id) else {
            return false;
        };
        for (bin, range) in entry.bounds.iter().enumerate() {
            let (lo, hi) = range.fraction_range();
            let removed = self.bins[bin].remove(IntervalEntry { lo, hi, id });
            debug_assert!(removed, "bin list out of step with entry map");
        }
        for r in entry.refs {
            if let Some(deps) = self.dependents.get_mut(&r) {
                deps.remove(&id);
                if deps.is_empty() {
                    self.dependents.remove(&r);
                }
            }
        }
        true
    }

    fn link_refs(&mut self, id: ImageId, refs: &[ImageId]) {
        for &r in refs {
            self.dependents.entry(r).or_default().insert(id);
        }
    }
}

impl crate::EpochStamped for BoundIndex {
    /// The freshness stamp an [`crate::EpochSlot`] compares against the
    /// engine's current mutation epoch.
    fn stamp(&self) -> u64 {
        self.synced_epoch
    }
}

impl mmdb_bwm::BoundsCache for BoundIndex {
    fn cached_bounds(&self, id: ImageId, bin: usize) -> Option<BoundRange> {
        let cached = BoundIndex::cached_bounds(self, id, bin);
        if cached.is_some() {
            counter!("mmdb_boundidx_hits_total").inc();
        } else {
            counter!("mmdb_boundidx_misses_total").inc();
        }
        cached
    }
}

fn binary_entry<R>(id: ImageId, bin_count: usize, resolver: &R) -> Result<IndexEntry>
where
    R: InfoResolver,
{
    let info = resolver.require(id)?;
    let total = info.histogram.total();
    let bounds = (0..bin_count)
        .map(|bin| BoundRange::exact(info.histogram.count(bin), total))
        .collect();
    Ok(IndexEntry {
        bounds,
        refs: Vec::new(),
    })
}

fn edited_entry<R, S>(
    engine: &RuleEngine<'_>,
    id: ImageId,
    resolver: &R,
    store: &S,
) -> Result<IndexEntry>
where
    R: InfoResolver,
    S: SequenceStore,
{
    let seq = store.sequence(id).ok_or(RuleError::UnknownImage(id))?;
    let bounds = engine.bounds_vector(&seq, resolver)?;
    let mut refs = seq.merge_targets();
    refs.push(seq.base);
    refs.sort_unstable();
    refs.dedup();
    Ok(IndexEntry { bounds, refs })
}

fn compute_chunk<R, S>(
    engine: &RuleEngine<'_>,
    ids: &[ImageId],
    resolver: &R,
    store: &S,
) -> Result<Vec<(ImageId, IndexEntry)>>
where
    R: InfoResolver,
    S: SequenceStore,
{
    ids.iter()
        .map(|&id| Ok((id, edited_entry(engine, id, resolver, store)?)))
        .collect()
}

fn compute_parallel<R, S>(
    quantizer: &dyn Quantizer,
    profile: RuleProfile,
    background: Rgb,
    edited: &[ImageId],
    resolver: &R,
    store: &S,
    threads: usize,
) -> Result<Vec<(ImageId, IndexEntry)>>
where
    R: InfoResolver + Sync,
    S: SequenceStore + Sync,
{
    let chunk = edited.len().div_ceil(threads).max(1);
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = edited
            .chunks(chunk)
            .map(|ids| {
                scope.spawn(move |_| {
                    let engine = RuleEngine::with_background(quantizer, profile, background);
                    compute_chunk(&engine, ids, resolver, store)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bound-index build worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("bound-index build scope panicked");
    let mut out = Vec::with_capacity(edited.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

fn stage_entry(pending: &mut [Vec<IntervalEntry>], id: ImageId, bounds: &[BoundRange]) {
    for (bin, range) in bounds.iter().enumerate() {
        let (lo, hi) = range.fraction_range();
        pending[bin].push(IntervalEntry { lo, hi, id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::EditSequence;
    use mmdb_histogram::{ColorHistogram, RgbQuantizer};
    use mmdb_imaging::{draw, RasterImage, Rect};
    use mmdb_rules::{ImageInfo, MapInfoResolver};
    use std::sync::Arc;

    struct Fixture {
        resolver: MapInfoResolver,
        store: HashMap<ImageId, Arc<EditSequence>>,
        quant: RgbQuantizer,
        binary: Vec<ImageId>,
        edited: Vec<ImageId>,
    }

    /// Bases #1 (50% red) and #2 (10% red); edited #10 (blur on 1),
    /// #11 (modify on 2), #12 (merges base 1 into base 2's variant).
    fn fixture() -> Fixture {
        let quant = RgbQuantizer::default_64();
        let mut resolver = MapInfoResolver::new();
        let mut img1 = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img1, &Rect::new(0, 0, 10, 5), Rgb::RED);
        resolver.insert(
            ImageId::new(1),
            ImageInfo::new(ColorHistogram::extract(&img1, &quant), 10, 10),
        );
        let mut img2 = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img2, &Rect::new(0, 0, 10, 1), Rgb::RED);
        resolver.insert(
            ImageId::new(2),
            ImageInfo::new(ColorHistogram::extract(&img2, &quant), 10, 10),
        );

        let mut store: HashMap<ImageId, Arc<EditSequence>> = HashMap::new();
        store.insert(
            ImageId::new(10),
            Arc::new(
                EditSequence::builder(ImageId::new(1))
                    .define(Rect::new(0, 0, 3, 3))
                    .blur()
                    .build(),
            ),
        );
        store.insert(
            ImageId::new(11),
            Arc::new(
                EditSequence::builder(ImageId::new(2))
                    .define(Rect::new(0, 0, 2, 2))
                    .modify(Rgb::WHITE, Rgb::RED)
                    .build(),
            ),
        );
        store.insert(
            ImageId::new(12),
            Arc::new(
                EditSequence::builder(ImageId::new(2))
                    .define(Rect::new(0, 0, 4, 4))
                    .merge_into(ImageId::new(1), 0, 0)
                    .build(),
            ),
        );
        Fixture {
            resolver,
            store,
            quant,
            binary: vec![ImageId::new(1), ImageId::new(2)],
            edited: vec![ImageId::new(10), ImageId::new(11), ImageId::new(12)],
        }
    }

    fn build(f: &Fixture, threads: usize) -> BoundIndex {
        BoundIndex::build(
            RuleProfile::Conservative,
            &f.quant,
            Rgb::WHITE,
            &f.binary,
            &f.edited,
            &f.resolver,
            &f.store,
            1,
            threads,
        )
        .unwrap()
    }

    /// The indexed candidate set must equal a per-image scan using the same
    /// engine (the RBM criterion), for every bin and a spread of ranges.
    fn scan_candidates(f: &Fixture, q: &ColorRangeQuery) -> Vec<ImageId> {
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let mut out = Vec::new();
        for &id in &f.binary {
            let info = f.resolver.require(id).unwrap();
            if q.matches_fraction(info.histogram.fraction(q.bin)) {
                out.push(id);
            }
        }
        for &id in &f.edited {
            let seq = &f.store[&id];
            let b = engine.bounds(seq, q.bin, &f.resolver).unwrap();
            if b.overlaps_fraction(q.pct_min, q.pct_max) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn lookup_matches_scan_for_all_bins() {
        let f = fixture();
        let idx = build(&f, 1);
        assert_eq!(idx.len(), 5);
        for bin in 0..f.quant.bin_count() {
            for (pmin, pmax) in [(0.0, 1.0), (0.0, 0.05), (0.4, 0.6), (0.9, 1.0)] {
                let q = ColorRangeQuery::new(bin, pmin, pmax);
                let mut got = idx.lookup(&q).ids;
                got.sort_unstable();
                assert_eq!(got, scan_candidates(&f, &q), "bin {bin} [{pmin},{pmax}]");
            }
        }
    }

    #[test]
    fn parallel_build_equals_serial() {
        let f = fixture();
        let serial = build(&f, 1);
        let parallel = build(&f, 3);
        for bin in 0..f.quant.bin_count() {
            let q = ColorRangeQuery::new(bin, 0.0, 1.0);
            assert_eq!(
                {
                    let mut v = serial.lookup(&q).ids;
                    v.sort_unstable();
                    v
                },
                {
                    let mut v = parallel.lookup(&q).ids;
                    v.sort_unstable();
                    v
                }
            );
        }
    }

    #[test]
    fn invalidation_is_transitive_through_references() {
        let f = fixture();
        let mut idx = build(&f, 1);
        // #12 merges base 1, #10 is based on 1: invalidating base 1 must
        // drop 1, 10 and 12 but keep 2 and 11.
        let removed = idx.invalidate(ImageId::new(1));
        assert_eq!(removed, 3);
        assert_eq!(idx.len(), 2);
        assert!(idx.cached_bounds(ImageId::new(12), 0).is_none());
        assert!(idx.cached_bounds(ImageId::new(11), 0).is_some());
        // Invalidating something unknown is a no-op.
        assert_eq!(idx.invalidate(ImageId::new(999)), 0);
    }

    #[test]
    fn sync_restores_invalidated_and_drops_deleted() {
        let f = fixture();
        let mut idx = build(&f, 1);
        idx.invalidate(ImageId::new(1));
        // Catalog unchanged → sync re-admits the victims.
        let stats = idx
            .sync(
                2,
                &f.binary,
                &f.edited,
                &f.quant,
                Rgb::WHITE,
                &f.resolver,
                &f.store,
            )
            .unwrap();
        assert_eq!(stats.added, 3);
        assert_eq!(stats.recomputed, 2); // #10 and #12; base 1 is exact
        assert_eq!(idx.synced_epoch(), 2);
        assert_eq!(idx.len(), 5);

        // Now delete edited #11 from the catalog: sync drops exactly it.
        let edited: Vec<ImageId> = vec![ImageId::new(10), ImageId::new(12)];
        let stats = idx
            .sync(
                3,
                &f.binary,
                &edited,
                &f.quant,
                Rgb::WHITE,
                &f.resolver,
                &f.store,
            )
            .unwrap();
        assert_eq!(stats.removed, 1);
        assert_eq!(idx.len(), 4);
        assert!(idx.cached_bounds(ImageId::new(11), 0).is_none());
        let q = ColorRangeQuery::new(0, 0.0, 1.0);
        assert!(!idx.lookup(&q).ids.contains(&ImageId::new(11)));
    }

    #[test]
    fn profile_slots_are_distinct_and_in_range() {
        let all = [RuleProfile::Conservative, RuleProfile::PaperTable1];
        let slots: Vec<usize> = all.iter().map(|&p| profile_slot(p)).collect();
        assert!(slots.iter().all(|&s| s < PROFILE_SLOTS));
        assert_ne!(slots[0], slots[1]);
    }
}
